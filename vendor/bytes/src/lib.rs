//! Minimal offline shim for the `bytes` crate.
//!
//! `Bytes` is a cheaply-cloneable immutable byte buffer (refcounted slice
//! view), `BytesMut` a growable buffer that freezes into `Bytes`. Only the
//! API surface used by this workspace is provided; integers are big-endian
//! on the wire like the real crate.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable, immutable, refcounted view of a byte buffer.
///
/// Backed by `Arc<Vec<u8>>` so `From<Vec<u8>>` (and therefore
/// `BytesMut::freeze`) **moves** the allocation instead of copying it —
/// the refcount-backed payload sharing the datapath relies on.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Returns a view of the given sub-range, sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len, "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            off: self.off,
            len: at,
        };
        self.off += at;
        self.len -= at;
        head
    }

    /// Splits off and returns the bytes after `at`; `self` keeps the head.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len, "split_off out of bounds");
        let tail = Bytes {
            data: Arc::clone(&self.data),
            off: self.off + at,
            len: self.len - at,
        };
        self.len = at;
        tail
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            off: 0,
            len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len > 32 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.vec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional)
    }

    pub fn clear(&mut self) {
        self.vec.clear()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src)
    }

    pub fn truncate(&mut self, len: usize) {
        self.vec.truncate(len)
    }

    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let tail = self.vec.split_off(at);
        let head = std::mem::replace(&mut self.vec, tail);
        BytesMut { vec: head }
    }

    /// Takes the entire contents, leaving `self` empty.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            vec: std::mem::take(&mut self.vec),
        }
    }

    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            vec: self.vec.split_off(at),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        BytesMut { vec }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { vec: s.to_vec() }
    }
}

/// Read cursor over a byte source. Integers decode big-endian.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "advance out of bounds");
        self.off += cnt;
        self.len -= cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write sink for bytes. Integers encode big-endian.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0xdeadbeef);
        b.put_u64(42);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0xdeadbeef);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn from_vec_and_freeze_are_zero_copy() {
        let v = vec![1u8, 2, 3, 4];
        let ptr = v.as_ptr() as usize;
        let b = Bytes::from(v);
        assert_eq!(b.as_ptr() as usize, ptr, "From<Vec> must move, not copy");
        let mut m = BytesMut::new();
        m.put_slice(&[5, 6, 7]);
        let ptr = m.as_ptr() as usize;
        let f = m.freeze();
        assert_eq!(f.as_ptr() as usize, ptr, "freeze must move, not copy");
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut c = b.clone();
        let head = c.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&c[..], &[3, 4, 5]);
    }
}
