//! Distribution traits and the uniform sampler.

use crate::Rng;
use std::ops::{Range, RangeInclusive};

pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "default" distribution: full-range ints, [0,1) floats, fair bools.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i128 {
        let v: u128 = self.sample(rng);
        v as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<char> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> char {
        // Printable ASCII keeps generated data debuggable.
        (b' ' + (rng.next_u64() % 95) as u8) as char
    }
}

impl<T, const N: usize> Distribution<[T; N]> for Standard
where
    Standard: Distribution<T>,
{
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> [T; N] {
        std::array::from_fn(|_| self.sample(rng))
    }
}

/// Marker for types `gen_range` can produce.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi_exclusive: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128);
                let v = (rng.next_u64() as u128) % span;
                (lo as u128 + v) as $t
            }
        }
    )*}
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*}
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*}
}

impl_sample_uniform_float!(f64);

impl SampleUniform for f32 {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

/// Ranges acceptable to `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if hi < <$t>::MAX {
                    <$t>::sample_in(rng, lo, hi + 1)
                } else if lo > <$t>::MIN {
                    // Shift down one to avoid overflowing the exclusive bound.
                    <$t>::sample_in(rng, lo - 1, hi) + 1
                } else {
                    // Full domain.
                    let mut out = lo;
                    let v = rng.next_u64();
                    out = ((out as i128 & 0) as u128 | (v as u128)) as $t;
                    out
                }
            }
        }
    )*}
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform distribution over `[low, high)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: SampleUniform> Uniform<T> {
    pub fn new(low: T, high: T) -> Self {
        Uniform { low, high }
    }

    pub fn new_inclusive(low: T, high: T) -> Self
    where
        T: SampleUniform,
    {
        Uniform { low, high }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_in(rng, self.low, self.high)
    }
}
