//! PRNG implementations.

use crate::{RngCore, SeedableRng};

/// xorshift64* generator seeded through SplitMix64 — small, fast, and
/// statistically fine for tests and simulations.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let state = splitmix64(&mut s) | 1;
        SmallRng { state }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

/// Alias kept for API compatibility with `rand::rngs::StdRng`.
pub type StdRng = SmallRng;
