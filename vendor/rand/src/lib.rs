//! Minimal offline shim for the `rand` crate (0.8 API surface).
//!
//! Backs everything with a SplitMix64/xoshiro-style PRNG. Not
//! cryptographically secure — suitable for tests, benches and simulation
//! workloads only, which is all this workspace uses randomness for.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard, Uniform};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable PRNG construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_entropy() -> Self {
        // Deterministic-environment fallback: derive entropy from the
        // monotonic clock address-independently.
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

pub fn thread_rng() -> rngs::SmallRng {
    rngs::SmallRng::from_entropy()
}

pub fn random<T>() -> T
where
    Standard: Distribution<T>,
{
    thread_rng().gen()
}

pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{random, thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }
}
