//! Slice helpers (`choose`, `shuffle`).

use crate::Rng;

pub trait SliceRandom {
    type Item;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[i])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}
