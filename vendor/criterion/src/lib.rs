//! Minimal offline shim for the `criterion` crate.
//!
//! Implements the measuring subset the workspace benches use: benchmark
//! groups, `Bencher::iter` / `iter_custom`, throughput annotation and the
//! `criterion_group!` / `criterion_main!` macros. Reporting is plain text
//! (median ns/iter plus derived throughput); there is no statistical
//! analysis, plotting or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_millis(300),
            warm_up_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            config: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_one(&config, None, id, f);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    config: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let config = self.config.clone();
        run_one(&config, self.throughput, &full, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

fn run_one<F>(config: &Criterion, throughput: Option<Throughput>, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm up and calibrate the per-sample iteration count.
    let mut iters = 1u64;
    let warm_deadline = Instant::now() + config.warm_up_time;
    let mut per_iter = Duration::from_nanos(100);
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed.as_nanos() > 0 {
            per_iter = b.elapsed / iters as u32;
        }
        if Instant::now() >= warm_deadline {
            break;
        }
        if b.elapsed < Duration::from_millis(1) {
            iters = iters.saturating_mul(2);
        }
    }

    let per_sample = config.measurement_time.as_nanos() as u64 / config.sample_size.max(1) as u64;
    let sample_iters = (per_sample / per_iter.as_nanos().max(1) as u64).clamp(1, 1 << 24);

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters: sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / sample_iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
    let median = samples[samples.len() / 2];

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 / median * 1e9 / (1024.0 * 1024.0)
            )
        }
        Throughput::Elements(n) => {
            format!(" ({:.0} elem/s)", n as f64 / median * 1e9)
        }
    });
    println!(
        "bench {id:<50} {median:>12.1} ns/iter{}",
        rate.unwrap_or_default()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            *c = $config;
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}
