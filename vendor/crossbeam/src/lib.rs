//! Minimal offline shim for the `crossbeam` crate.
//!
//! Provides MPMC `channel` (bounded + unbounded, cloneable senders *and*
//! receivers, like crossbeam's) and `queue::ArrayQueue`, implemented over
//! `std::sync` primitives. Correctness-first: these are mutex+condvar
//! based, not lock-free, which is acceptable for the offline build.

pub mod channel;
pub mod queue;
