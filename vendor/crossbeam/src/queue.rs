//! Bounded queue with crossbeam-compatible API.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// Bounded MPMC queue. The real crate's version is lock-free; this shim
/// trades that for a mutex while keeping identical semantics.
pub struct ArrayQueue<T> {
    inner: Mutex<VecDeque<T>>,
    cap: usize,
}

impl<T> ArrayQueue<T> {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "capacity must be non-zero");
        ArrayQueue {
            inner: Mutex::new(VecDeque::with_capacity(cap)),
            cap,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn push(&self, value: T) -> Result<(), T> {
        let mut q = self.lock();
        if q.len() >= self.cap {
            Err(value)
        } else {
            q.push_back(value);
            Ok(())
        }
    }

    pub fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.lock().len() >= self.cap
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_capacity() {
        let q = ArrayQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.len(), 2);
    }
}
