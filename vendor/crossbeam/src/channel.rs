//! MPMC channel with crossbeam-compatible API.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn disconnected_rx(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sender {{ .. }}")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Receiver {{ .. }}")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    Full(T),
    Disconnected(T),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}
impl std::error::Error for TryRecvError {}
impl std::error::Error for RecvTimeoutError {}

fn with_shared<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_shared(None)
}

/// Channel that blocks senders once `cap` messages are queued.
/// `cap == 0` (rendezvous in real crossbeam) is approximated with `cap == 1`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_shared(Some(cap.max(1)))
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut q = self.shared.lock();
        loop {
            if self.shared.disconnected_rx() {
                return Err(SendError(msg));
            }
            match self.shared.cap {
                Some(cap) if q.len() >= cap => {
                    q = self
                        .shared
                        .not_full
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        q.push_back(msg);
        drop(q);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut q = self.shared.lock();
        if self.shared.disconnected_rx() {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.cap {
            if q.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        q.push_back(msg);
        drop(q);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.lock();
        loop {
            if let Some(v) = q.pop_front() {
                drop(q);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.disconnected_tx() {
                return Err(RecvError);
            }
            q = self
                .shared
                .not_empty
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.lock();
        if let Some(v) = q.pop_front() {
            drop(q);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if self.shared.disconnected_tx() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.lock();
        loop {
            if let Some(v) = q.pop_front() {
                drop(q);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.disconnected_tx() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timeout) = self
                .shared
                .not_empty
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }

    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Non-blocking iterator over currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { rx: self }
    }
}

pub struct IntoIter<T> {
    rx: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpmc_roundtrip() {
        let (tx, rx) = bounded(4);
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx2.recv().unwrap(), 2);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_blocks_and_unblocks() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        let h = std::thread::spawn(move || tx.send(2));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }
}
