//! Collection strategies.

use crate::{SizeRange, Strategy, TestRng};

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
