//! Option strategies.

use crate::{Strategy, TestRng};
use rand::Rng;

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.2) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `proptest::option::of(strategy)` — ~20% `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
