//! Minimal offline shim for the `proptest` crate.
//!
//! Supports the generate-and-test subset this workspace uses: the
//! `proptest!` macro, `Strategy` with `prop_map`, `Just`, `prop_oneof!`,
//! ranges, `any::<T>()`, `collection::vec`, `option::of` and tuple
//! strategies. No shrinking: on failure the panic message reports the
//! deterministic seed and case index so the case can be replayed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod option;

/// RNG handed to strategies by the harness.
pub type TestRng = SmallRng;

/// Number of cases each property runs (override with `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Base seed for the deterministic per-case RNG (override with `PROPTEST_SEED`).
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x7970686f6f6e5f70) // "yphoon_p"
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }

    /// Recursive data strategy. Each extra level is entered with 50%
    /// probability, so values stay bounded; `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility but
    /// unused by the shim.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = std::rc::Rc::new(self.boxed());
        let mut mix: std::rc::Rc<BoxedStrategy<Self::Value>> = std::rc::Rc::clone(&leaf);
        for _ in 0..depth {
            let level = recurse(Shared(std::rc::Rc::clone(&mix)).boxed()).boxed();
            mix = std::rc::Rc::new(
                Union(vec![Shared(std::rc::Rc::clone(&leaf)).boxed(), level]).boxed(),
            );
        }
        Shared(mix).boxed()
    }
}

/// Cheaply cloneable handle to a boxed strategy (used by `prop_recursive`).
pub struct Shared<T>(pub std::rc::Rc<BoxedStrategy<T>>);

impl<T> Strategy for Shared<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy defined by a generation closure (used by `prop_compose!`).
pub struct FnStrategy<F>(F);

impl<F> FnStrategy<F> {
    pub fn new<T>(f: F) -> Self
    where
        F: Fn(&mut TestRng) -> T,
    {
        FnStrategy(f)
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*}
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String-pattern strategy: the real crate interprets `&str` as a full
/// regex. This shim supports the only form the workspace uses —
/// `.{lo,hi}` (a printable string whose length is in `[lo, hi]`) — and
/// treats any other pattern as a literal.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some(body) = self
            .strip_prefix(".{")
            .and_then(|rest| rest.strip_suffix('}'))
        {
            if let Some((lo, hi)) = body.split_once(',') {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                    let len = rng.gen_range(lo..hi + 2).min(hi);
                    return (0..len).map(|_| rng.gen::<char>()).collect();
                }
            }
        }
        (*self).to_string()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    }
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*}
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32, char);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.gen_range(0usize..16);
        (0..len).map(|_| rng.gen::<char>()).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.gen_bool(0.2) {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    pub fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi_exclusive {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi_exclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, Strategy,
    };
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Builds a named function returning a composed strategy.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ( $($oarg:tt)* )
        ( $($pat:pat in $strategy:expr),+ $(,)? ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($oarg)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy::new(move |rng: &mut $crate::TestRng| {
                $(let $pat = $crate::Strategy::generate(&($strategy), rng);)+
                $body
            })
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// The shim simply abandons the case (no resampling), which keeps the
/// pass/fail semantics of the real crate.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let alts: ::std::vec::Vec<$crate::BoxedStrategy<_>> =
            vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::Union(alts)
    }};
}

/// Derives the per-case RNG from `(base_seed, case_index)`.
pub fn case_rng(seed: u64, case: u64) -> TestRng {
    TestRng::seed_from_u64(seed ^ case.wrapping_mul(0x9e3779b97f4a7c15))
}

/// Generate-and-test property runner. Each case derives its RNG from
/// `(base_seed, case_index)`, so failures are replayable by seed.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::cases();
            let seed = $crate::base_seed();
            for case in 0..cases {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let mut rng = $crate::case_rng(seed, case as u64);
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case failed: test={} case={} seed={:#x} (set PROPTEST_SEED/PROPTEST_CASES to replay)",
                        stringify!($name), case, seed
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 1u32..10, v in proptest::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), 5u8..7, any::<u8>().prop_map(|b| b / 2)]) {
            prop_assert!(v == 1 || (5..7).contains(&v) || v <= 127);
        }
    }
}
