//! Minimal offline shim for the `parking_lot` crate.
//!
//! Provides the subset of the API this workspace uses (`Mutex`, `RwLock`
//! with non-poisoning guards) backed by `std::sync`. Semantics match
//! parking_lot where the workspace relies on them: locks are not poisoned
//! by panics — a poisoned std lock is recovered transparently.

use std::sync::{self, PoisonError};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_recovers_from_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        assert!(l.try_write().is_some());
    }
}
