//! # Typhoon — an SDN-enhanced real-time stream processing framework
//!
//! A from-scratch Rust reproduction of *"Typhoon: An SDN Enhanced Real-Time
//! Big Data Streaming Framework"* (CoNEXT 2017): a stream processing
//! framework whose application-level data routing and worker control are
//! partially offloaded to an SDN data plane, giving runtime
//! reconfigurability (parallelism, computation logic, routing policy — all
//! without restarting the pipeline) and serialization-free one-to-many
//! delivery.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`mod@tuple`] | `typhoon-tuple` | values, tuples, streams, wire serialization |
//! | [`metrics`] | `typhoon-metrics` | counters, rate timelines, latency CDFs |
//! | [`trace`] | `typhoon-trace` | end-to-end tuple tracing: span buffers, hop reports |
//! | [`model`] | `typhoon-model` | spouts/bolts, topologies, routing, schedulers |
//! | [`coordinator`] | `typhoon-coordinator` | ZooKeeper-like coordination service |
//! | [`openflow`] | `typhoon-openflow` | the OpenFlow protocol subset + wire codec |
//! | [`net`] | `typhoon-net` | frames, packetization, rings, host tunnels |
//! | [`switch`] | `typhoon-switch` | the per-host software SDN switch |
//! | [`controller`] | `typhoon-controller` | the SDN controller + control-plane apps |
//! | [`storm`] | `typhoon-storm` | the Apache Storm-like baseline framework |
//! | [`core`] | `typhoon-core` | **the Typhoon framework**: 3-layer workers, manager, cluster |
//! | [`mq`] | `typhoon-mq` | Kafka-like partitioned log (Yahoo benchmark) |
//! | [`kv`] | `typhoon-kv` | Redis-like KV store (Yahoo benchmark) |
//!
//! ## Quickstart
//!
//! ```no_run
//! use typhoon::prelude::*;
//!
//! // 1. Write ordinary stream components.
//! struct Doubler;
//! impl Bolt for Doubler {
//!     fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
//!         let n = input.get(0).and_then(Value::as_int).unwrap_or(0);
//!         out.emit(vec![Value::Int(n * 2)]);
//!     }
//! }
//!
//! // 2. Register them and declare a topology.
//! # struct Numbers;
//! # impl Spout for Numbers {
//! #     fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
//! #         out.emit(vec![Value::Int(1)]);
//! #         true
//! #     }
//! # }
//! let mut components = ComponentRegistry::new();
//! components.register_bolt("double", || Doubler);
//! components.register_spout("numbers", || Numbers);
//! let topology = LogicalTopology::builder("demo")
//!     .spout("src", "numbers", 1, Fields::new(["n"]))
//!     .bolt("double", "double", 2, Fields::new(["n2"]))
//!     .edge("src", "double", Grouping::Shuffle)
//!     .build()
//!     .unwrap();
//!
//! // 3. Boot a cluster (hosts, switches, tunnels, controller, manager)
//! //    and submit.
//! let cluster = TyphoonCluster::new(TyphoonConfig::new(2), components).unwrap();
//! let handle = cluster.submit(topology).unwrap();
//!
//! // 4. Reconfigure it live — no restart.
//! handle.reconfigure(ReconfigRequest::single(
//!     "demo",
//!     ReconfigOp::SetParallelism { node: "double".into(), parallelism: 4 },
//! )).unwrap();
//! ```
//!
//! See `examples/` for runnable programs and `DESIGN.md`/`EXPERIMENTS.md`
//! for the paper-reproduction methodology.

#![warn(missing_docs)]

pub use typhoon_controller as controller;
pub use typhoon_coordinator as coordinator;
pub use typhoon_core as core;
pub use typhoon_kv as kv;
pub use typhoon_metrics as metrics;
pub use typhoon_model as model;
pub use typhoon_mq as mq;
pub use typhoon_net as net;
pub use typhoon_openflow as openflow;
pub use typhoon_storm as storm;
pub use typhoon_switch as switch;
pub use typhoon_trace as trace;
pub use typhoon_tuple as tuple;

/// The things most applications need, in one import.
pub mod prelude {
    pub use typhoon_controller::{ControlTuple, Controller};
    pub use typhoon_core::{TyphoonCluster, TyphoonConfig, TyphoonTopologyHandle};
    pub use typhoon_model::{
        Bolt, ComponentRegistry, Emitter, Fields, Grouping, LogicalTopology, ReconfigOp,
        ReconfigRequest, Spout, TaskId,
    };
    pub use typhoon_storm::{StormCluster, StormConfig};
    pub use typhoon_tuple::{StreamId, Tuple, Value};
}
