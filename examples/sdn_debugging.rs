//! Live debugging with switch-level packet mirroring (§4's live-debugger
//! control-plane application).
//!
//! A pipeline runs at full speed; a debug worker is attached to the
//! running topology and the switch mirrors the source's tuples to it —
//! without touching the application layer or its throughput. The debug
//! worker pretty-prints a sample of what it sees, then the mirror is torn
//! down with a strict-priority rule delete.
//!
//! ```sh
//! cargo run --release --example sdn_debugging
//! ```

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use typhoon::controller::apps::LiveDebugger;
use typhoon::openflow::PortNo;
use typhoon::prelude::*;

struct Events {
    n: i64,
}

impl Spout for Events {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        for _ in 0..8 {
            let kind = ["login", "click", "logout"][(self.n % 3) as usize];
            out.emit(vec![Value::Int(self.n), Value::Str(kind.into())]);
            self.n += 1;
        }
        true
    }
}

struct CountSink {
    seen: Arc<AtomicU64>,
}

impl Bolt for CountSink {
    fn execute(&mut self, _input: Tuple, _out: &mut dyn Emitter) {
        self.seen.fetch_add(1, Ordering::Relaxed);
    }
}

/// The debug worker: custom display format, samples 1 in 10_000.
struct DebugProbe {
    captured: Arc<Mutex<Vec<String>>>,
    n: u64,
}

impl Bolt for DebugProbe {
    fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
        self.n += 1;
        if self.n % 10_000 == 1 {
            self.captured.lock().push(format!(
                "[probe] tuple #{}: seq={} kind={}",
                self.n,
                input.get(0).and_then(Value::as_int).unwrap_or(-1),
                input.get(1).and_then(Value::as_str).unwrap_or("?"),
            ));
        }
    }
}

fn main() {
    let seen = Arc::new(AtomicU64::new(0));
    let captured: Arc<Mutex<Vec<String>>> = Arc::default();
    let mut components = ComponentRegistry::new();
    components.register_spout("events", || Events { n: 0 });
    let s = seen.clone();
    components.register_bolt("sink", move || CountSink { seen: s.clone() });
    let c = captured.clone();
    components.register_bolt("probe", move || DebugProbe {
        captured: c.clone(),
        n: 0,
    });

    let topology = LogicalTopology::builder("debuggable")
        .spout("source", "events", 1, Fields::new(["seq", "kind"]))
        .bolt("sink", "sink", 1, Fields::new(["seq"]))
        .bolt("probe", "probe", 1, Fields::new(["seq"]))
        .edge("source", "sink", Grouping::Global)
        .build()
        .unwrap();

    let cluster =
        TyphoonCluster::new(TyphoonConfig::new(1).with_batch_size(100), components).unwrap();
    let handle = cluster.submit(topology).unwrap();
    let physical = handle.physical().unwrap();
    let src = handle.tasks_of("source")[0];
    let sink = handle.tasks_of("sink")[0];
    let probe = handle.tasks_of("probe")[0];
    let port_of = |t: TaskId| PortNo(physical.assignment(t).unwrap().switch_port);

    std::thread::sleep(Duration::from_secs(2));
    let before = seen.load(Ordering::Relaxed);
    println!("pipeline running: {before} tuples delivered in 2s");

    println!("\nattaching switch-level mirror source→probe (no app changes)…");
    let mut debugger = LiveDebugger::new();
    debugger.mirror_task(
        &cluster.controller(),
        handle.app(),
        physical.assignment(src).unwrap().host,
        src,
        port_of(src),
        &[(sink, port_of(sink))],
        port_of(probe),
    );
    std::thread::sleep(Duration::from_secs(2));
    println!("probe captured while mirroring:");
    for line in captured.lock().iter() {
        println!("  {line}");
    }

    debugger.unmirror(&cluster.controller());
    // Let in-flight mirrored frames drain, then confirm the tap is silent.
    std::thread::sleep(Duration::from_millis(500));
    let snapshot = captured.lock().len();
    std::thread::sleep(Duration::from_secs(1));
    assert_eq!(snapshot, captured.lock().len(), "mirror fully detached");
    println!("\nmirror detached; pipeline was never interrupted:");
    println!(
        "  {} tuples delivered in total",
        seen.load(Ordering::Relaxed)
    );
    cluster.shutdown();
    println!("done.");
}
