//! The Yahoo advertisement-analytics pipeline (the paper's Fig. 13) on
//! Typhoon, end to end: a Kafka-like broker feeds ad events through
//! kafka-client → parse → filter → projection → join → aggregation&store,
//! with a Redis-like store for the join table and the windowed counts.
//!
//! ```sh
//! cargo run --release --example yahoo_analytics
//! ```

use bytes::Bytes;
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon::kv::KvStore;
use typhoon::mq::MessageQueue;
use typhoon::prelude::*;
use typhoon_bench::yahoo::{register_yahoo, yahoo_topology, EVENT_TYPES, WINDOW_MS};

const EVENTS: usize = 60_000;
const ADS: usize = 50;
const CAMPAIGNS: usize = 5;

fn main() {
    // The substrates the paper uses: Kafka (typhoon-mq) + Redis (typhoon-kv).
    let mq = Arc::new(MessageQueue::new());
    let kv = Arc::new(KvStore::new());
    mq.create_topic("ad-events", 1);
    for ad in 0..ADS {
        kv.set(&format!("ad:{ad}"), &format!("campaign:{}", ad % CAMPAIGNS));
    }
    // Pre-load a burst of events with event-times spread over 3 windows.
    let mut state = 1u64;
    for i in 0..EVENTS {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let ad = (state >> 33) as usize % ADS;
        let event = EVENT_TYPES[(state >> 17) as usize % EVENT_TYPES.len()];
        let time_ms = (i as u64) * (3 * WINDOW_MS) / EVENTS as u64;
        mq.produce(
            "ad-events",
            None,
            Bytes::from(format!("{ad}|{event}|{time_ms}")),
        )
        .unwrap();
    }
    println!("{EVENTS} ad events queued across 3 aggregation windows");

    let mut components = ComponentRegistry::new();
    register_yahoo(&mut components, mq.clone(), kv.clone(), "ad-events", 64);
    let mut config = TyphoonConfig::new(2).with_batch_size(100);
    config.slots_per_host = 8;
    let cluster = TyphoonCluster::new(config, components).unwrap();
    let handle = cluster.submit(yahoo_topology()).unwrap();
    println!(
        "pipeline deployed: {} tasks across 2 hosts",
        handle.physical().unwrap().assignments.len()
    );

    // Wait until the broker is drained and the pipeline has settled.
    let t0 = Instant::now();
    loop {
        let consumed = mq.committed("typhoon", "ad-events", 0);
        if consumed >= EVENTS as u64 || t0.elapsed() > Duration::from_secs(60) {
            break;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    std::thread::sleep(Duration::from_secs(1)); // drain in-flight tuples

    println!("\nper-campaign windowed view counts (what Redis holds):");
    let mut grand_total = 0i64;
    for c in 0..CAMPAIGNS {
        let name = format!("campaign:{c}");
        let windows = kv.windows(&name);
        let row: Vec<String> = windows.iter().map(|(w, n)| format!("w{w}={n}")).collect();
        grand_total += windows.iter().map(|(_, n)| n).sum::<i64>();
        println!("  {name:<12} {}", row.join("  "));
    }
    let expected = EVENTS as i64 / 3; // filter-v1 passes only "view" events
    println!("\nstored events: {grand_total} (≈{expected} expected: 1/3 of {EVENTS} are views)");
    cluster.shutdown();
    println!("done.");
}
