//! Live reconfiguration through the user-facing command API.
//!
//! Demonstrates the full §3.2 reconfiguration workflow end to end: a
//! pipeline runs while a "user" connects to the controller's command
//! server over TCP and issues `RECONFIG` commands — parallelism change,
//! routing-policy change, and a computation-logic hot swap — all without
//! stopping the stream.
//!
//! ```sh
//! cargo run --release --example live_reconfigure
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use typhoon::controller::rest::CommandServer;
use typhoon::prelude::*;

struct Numbers {
    n: i64,
}

impl Spout for Numbers {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        for _ in 0..16 {
            out.emit(vec![Value::Int(self.n)]);
            self.n += 1;
        }
        true
    }
}

struct AddOne;

impl Bolt for AddOne {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        let n = input.get(0).and_then(Value::as_int).unwrap_or(0);
        out.emit(vec![Value::Int(n + 1)]);
    }
}

struct TimesTen;

impl Bolt for TimesTen {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        let n = input.get(0).and_then(Value::as_int).unwrap_or(0);
        out.emit(vec![Value::Int(n * 10)]);
    }
}

struct Sink {
    last: Arc<AtomicI64>,
    seen: Arc<AtomicI64>,
}

impl Bolt for Sink {
    fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
        if let Some(n) = input.get(0).and_then(Value::as_int) {
            self.last.store(n, Ordering::Relaxed);
            self.seen.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn command(addr: std::net::SocketAddr, line: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect to command server");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    resp.trim().to_owned()
}

fn main() {
    let last = Arc::new(AtomicI64::new(0));
    let seen = Arc::new(AtomicI64::new(0));
    let mut components = ComponentRegistry::new();
    components.register_spout("numbers", || Numbers { n: 0 });
    components.register_bolt("add-one", || AddOne);
    components.register_bolt("times-ten", || TimesTen);
    let (l, s) = (last.clone(), seen.clone());
    components.register_bolt("sink", move || Sink {
        last: l.clone(),
        seen: s.clone(),
    });

    let topology = LogicalTopology::builder("math")
        .spout("src", "numbers", 1, Fields::new(["n"]))
        .bolt("op", "add-one", 2, Fields::new(["n"]))
        .bolt("out", "sink", 1, Fields::new(["n"]))
        .edge("src", "op", Grouping::Shuffle)
        .edge("op", "out", Grouping::Global)
        .build()
        .unwrap();

    let cluster =
        TyphoonCluster::new(TyphoonConfig::new(2).with_batch_size(50), components).unwrap();
    let handle = cluster.submit(topology).unwrap();

    // The user-facing command server (the prototype's REST API).
    let server = CommandServer::start(cluster.global().clone(), 0).unwrap();
    let addr = server.addr();
    println!("command server listening on {addr}");

    std::thread::sleep(Duration::from_secs(2));
    println!("LIST            -> {}", command(addr, "LIST"));
    println!("SHOW math       -> {}", command(addr, "SHOW math"));
    println!(
        "sink has seen {} tuples (op = add-one)",
        seen.load(Ordering::Relaxed)
    );

    // 1. Parallelism change via the command API (async: the manager loop
    //    picks the request up from the coordinator).
    println!(
        "\nRECONFIG math PARALLELISM op 3 -> {}",
        command(addr, "RECONFIG math PARALLELISM op 3")
    );
    std::thread::sleep(Duration::from_secs(2));
    println!("op tasks now: {:?}", handle.tasks_of("op"));

    // 2. Routing-policy change: shuffle → key-based on "n".
    println!(
        "RECONFIG math GROUPING src op fields:n -> {}",
        command(addr, "RECONFIG math GROUPING src op fields:n")
    );
    std::thread::sleep(Duration::from_secs(2));

    // 3. Computation-logic hot swap: add-one → times-ten (§6.2).
    println!(
        "RECONFIG math LOGIC op times-ten -> {}",
        command(addr, "RECONFIG math LOGIC op times-ten")
    );
    std::thread::sleep(Duration::from_secs(3));
    let observed = last.load(Ordering::Relaxed);
    println!(
        "latest sink value: {observed} ({})",
        if observed % 10 == 0 {
            "×10 logic is live"
        } else {
            "still settling"
        }
    );
    println!(
        "total processed across all three reconfigurations: {}",
        seen.load(Ordering::Relaxed)
    );
    cluster.shutdown();
    println!("done.");
}
