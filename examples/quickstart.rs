//! Quickstart: the word-count topology of the paper's Fig. 2 on a Typhoon
//! cluster, with one live reconfiguration.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use typhoon::prelude::*;

/// Emits random sentences forever.
struct SentenceSpout {
    i: usize,
}

const SENTENCES: &[&str] = &[
    "the quick brown fox",
    "jumps over the lazy dog",
    "typhoon routes tuples with sdn",
    "the switch replicates the payload",
];

impl Spout for SentenceSpout {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        out.emit(vec![Value::Str(SENTENCES[self.i % SENTENCES.len()].into())]);
        self.i += 1;
        true
    }
}

/// Splits sentences into words.
struct Split;

impl Bolt for Split {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        if let Some(s) = input.get(0).and_then(Value::as_str) {
            for word in s.split_whitespace() {
                out.emit(vec![Value::Str(word.into())]);
            }
        }
    }
}

/// Counts words (stateful: in-memory cache + key-based routing, Table 4).
struct Count {
    counts: HashMap<String, i64>,
    shared: Arc<Mutex<HashMap<String, i64>>>,
}

impl Bolt for Count {
    fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
        if let Some(w) = input.get(0).and_then(Value::as_str) {
            let c = self.counts.entry(w.to_owned()).or_insert(0);
            *c += 1;
            self.shared.lock().insert(w.to_owned(), *c);
        }
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

fn main() {
    let results: Arc<Mutex<HashMap<String, i64>>> = Arc::default();
    let mut components = ComponentRegistry::new();
    components.register_spout("sentences", || SentenceSpout { i: 0 });
    components.register_bolt("split", || Split);
    let r = results.clone();
    components.register_bolt("count", move || Count {
        counts: HashMap::new(),
        shared: r.clone(),
    });

    let topology = LogicalTopology::builder("word-count")
        .spout("input", "sentences", 1, Fields::new(["sentence"]))
        .bolt("split", "split", 2, Fields::new(["word"]))
        .bolt_with_state("count", "count", 2, Fields::new(["word", "count"]), true)
        .edge("input", "split", Grouping::Shuffle)
        .edge("split", "count", Grouping::Fields(vec!["word".into()]))
        .build()
        .expect("valid topology");

    println!("booting a 2-host Typhoon cluster (switches, tunnels, controller)…");
    let cluster =
        TyphoonCluster::new(TyphoonConfig::new(2).with_batch_size(50), components).unwrap();
    let handle = cluster.submit(topology).unwrap();
    println!(
        "topology deployed: tasks = {:?}",
        handle.physical().unwrap().assignments.len()
    );

    std::thread::sleep(Duration::from_secs(3));
    println!("\ntop words after 3s:");
    let mut top: Vec<(String, i64)> = results.lock().clone().into_iter().collect();
    top.sort_by_key(|(_, c)| -c);
    for (word, count) in top.iter().take(5) {
        println!("  {word:<10} {count}");
    }

    println!("\nlive reconfiguration: split 2 → 3 workers (no restart)…");
    handle
        .reconfigure(ReconfigRequest::single(
            "word-count",
            ReconfigOp::SetParallelism {
                node: "split".into(),
                parallelism: 3,
            },
        ))
        .unwrap();
    println!("split tasks now: {:?}", handle.tasks_of("split"));

    std::thread::sleep(Duration::from_secs(2));
    let total: i64 = results.lock().values().sum();
    println!("\nstill counting after the reconfig: {total} total word occurrences");
    cluster.shutdown();
    println!("done.");
}
