//! Guaranteed processing under failure: when a worker dies mid-stream, the
//! acker times out its in-flight tuple trees, the spout replays them, and
//! the sink eventually sees every sequence number at least once — Storm's
//! at-least-once contract (§6.1, "if any input tuple is not fully
//! processed, it is replayed from input workers").

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_model::{Bolt, ComponentRegistry, Emitter, Fields, Grouping, LogicalTopology, Spout};
use typhoon_storm::{StormCluster, StormConfig};
use typhoon_tuple::{Tuple, Value};

const LIMIT: i64 = 5_000;

/// A reliable sequence spout using the root-ID linkage for replay.
struct ReliableSeq {
    next: i64,
    replay: Vec<i64>,
    inflight: HashMap<u64, i64>,
    last_batch: Vec<i64>,
}

impl Spout for ReliableSeq {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        self.last_batch.clear();
        for _ in 0..4 {
            let seq = if let Some(s) = self.replay.pop() {
                s
            } else if self.next < LIMIT {
                let s = self.next;
                self.next += 1;
                s
            } else {
                break;
            };
            out.emit(vec![Value::Int(seq)]);
            self.last_batch.push(seq);
        }
        !self.last_batch.is_empty()
    }

    fn emitted(&mut self, index: usize, root: u64) {
        if let Some(&seq) = self.last_batch.get(index) {
            self.inflight.insert(root, seq);
        }
    }

    fn ack(&mut self, root: u64) {
        self.inflight.remove(&root);
    }

    fn fail(&mut self, root: u64) {
        if let Some(seq) = self.inflight.remove(&root) {
            self.replay.push(seq);
        }
    }
}

struct Relay;

impl Bolt for Relay {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        out.emit(input.values);
    }
}

#[derive(Clone, Default)]
struct Seen {
    seqs: Arc<Mutex<Vec<i64>>>,
}

struct CollectSink {
    seen: Seen,
}

impl Bolt for CollectSink {
    fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
        if let Some(n) = input.get(0).and_then(Value::as_int) {
            self.seen.seqs.lock().push(n);
        }
    }
}

#[test]
fn worker_crash_triggers_replay_until_complete() {
    let seen = Seen::default();
    let mut reg = ComponentRegistry::new();
    reg.register_spout("seq", || ReliableSeq {
        next: 0,
        replay: Vec::new(),
        inflight: HashMap::new(),
        last_batch: Vec::new(),
    });
    reg.register_bolt("relay", || Relay);
    let s = seen.clone();
    reg.register_bolt("sink", move || CollectSink { seen: s.clone() });

    let topo = LogicalTopology::builder("reliable")
        .spout("src", "seq", 1, Fields::new(["n"]))
        .bolt("mid", "relay", 2, Fields::new(["n"]))
        .bolt("out", "sink", 1, Fields::new(["n"]))
        .edge("src", "mid", Grouping::Shuffle)
        .edge("mid", "out", Grouping::Global)
        .build()
        .unwrap();

    // Short ack timeout so replay happens within the test; fast restart.
    let config = StormConfig {
        heartbeat_timeout: Duration::from_millis(500),
        monitor_interval: Duration::from_millis(50),
        ..StormConfig::local(1)
    }
    .with_acking(Duration::from_millis(800), 64);
    let cluster = StormCluster::new(config, reg);
    let handle = cluster.submit(topo).unwrap();

    // Let some tuples flow, then murder one relay: tuples queued in its
    // inbox vanish with it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while seen.seqs.lock().len() < 200 {
        assert!(Instant::now() < deadline, "pipeline never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    let victim = handle.tasks_of("mid")[0];
    handle.crash_task(victim);

    // At-least-once: every sequence number eventually arrives (duplicates
    // allowed — replay may re-deliver tuples that did get through).
    let deadline = Instant::now() + Duration::from_secs(40);
    loop {
        {
            let mut seqs = seen.seqs.lock().clone();
            seqs.sort_unstable();
            seqs.dedup();
            if seqs.len() == LIMIT as usize {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "incomplete after replay: {} of {LIMIT} distinct (restarts={})",
                seqs.len(),
                handle.restarts(victim),
            );
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        handle.restarts(victim) >= 1,
        "the victim was never restarted"
    );
    // Replay really happened: total received ≥ distinct (usually >).
    let total = seen.seqs.lock().len();
    assert!(total >= LIMIT as usize);
    cluster.shutdown();
}

#[test]
fn spout_throttles_at_max_pending() {
    // With a tiny max_pending and a sink that never acks fast (we kill the
    // acker path by pointing mid at a black hole? — simpler: huge ack
    // timeout and slow sink), the spout must stall near the cap instead of
    // flooding memory.
    struct SlowSink;
    impl Bolt for SlowSink {
        fn execute(&mut self, _input: Tuple, _out: &mut dyn Emitter) {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let mut reg = ComponentRegistry::new();
    reg.register_spout("seq", || ReliableSeq {
        next: 0,
        replay: Vec::new(),
        inflight: HashMap::new(),
        last_batch: Vec::new(),
    });
    reg.register_bolt("slow", || SlowSink);
    let topo = LogicalTopology::builder("throttle")
        .spout("src", "seq", 1, Fields::new(["n"]))
        .bolt("out", "slow", 1, Fields::new(["n"]))
        .edge("src", "out", Grouping::Global)
        .build()
        .unwrap();
    let config = StormConfig::local(1).with_acking(Duration::from_secs(60), 16);
    let cluster = StormCluster::new(config, reg);
    let handle = cluster.submit(topo).unwrap();
    std::thread::sleep(Duration::from_secs(2));
    let spout = handle.tasks_of("src")[0];
    let snap = handle.registry(spout).unwrap().snapshot();
    let emitted = snap.counter("tuples.emitted");
    let completed = snap.counter("acks.completed");
    // Throughput is ack-bound (~500/s from the 2ms sink), far below what an
    // unthrottled spout would emit; in-flight roots never exceed the cap.
    assert!(
        emitted <= completed + 16 + 4,
        "spout overran max_pending: emitted={emitted} completed={completed}"
    );
    cluster.shutdown();
}
