//! Multiple concurrent topologies on one Storm cluster: independent app
//! IDs, independent task directories, independent results.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_model::{Bolt, ComponentRegistry, Emitter, Fields, Grouping, LogicalTopology, Spout};
use typhoon_storm::{StormCluster, StormConfig};
use typhoon_tuple::{Tuple, Value};

struct ConstSpout {
    value: i64,
    remaining: i64,
}

impl Spout for ConstSpout {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        out.emit(vec![Value::Int(self.value)]);
        true
    }
}

#[derive(Clone, Default)]
struct Sums {
    by_value: Arc<Mutex<std::collections::HashMap<i64, i64>>>,
}

struct SumSink {
    sums: Sums,
}

impl Bolt for SumSink {
    fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
        if let Some(v) = input.get(0).and_then(Value::as_int) {
            *self.sums.by_value.lock().entry(v).or_insert(0) += 1;
        }
    }
}

fn topo(name: &str) -> LogicalTopology {
    LogicalTopology::builder(name)
        .spout("src", &format!("{name}-spout"), 1, Fields::new(["v"]))
        .bolt("out", "sum-sink", 1, Fields::new(["v"]))
        .edge("src", "out", Grouping::Global)
        .build()
        .unwrap()
}

#[test]
fn two_topologies_do_not_interfere() {
    const N: i64 = 2_000;
    let sums = Sums::default();
    let mut reg = ComponentRegistry::new();
    reg.register_spout("a-spout", || ConstSpout {
        value: 1,
        remaining: N,
    });
    reg.register_spout("b-spout", || ConstSpout {
        value: 2,
        remaining: N,
    });
    let s = sums.clone();
    reg.register_bolt("sum-sink", move || SumSink { sums: s.clone() });

    let cluster = StormCluster::new(StormConfig::local(2), reg);
    let ha = cluster.submit(topo("a")).unwrap();
    let hb = cluster.submit(topo("b")).unwrap();
    assert_ne!(ha.app(), hb.app(), "distinct app IDs");

    // Task IDs overlap numerically across apps in Storm (per-topology
    // numbering), but directories are shared — the cluster must still keep
    // streams separate because each topology only routes to its own tasks.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        {
            let sums = sums.by_value.lock();
            let a = sums.get(&1).copied().unwrap_or(0);
            let b = sums.get(&2).copied().unwrap_or(0);
            if a == N && b == N {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "incomplete: a={a} b={b} (want {N} each)"
            );
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    ha.kill();
    hb.kill();
    cluster.shutdown();
}
