//! Property tests on the XOR acker: arbitrary tuple trees, acknowledged in
//! arbitrary interleavings, complete exactly when every anchor has been
//! covered — and never before.

use proptest::prelude::*;
use std::time::Instant;
use typhoon_storm::acker::{AckOutcome, AckerLedger};
use typhoon_tuple::tuple::TaskId;

/// A random tuple tree: the spout emits `fanout0` anchored copies; each
/// node acks its input and re-emits to `children` more anchors, up to a
/// bounded total. We materialize the tree as the list of acker updates it
/// would generate.
#[derive(Debug, Clone)]
struct TreeMessages {
    init_xor: u64,
    /// Each downstream update: input_anchor XOR (new child anchors).
    updates: Vec<u64>,
}

fn build_tree(shape: &[u8], mut next_anchor: u64) -> TreeMessages {
    let mut alloc = || {
        next_anchor = next_anchor
            .wrapping_mul(6364136223846793005)
            .wrapping_add(97)
            | 1;
        next_anchor
    };
    // Frontier of unacked anchors; each shape byte says how many children
    // the next frontier element spawns when acked.
    let root_fanout = (shape.first().copied().unwrap_or(1) % 3 + 1) as usize;
    let mut init_xor = 0u64;
    let mut frontier: Vec<u64> = Vec::new();
    for _ in 0..root_fanout {
        let a = alloc();
        init_xor ^= a;
        frontier.push(a);
    }
    let mut updates = Vec::new();
    for &children in shape.iter().skip(1) {
        let input = match frontier.pop() {
            Some(a) => a,
            None => break,
        };
        let n_children = (children % 3) as usize; // 0..=2 children
        let mut xor = input;
        for _ in 0..n_children {
            let a = alloc();
            xor ^= a;
            frontier.push(a);
        }
        updates.push(xor);
    }
    // Leaf acks for whatever remains on the frontier.
    for a in frontier {
        updates.push(a);
    }
    TreeMessages { init_xor, updates }
}

proptest! {
    #[test]
    fn tree_completes_exactly_once_under_any_interleaving(
        shape in proptest::collection::vec(any::<u8>(), 1..40),
        order in any::<u64>(),
        init_position in any::<usize>(),
    ) {
        let tree = build_tree(&shape, 0x1234_5678_9abc_def1);
        // Shuffle updates deterministically from `order`.
        let mut updates = tree.updates.clone();
        let mut rng_state = order | 1;
        for i in (1..updates.len()).rev() {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (rng_state >> 33) as usize % (i + 1);
            updates.swap(i, j);
        }
        let init_at = if updates.is_empty() { 0 } else { init_position % (updates.len() + 1) };
        let spout = TaskId(7);
        let now = Instant::now();
        let mut ledger = AckerLedger::new();
        let mut completions = 0;
        let mut init_done = false;
        for (i, &xor) in updates.iter().enumerate() {
            if i == init_at {
                if let Some((owner, outcome)) = ledger.apply(1, tree.init_xor, Some(spout), now) {
                    prop_assert_eq!(owner, spout);
                    prop_assert_eq!(outcome, AckOutcome::Complete);
                    completions += 1;
                }
                init_done = true;
            }
            if let Some((owner, outcome)) = ledger.apply(1, xor, None, now) {
                prop_assert_eq!(owner, spout);
                prop_assert_eq!(outcome, AckOutcome::Complete);
                completions += 1;
                // Completion may only fire once everything (incl. init) is in.
                prop_assert!(init_done, "completed before the init arrived");
                prop_assert_eq!(i + 1, updates.len(), "completed early");
            }
        }
        if !init_done {
            if let Some((owner, outcome)) = ledger.apply(1, tree.init_xor, Some(spout), now) {
                prop_assert_eq!(owner, spout);
                prop_assert_eq!(outcome, AckOutcome::Complete);
                completions += 1;
            }
        }
        prop_assert_eq!(completions, 1, "exactly one completion");
        prop_assert_eq!(ledger.pending(), 0);
    }

    #[test]
    fn dropping_any_single_update_prevents_completion(
        shape in proptest::collection::vec(any::<u8>(), 1..30),
        drop_idx in any::<usize>(),
    ) {
        let tree = build_tree(&shape, 0x0fed_cba9_8765_4321);
        prop_assume!(!tree.updates.is_empty());
        let drop_idx = drop_idx % tree.updates.len();
        let spout = TaskId(3);
        let now = Instant::now();
        let mut ledger = AckerLedger::new();
        prop_assert!(ledger.apply(9, tree.init_xor, Some(spout), now).is_none()
            || tree.init_xor == 0);
        let mut completed = false;
        for (i, &xor) in tree.updates.iter().enumerate() {
            if i == drop_idx {
                continue; // a lost tuple: its ack never arrives
            }
            if ledger.apply(9, xor, None, now).is_some() {
                completed = true;
            }
        }
        // XOR of a non-empty subset of distinct odd anchors is nonzero with
        // overwhelming probability; the dropped update's anchors stay
        // uncovered, so the tree must still be pending (it would only
        // complete via timeout → replay).
        prop_assert!(!completed, "completed despite a lost ack");
        prop_assert_eq!(ledger.pending(), 1);
    }
}
