//! Executors: the worker threads running spouts, bolts and ackers.
//!
//! This is where the baseline pays its application-level routing costs:
//! the executor's send path serializes the tuple **once per destination**
//! — so an `All`-grouped (one-to-many) emission performs N serializations
//! and N sends, "multiple serialization computations for each data tuple"
//! (§1). Enabling the app-level debugger adds one more serialization+send
//! per tuple (Fig. 12's Storm curve).

use crate::acker::{AckOutcome, AckerLedger};
use crate::transport::Outbound;
use bytes::Bytes;
use crossbeam::channel::Receiver;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_diag::{rank, DiagMutex as Mutex};
use typhoon_metrics::{RateMeter, Registry};
use typhoon_model::{Bolt, Emitter, RouteDecision, RoutingState, Spout, TaskId};
use typhoon_trace::{Hop, TraceCtx};
use typhoon_tuple::ser::{decode_tuple, encode_tuple_vec, SerStats};
use typhoon_tuple::{MessageId, StreamId, Tuple, Value};

/// The component an executor runs.
pub enum Component {
    /// A data source.
    Spout(Box<dyn Spout>),
    /// A processing node.
    Bolt(Box<dyn Bolt>),
    /// The system acker (guaranteed-processing bookkeeping).
    Acker,
}

/// One outgoing edge of this executor's node.
pub struct Route {
    /// The stream the edge subscribes to.
    pub stream: StreamId,
    /// Downstream node name (for `ROUTING`-style updates in tests).
    pub downstream: String,
    /// The live routing state (Listing 1).
    pub state: RoutingState,
}

/// Everything an executor thread needs.
pub struct ExecutorCtx {
    /// This executor's task ID.
    pub task: TaskId,
    /// The logical node it instantiates.
    pub node: String,
    /// Outgoing edges.
    pub routes: Vec<Route>,
    /// Connection cache to other tasks.
    pub outbound: Outbound,
    /// This task's inbox.
    pub inbox: Receiver<Bytes>,
    /// Cluster-wide serialization meter.
    pub ser: Arc<SerStats>,
    /// Liveness: updated every loop iteration, watched by Nimbus.
    pub heartbeats: Arc<Mutex<HashMap<TaskId, Instant>>>,
    /// Per-task received/emitted meter (experiment timelines).
    pub meter: RateMeter,
    /// Per-task metrics.
    pub registry: Registry,
    /// The topology's acker task (None = acking disabled).
    pub acker: Option<TaskId>,
    /// Max in-flight spout roots (only with acking).
    pub max_pending: usize,
    /// Ack timeout for replay.
    pub ack_timeout: Duration,
    /// Spout emission rate cap (tuples/sec; None = unlimited).
    pub input_rate: Arc<Mutex<Option<u32>>>,
    /// App-level debug mirror destination (Fig. 12's Storm mode).
    pub mirror_to: Arc<Mutex<Option<TaskId>>>,
    /// Crash the executor ("OutOfMemoryError") when the inbox exceeds this
    /// many queued tuples (Fig. 11's overload failure mode).
    pub mem_cap_items: Option<usize>,
    /// Cooperative shutdown flag.
    pub shutdown: Arc<AtomicBool>,
    /// End-to-end tracing context (disabled by default; hops recorded here
    /// mirror the Typhoon side so the baselines are comparable).
    pub trace: TraceCtx,

    // ---- internal scratch ----
    pub(crate) rng: SmallRng,
    pub(crate) pending: HashMap<u64, (Instant, u64)>,
    pub(crate) current_root: u64,
    pub(crate) current_trace: u64,
    pub(crate) accum_xor: u64,
    pub(crate) rate_window_start: Instant,
    pub(crate) rate_window_count: u32,
    /// Per-destination transfer buffers, modelling Storm's disruptor-backed
    /// transfer queues: sends batch up and flush on size or on the 1 ms
    /// flush tick, exactly like the JVM implementation's flush tuple. Each
    /// blob carries its trace id (0 = untraced).
    pub(crate) transfer: HashMap<TaskId, Vec<(Bytes, u64)>>,
    pub(crate) last_transfer_flush: Instant,
}

/// Storm's transfer-queue flush tick (1 ms in the JVM implementation).
const TRANSFER_FLUSH_TICK: Duration = Duration::from_millis(1);
/// Storm's transfer batch size.
const TRANSFER_BATCH: usize = 100;

impl ExecutorCtx {
    fn heartbeat(&self) {
        self.heartbeats.lock().insert(self.task, Instant::now());
    }

    /// True when the current 100 ms window still has emission budget.
    fn rate_allows(&mut self) -> bool {
        let cap = match *self.input_rate.lock() {
            Some(cap) => cap,
            None => return true,
        };
        let now = Instant::now();
        if now.duration_since(self.rate_window_start) >= Duration::from_millis(100) {
            self.rate_window_start = now;
            self.rate_window_count = 0;
        }
        self.rate_window_count < cap / 10
    }

    /// Debits actual emissions from the window budget.
    fn rate_consume(&mut self, n: u32) {
        self.rate_window_count += n;
    }

    /// Serializes and sends one copy of `tuple` to `dst`, assigning a fresh
    /// anchor when the emission is anchored. **This is the per-destination
    /// serialization** the paper attributes the baseline's one-to-many
    /// collapse to.
    fn send_one(&mut self, dst: TaskId, tuple: &mut Tuple) {
        if self.acker.is_some() && self.current_root != 0 {
            let anchor = self.rng.gen::<u64>() | 1;
            tuple.meta.message_id = MessageId {
                root: self.current_root,
                anchor,
            };
            self.accum_xor ^= anchor;
        }
        tuple.meta.trace = self.current_trace;
        let blob = Bytes::from(encode_tuple_vec(tuple, &self.ser));
        self.trace.record(self.current_trace, Hop::Serialize);
        self.transfer
            .entry(dst)
            .or_default()
            .push((blob, self.current_trace));
        self.trace.record(self.current_trace, Hop::QueueOut);
        self.registry.counter("tuples.emitted").inc();
        if self.transfer.get(&dst).map_or(0, Vec::len) >= TRANSFER_BATCH {
            self.flush_destination(dst);
        }
    }

    fn flush_destination(&mut self, dst: TaskId) {
        if let Some(blobs) = self.transfer.remove(&dst) {
            for (blob, trace) in blobs {
                self.trace.record(trace, Hop::NetHop);
                if !self.outbound.send(dst, &blob) {
                    self.registry.counter("tuples.dropped").inc();
                }
            }
        }
    }

    /// Flushes every transfer buffer whose flush tick elapsed (or all, when
    /// `force`). Mirrors Storm's periodic flush tuple.
    pub(crate) fn flush_transfers(&mut self, force: bool) {
        if !force && self.last_transfer_flush.elapsed() < TRANSFER_FLUSH_TICK {
            return;
        }
        self.last_transfer_flush = Instant::now();
        let dsts: Vec<TaskId> = self.transfer.keys().copied().collect();
        for dst in dsts {
            self.flush_destination(dst);
        }
    }

    fn emit_tuple(&mut self, stream: StreamId, values: Vec<Value>) {
        let mut tuple = Tuple::on_stream(self.task, stream, values);
        let mut targets: Vec<TaskId> = Vec::new();
        for route in &mut self.routes {
            if route.stream != stream {
                continue;
            }
            match route.state.route(&tuple) {
                RouteDecision::One(dst) => targets.push(dst),
                RouteDecision::Broadcast => targets.extend_from_slice(route.state.next_hops()),
                RouteDecision::Drop => {
                    self.registry.counter("tuples.unroutable").inc();
                }
            }
        }
        for dst in targets {
            self.send_one(dst, &mut tuple);
        }
        // App-level debug mirroring: one more serialization + send.
        let mirror = *self.mirror_to.lock();
        if let Some(dbg) = mirror {
            let mut copy = tuple.clone();
            copy.meta.stream = StreamId::DEBUG_MIRROR;
            copy.meta.message_id = MessageId::NONE;
            let saved_root = self.current_root;
            let saved_trace = self.current_trace;
            self.current_root = 0; // mirrors are never anchored (nor traced)
            self.current_trace = 0;
            self.send_one(dbg, &mut copy);
            self.current_root = saved_root;
            self.current_trace = saved_trace;
        }
    }

    fn send_acker(&mut self, root: u64, xor: u64, spout: Option<TaskId>) {
        let acker = match self.acker {
            Some(a) => a,
            None => return,
        };
        let msg = Tuple::on_stream(
            self.task,
            StreamId::ACK,
            vec![
                Value::Int(root as i64),
                Value::Int(xor as i64),
                match spout {
                    Some(s) => Value::Int(s.0 as i64),
                    None => Value::Nil,
                },
            ],
        );
        let blob = Bytes::from(encode_tuple_vec(&msg, &self.ser));
        self.transfer.entry(acker).or_default().push((blob, 0));
        if self.transfer.get(&acker).map_or(0, Vec::len) >= TRANSFER_BATCH {
            self.flush_destination(acker);
        }
    }
}

impl Emitter for ExecutorCtx {
    fn emit_on(&mut self, stream: StreamId, values: Vec<Value>) {
        self.emit_tuple(stream, values);
    }
}

/// Drives one executor until shutdown. Run on a dedicated thread;
/// component panics kill the thread, which Nimbus notices via the missing
/// heartbeat (the baseline's only failure signal).
pub fn run(mut ctx: ExecutorCtx, component: Component) {
    match component {
        Component::Spout(spout) => run_spout(&mut ctx, spout),
        Component::Bolt(bolt) => run_bolt(&mut ctx, bolt),
        Component::Acker => run_acker(&mut ctx),
    }
}

const DRAIN_BATCH: usize = 256;

fn run_spout(ctx: &mut ExecutorCtx, mut spout: Box<dyn Spout>) {
    spout.open();
    while !ctx.shutdown.load(Ordering::Acquire) {
        ctx.heartbeat();
        let mut busy = false;
        // Ack results from the acker.
        for _ in 0..DRAIN_BATCH {
            let blob = match ctx.inbox.try_recv() {
                Ok(b) => b,
                Err(_) => break,
            };
            busy = true;
            let (tuple, _) = match decode_tuple(&blob, &ctx.ser) {
                Ok(t) => t,
                Err(_) => continue,
            };
            if tuple.meta.stream == StreamId::ACK_RESULT {
                let root = tuple.get(0).and_then(Value::as_int).unwrap_or(0) as u64;
                let ok = tuple.get(1).and_then(Value::as_bool).unwrap_or(false);
                if let Some((born, trace)) = ctx.pending.remove(&root) {
                    if ok {
                        ctx.registry.counter("acks.completed").inc();
                        ctx.registry
                            .histogram("latency")
                            .record_duration(born.elapsed());
                        ctx.trace.record(trace, Hop::Ack);
                        spout.ack(root);
                    } else {
                        ctx.registry.counter("acks.failed").inc();
                        spout.fail(root);
                    }
                }
            }
        }
        // Emit when allowed.
        let throttled = ctx.acker.is_some() && ctx.pending.len() >= ctx.max_pending;
        if !throttled && ctx.rate_allows() {
            let emitted = next_batch_rooted(ctx, spout.as_mut());
            busy |= emitted;
        }
        ctx.flush_transfers(false);
        if !busy {
            ctx.flush_transfers(true);
            ctx.outbound.flush_all();
            std::thread::sleep(Duration::from_micros(20)); // LINT: allow-sleep(idle backoff when the executor had no input)
        }
    }
}

/// Calls the spout once; each top-level emission becomes its own root tree
/// when acking is on.
fn next_batch_rooted(ctx: &mut ExecutorCtx, spout: &mut dyn Spout) -> bool {
    // Collect emissions first so each can get its own root.
    struct Collect(Vec<(StreamId, Vec<Value>)>);
    impl Emitter for Collect {
        fn emit_on(&mut self, stream: StreamId, values: Vec<Value>) {
            self.0.push((stream, values));
        }
    }
    let mut collect = Collect(Vec::new());
    let produced = spout.next_batch(&mut collect);
    let had_emissions = !collect.0.is_empty();
    ctx.rate_consume(collect.0.len() as u32);
    for (index, (stream, values)) in collect.0.into_iter().enumerate() {
        let trace = ctx.trace.sample();
        ctx.current_trace = trace;
        ctx.trace.record(trace, Hop::SpoutEmit);
        if ctx.acker.is_some() {
            let root = ctx.rng.gen::<u64>() | 1;
            ctx.current_root = root;
            ctx.accum_xor = 0;
            ctx.emit_tuple(stream, values);
            let xor = ctx.accum_xor;
            let task = ctx.task;
            ctx.send_acker(root, xor, Some(task));
            ctx.pending.insert(root, (Instant::now(), trace));
            ctx.current_root = 0;
            spout.emitted(index, root);
        } else {
            ctx.current_root = 0;
            ctx.emit_tuple(stream, values);
        }
        ctx.current_trace = 0;
        ctx.meter.mark(1);
    }
    produced || had_emissions
}

fn run_bolt(ctx: &mut ExecutorCtx, mut bolt: Box<dyn Bolt>) {
    bolt.prepare();
    while !ctx.shutdown.load(Ordering::Acquire) {
        ctx.heartbeat();
        let depth = ctx.inbox.len();
        ctx.registry.gauge("queue.depth").set(depth as i64);
        if let Some(cap) = ctx.mem_cap_items {
            if depth > cap {
                // Model of the JVM worker's OutOfMemoryError under
                // overload (Fig. 11): drop the queue and die; Nimbus will
                // restart the worker after the heartbeat timeout.
                while ctx.inbox.try_recv().is_ok() {}
                ctx.registry.counter("oom.crashes").inc();
                panic!("simulated OutOfMemoryError in {}", ctx.node);
            }
        }
        let mut busy = false;
        for _ in 0..DRAIN_BATCH {
            let blob = match ctx.inbox.try_recv() {
                Ok(b) => b,
                Err(_) => break,
            };
            busy = true;
            let (tuple, _) = match decode_tuple(&blob, &ctx.ser) {
                Ok(t) => t,
                Err(_) => continue,
            };
            if tuple.meta.stream == StreamId::CTRL_SIGNAL {
                ctx.current_root = 0;
                bolt.on_signal(ctx);
                continue;
            }
            ctx.registry.counter("tuples.received").inc();
            ctx.meter.mark(1);
            let input_id = tuple.meta.message_id;
            let input_trace = tuple.meta.trace;
            ctx.trace.record(input_trace, Hop::Deserialize);
            ctx.current_root = input_id.root;
            ctx.current_trace = input_trace;
            ctx.accum_xor = 0;
            bolt.execute(tuple, ctx);
            ctx.trace.record(input_trace, Hop::BoltExecute);
            // Auto-ack (Storm's BasicBolt discipline): input anchor XOR
            // the anchors of everything emitted during execute.
            if input_id.is_anchored() {
                let xor = input_id.anchor ^ ctx.accum_xor;
                ctx.send_acker(input_id.root, xor, None);
            }
            ctx.current_root = 0;
            ctx.current_trace = 0;
        }
        ctx.flush_transfers(false);
        if !busy {
            ctx.flush_transfers(true);
            ctx.outbound.flush_all();
            std::thread::sleep(Duration::from_micros(20)); // LINT: allow-sleep(idle backoff when the executor had no input)
        }
    }
}

fn run_acker(ctx: &mut ExecutorCtx) {
    let mut ledger = AckerLedger::new();
    let mut last_expire = Instant::now();
    while !ctx.shutdown.load(Ordering::Acquire) {
        ctx.heartbeat();
        let mut busy = false;
        for _ in 0..DRAIN_BATCH {
            let blob = match ctx.inbox.try_recv() {
                Ok(b) => b,
                Err(_) => break,
            };
            busy = true;
            let (tuple, _) = match decode_tuple(&blob, &ctx.ser) {
                Ok(t) => t,
                Err(_) => continue,
            };
            if tuple.meta.stream != StreamId::ACK {
                continue;
            }
            let root = tuple.get(0).and_then(Value::as_int).unwrap_or(0) as u64;
            let xor = tuple.get(1).and_then(Value::as_int).unwrap_or(0) as u64;
            let spout = tuple
                .get(2)
                .and_then(Value::as_int)
                .map(|s| TaskId(s as u32));
            if let Some((owner, outcome)) = ledger.apply(root, xor, spout, Instant::now()) {
                notify_spout(ctx, owner, root, outcome);
            }
        }
        if last_expire.elapsed() >= Duration::from_millis(100) {
            last_expire = Instant::now();
            for (root, owner, outcome) in ledger.expire(ctx.ack_timeout, Instant::now()) {
                notify_spout(ctx, owner, root, outcome);
            }
        }
        ctx.registry
            .gauge("acker.pending")
            .set(ledger.pending() as i64);
        ctx.flush_transfers(false);
        if !busy {
            ctx.flush_transfers(true);
            ctx.outbound.flush_all();
            std::thread::sleep(Duration::from_micros(20)); // LINT: allow-sleep(idle backoff when the executor had no input)
        }
    }
}

fn notify_spout(ctx: &mut ExecutorCtx, spout: TaskId, root: u64, outcome: AckOutcome) {
    let msg = Tuple::on_stream(
        ctx.task,
        StreamId::ACK_RESULT,
        vec![
            Value::Int(root as i64),
            Value::Bool(outcome == AckOutcome::Complete),
        ],
    );
    let blob = Bytes::from(encode_tuple_vec(&msg, &ctx.ser));
    ctx.transfer.entry(spout).or_default().push((blob, 0));
}

/// Builds a default-scratch executor context (shared by Nimbus and tests).
#[allow(clippy::too_many_arguments)]
pub fn make_ctx(
    task: TaskId,
    node: &str,
    routes: Vec<Route>,
    outbound: Outbound,
    inbox: Receiver<Bytes>,
    ser: Arc<SerStats>,
    heartbeats: Arc<Mutex<HashMap<TaskId, Instant>>>,
    meter: RateMeter,
    registry: Registry,
    acker: Option<TaskId>,
    max_pending: usize,
    ack_timeout: Duration,
    shutdown: Arc<AtomicBool>,
) -> ExecutorCtx {
    ExecutorCtx {
        task,
        node: node.to_owned(),
        routes,
        outbound,
        inbox,
        ser,
        heartbeats,
        meter,
        registry,
        acker,
        max_pending,
        ack_timeout,
        input_rate: Arc::new(Mutex::with_rank(
            rank::EXEC_RATE_CELL,
            "storm.executor.input_rate",
            None,
        )),
        mirror_to: Arc::new(Mutex::with_rank(
            rank::EXEC_MIRROR_CELL,
            "storm.executor.mirror_to",
            None,
        )),
        mem_cap_items: None,
        shutdown,
        trace: TraceCtx::disabled(),
        rng: SmallRng::seed_from_u64(task.0 as u64 ^ 0x5eed),
        pending: HashMap::new(),
        current_root: 0,
        current_trace: 0,
        accum_xor: 0,
        rate_window_start: Instant::now(),
        rate_window_count: 0,
        transfer: HashMap::new(),
        last_transfer_flush: Instant::now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Directory, Inbox};
    use typhoon_model::Grouping;

    fn harness(grouping: Grouping, hops: Vec<TaskId>) -> (ExecutorCtx, Vec<Inbox>, Arc<SerStats>) {
        let dir = Directory::new();
        let mut inboxes = Vec::new();
        for &h in &hops {
            let ib = Inbox::local();
            dir.register(h, ib.addr.clone());
            inboxes.push(ib);
        }
        let my_inbox = Inbox::local();
        let ser = SerStats::shared();
        let ctx = make_ctx(
            TaskId(100),
            "src",
            vec![Route {
                stream: StreamId::DEFAULT,
                downstream: "sink".into(),
                state: RoutingState::new(grouping, hops, vec![]),
            }],
            Outbound::new(dir),
            my_inbox.rx.clone(),
            ser.clone(),
            Arc::new(Mutex::new(HashMap::new())),
            RateMeter::per_second(),
            Registry::new(),
            None,
            1024,
            Duration::from_secs(30),
            Arc::new(AtomicBool::new(false)),
        );
        (ctx, inboxes, ser)
    }

    #[test]
    fn one_to_many_serializes_once_per_destination() {
        let hops: Vec<TaskId> = (0..4).map(TaskId).collect();
        let (mut ctx, inboxes, ser) = harness(Grouping::All, hops);
        ctx.emit_tuple(StreamId::DEFAULT, vec![Value::Int(7)]);
        ctx.flush_transfers(true);
        // The headline baseline cost: 4 destinations = 4 serializations.
        assert_eq!(ser.counts().0, 4);
        for ib in &inboxes {
            assert!(ib.rx.try_recv().is_ok(), "every sink got a copy");
        }
    }

    #[test]
    fn shuffle_serializes_once_per_tuple() {
        let hops: Vec<TaskId> = (0..4).map(TaskId).collect();
        let (mut ctx, _inboxes, ser) = harness(Grouping::Shuffle, hops);
        for _ in 0..8 {
            ctx.emit_tuple(StreamId::DEFAULT, vec![Value::Int(7)]);
        }
        assert_eq!(ser.counts().0, 8);
    }

    #[test]
    fn debug_mirror_adds_a_serialization() {
        let hops = vec![TaskId(0)];
        let (mut ctx, _inboxes, ser) = harness(Grouping::Global, hops);
        let dbg_inbox = Inbox::local();
        // Register the debug worker and flip the mirror on.
        ctx.outbound = {
            let dir = Directory::new();
            dir.register(TaskId(0), Inbox::local().addr.clone());
            dir.register(TaskId(999), dbg_inbox.addr.clone());
            Outbound::new(dir)
        };
        *ctx.mirror_to.lock() = Some(TaskId(999));
        ctx.emit_tuple(StreamId::DEFAULT, vec![Value::Int(1)]);
        ctx.flush_transfers(true);
        assert_eq!(ser.counts().0, 2, "base send + mirror send");
        let mirrored = dbg_inbox.rx.try_recv().unwrap();
        let (t, _) = decode_tuple(&mirrored, &ser).unwrap();
        assert_eq!(t.meta.stream, StreamId::DEBUG_MIRROR);
    }

    #[test]
    fn anchored_emissions_accumulate_xor() {
        let hops: Vec<TaskId> = (0..3).map(TaskId).collect();
        let (mut ctx, inboxes, ser) = harness(Grouping::All, hops);
        ctx.acker = Some(TaskId(500));
        ctx.current_root = 42;
        ctx.accum_xor = 0;
        ctx.emit_tuple(StreamId::DEFAULT, vec![Value::Int(1)]);
        ctx.flush_transfers(true);
        // Each of the three sends got a distinct anchor; XOR of the three
        // anchors on the wire equals the accumulated value.
        let mut wire_xor = 0u64;
        for ib in &inboxes {
            let blob = ib.rx.try_recv().unwrap();
            let (t, _) = decode_tuple(&blob, &ser).unwrap();
            assert_eq!(t.meta.message_id.root, 42);
            wire_xor ^= t.meta.message_id.anchor;
        }
        assert_eq!(wire_xor, ctx.accum_xor);
        assert_ne!(ctx.accum_xor, 0);
    }

    #[test]
    fn unroutable_tuples_are_counted() {
        let (mut ctx, _inboxes, _ser) = harness(Grouping::Shuffle, vec![]);
        ctx.emit_tuple(StreamId::DEFAULT, vec![]);
        assert_eq!(ctx.registry.snapshot().counter("tuples.unroutable"), 1);
    }
}
