//! # typhoon-storm — the Apache Storm-like baseline framework
//!
//! A faithful-from-scratch reimplementation of the baseline the paper
//! compares against (§2, §5, §6): application-level routing over
//! per-worker transport connections, with all the costs Typhoon's
//! cross-layer design removes:
//!
//! * **Per-destination serialization** — one-to-many routing serializes the
//!   tuple once *per destination* (see [`executor`]), the bottleneck behind
//!   Fig. 9's collapsing baseline curve.
//! * **Heartbeat-based fault detection** — workers heartbeat into the
//!   Nimbus-like manager ([`nimbus`]); a dead worker is only noticed after
//!   the heartbeat timeout, then restarted in place (Fig. 10(a)).
//! * **App-level debug mirroring** — enabling the debugger adds a real
//!   extra serialization+send per tuple (Fig. 12, Table 5).
//! * **XOR acker** — Storm's guaranteed processing ([`acker`]): spout-rooted
//!   tuple trees tracked with the XOR-ledger trick, replay on timeout
//!   (Fig. 8(b)).
//!
//! Topology vocabulary (spouts/bolts/groupings/schedulers) is shared with
//! Typhoon via `typhoon-model`, so the evaluation compares *transports and
//! control planes*, not application code.

#![warn(missing_docs)]

pub mod acker;
pub mod executor;
pub mod nimbus;
pub mod transport;

pub use acker::AckerLedger;
pub use nimbus::{StormCluster, StormConfig, TopologyHandle, TransportMode};

/// Errors raised by the baseline framework.
#[derive(Debug)]
pub enum StormError {
    /// Underlying topology/scheduling error.
    Model(typhoon_model::ModelError),
    /// Socket-level failure in TCP transport mode.
    Io(std::io::Error),
    /// The referenced topology is not running.
    UnknownTopology(String),
}

impl std::fmt::Display for StormError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StormError::Model(e) => write!(f, "model error: {e}"),
            StormError::Io(e) => write!(f, "io error: {e}"),
            StormError::UnknownTopology(t) => write!(f, "unknown topology {t:?}"),
        }
    }
}

impl std::error::Error for StormError {}

impl From<typhoon_model::ModelError> for StormError {
    fn from(e: typhoon_model::ModelError) -> Self {
        StormError::Model(e)
    }
}

impl From<std::io::Error> for StormError {
    fn from(e: std::io::Error) -> Self {
        StormError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StormError>;
