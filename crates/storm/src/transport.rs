//! Worker-to-worker transport: per-destination connections.
//!
//! Storm workers exchange serialized tuples over dedicated channels — Netty
//! TCP connections in the real system. Two modes reproduce the paper's
//! LOCAL/REMOTE split (Fig. 8): in-process channels, and real TCP over
//! loopback with 4-byte length-prefixed framing. Either way, the unit of
//! transfer is one serialized tuple blob, and a sender owns one connection
//! per destination task — so broadcasting means one send (and one
//! serialization, see [`crate::executor`]) per destination.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_diag::{rank, DiagMutex as Mutex, DiagRwLock as RwLock};
use typhoon_model::TaskId;

/// Cap on one transported blob (guards against corrupt length prefixes).
const MAX_BLOB: usize = 64 * 1024 * 1024;

/// Where a task's inbox can be reached.
#[derive(Debug, Clone)]
pub enum InboxAddr {
    /// Same-process channel.
    Local(Sender<Bytes>),
    /// TCP endpoint (the worker's listener).
    Tcp(SocketAddr),
}

/// The cluster-wide task directory: task → inbox address.
///
/// Nimbus updates it on (re)assignment; executors resolve destinations
/// lazily and cache TCP connections.
#[derive(Debug, Default, Clone)]
pub struct Directory {
    entries: Arc<RwLock<HashMap<TaskId, InboxAddr>>>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a task's inbox address.
    pub fn register(&self, task: TaskId, addr: InboxAddr) {
        self.entries.write().insert(task, addr);
    }

    /// Removes a task (on kill).
    pub fn unregister(&self, task: TaskId) {
        self.entries.write().remove(&task);
    }

    /// Resolves a task's address.
    pub fn lookup(&self, task: TaskId) -> Option<InboxAddr> {
        self.entries.read().get(&task).cloned()
    }
}

/// A worker's receiving side: a channel plus, in TCP mode, a listener
/// thread feeding it.
pub struct Inbox {
    /// The receive end the executor drains.
    pub rx: Receiver<Bytes>,
    /// The address to publish in the [`Directory`].
    pub addr: InboxAddr,
    _listener: Option<ListenerGuard>,
}

struct ListenerGuard {
    shutdown: Arc<std::sync::atomic::AtomicBool>,
}

impl Drop for ListenerGuard {
    fn drop(&mut self) {
        self.shutdown
            .store(true, std::sync::atomic::Ordering::Release);
    }
}

impl Inbox {
    /// A purely local inbox.
    pub fn local() -> Inbox {
        let (tx, rx) = unbounded(); // LINT: allow-unbounded(inbox mirrors socket buffering; acker windows bound in-flight tuples)
        Inbox {
            rx,
            addr: InboxAddr::Local(tx),
            _listener: None,
        }
    }

    /// A TCP inbox listening on an ephemeral loopback port. Accepts any
    /// number of peer connections; each gets a reader thread that decodes
    /// length-prefixed blobs into the channel.
    pub fn tcp() -> std::io::Result<Inbox> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = unbounded(); // LINT: allow-unbounded(inbox mirrors socket buffering; acker windows bound in-flight tuples)
        let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let shutdown2 = shutdown.clone();
        std::thread::Builder::new()
            .name("storm-inbox-accept".into())
            .spawn(move || {
                while !shutdown2.load(std::sync::atomic::Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let tx = tx.clone();
                            std::thread::spawn(move || {
                                let _ = stream.set_nonblocking(false);
                                let _ = stream.set_nodelay(true);
                                reader_loop(stream, tx);
                            });
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            // LINT: allow-sleep(nonblocking accept retry backoff on the transport listener thread)
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn inbox acceptor");
        Ok(Inbox {
            rx,
            addr: InboxAddr::Tcp(addr),
            _listener: Some(ListenerGuard { shutdown }),
        })
    }
}

fn reader_loop(mut stream: TcpStream, tx: Sender<Bytes>) {
    let mut len_buf = [0u8; 4];
    loop {
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_BLOB {
            return;
        }
        let mut body = vec![0u8; len];
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        if tx.send(Bytes::from(body)).is_err() {
            return;
        }
    }
}

/// How long written tuples may linger in the send buffer before a flush
/// (mirrors Netty's flush cadence in real Storm).
const FLUSH_INTERVAL: Duration = Duration::from_millis(1);

struct Conn {
    writer: BufWriter<TcpStream>,
    last_flush: Instant,
}

/// A sender's connection cache: one outbound path per destination task.
pub struct Outbound {
    directory: Directory,
    tcp_conns: Mutex<HashMap<TaskId, Conn>>,
}

impl Outbound {
    /// A fresh cache over the shared directory.
    pub fn new(directory: Directory) -> Self {
        Outbound {
            directory,
            tcp_conns: Mutex::with_rank(
                rank::TRANSPORT_CONNS,
                "storm.transport.tcp_conns",
                HashMap::new(),
            ),
        }
    }

    /// Sends one serialized tuple blob to `task`. Returns `false` when the
    /// destination is unknown or unreachable (Storm drops such tuples; the
    /// acker-driven replay recovers them in guaranteed mode).
    pub fn send(&self, task: TaskId, blob: &Bytes) -> bool {
        match self.directory.lookup(task) {
            Some(InboxAddr::Local(tx)) => tx.send(blob.clone()).is_ok(),
            Some(InboxAddr::Tcp(addr)) => self.send_tcp(task, addr, blob),
            None => false,
        }
    }

    fn send_tcp(&self, task: TaskId, addr: SocketAddr, blob: &Bytes) -> bool {
        let mut conns = self.tcp_conns.lock();
        if let std::collections::hash_map::Entry::Vacant(slot) = conns.entry(task) {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    slot.insert(Conn {
                        writer: BufWriter::with_capacity(64 * 1024, s),
                        // In the past, so a first lone send flushes
                        // immediately (low-rate paths stay low-latency).
                        last_flush: Instant::now() - FLUSH_INTERVAL,
                    });
                }
                Err(_) => return false,
            }
        }
        let conn = conns.get_mut(&task).expect("just inserted");
        let mut ok = conn
            .writer
            .write_all(&(blob.len() as u32).to_be_bytes())
            .and_then(|_| conn.writer.write_all(blob))
            .is_ok();
        // Netty-style cadence: let the buffer amortize syscalls, but never
        // hold tuples longer than the flush interval.
        if ok && conn.last_flush.elapsed() >= FLUSH_INTERVAL {
            ok = conn.writer.flush().is_ok();
            conn.last_flush = Instant::now();
        }
        if !ok {
            conns.remove(&task); // reconnect on next send
        }
        ok
    }

    /// Flushes every buffered connection (executors call this when idle so
    /// the last tuples of a burst never linger in a send buffer).
    pub fn flush_all(&self) {
        let mut conns = self.tcp_conns.lock();
        for conn in conns.values_mut() {
            let _ = conn.writer.flush();
            conn.last_flush = Instant::now();
        }
    }

    /// Drops the cached connection to `task` (after re-assignment).
    pub fn invalidate(&self, task: TaskId) {
        self.tcp_conns.lock().remove(&task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn recv_timeout(rx: &Receiver<Bytes>) -> Bytes {
        rx.recv_timeout(Duration::from_secs(5)).expect("blob")
    }

    #[test]
    fn local_send_receives_in_order() {
        let dir = Directory::new();
        let inbox = Inbox::local();
        dir.register(TaskId(1), inbox.addr.clone());
        let out = Outbound::new(dir);
        for i in 0..10u8 {
            assert!(out.send(TaskId(1), &Bytes::from(vec![i])));
        }
        for i in 0..10u8 {
            assert_eq!(recv_timeout(&inbox.rx)[0], i);
        }
    }

    #[test]
    fn tcp_send_round_trips() {
        let dir = Directory::new();
        let inbox = Inbox::tcp().unwrap();
        dir.register(TaskId(2), inbox.addr.clone());
        let out = Outbound::new(dir);
        assert!(out.send(TaskId(2), &Bytes::from(vec![42u8; 1000])));
        let got = recv_timeout(&inbox.rx);
        assert_eq!(got.len(), 1000);
        assert_eq!(got[0], 42);
    }

    #[test]
    fn unknown_destination_reports_failure() {
        let out = Outbound::new(Directory::new());
        assert!(!out.send(TaskId(9), &Bytes::from_static(b"x")));
    }

    #[test]
    fn multiple_senders_one_tcp_inbox() {
        let dir = Directory::new();
        let inbox = Inbox::tcp().unwrap();
        dir.register(TaskId(3), inbox.addr.clone());
        let threads: Vec<_> = (0..4u8)
            .map(|n| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let out = Outbound::new(dir);
                    for _ in 0..100 {
                        assert!(out.send(TaskId(3), &Bytes::from(vec![n])));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut count = 0;
        while count < 400 && Instant::now() < deadline {
            if inbox.rx.try_recv().is_ok() {
                count += 1;
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        assert_eq!(count, 400);
    }

    #[test]
    fn reregistration_repoints_destination() {
        // Nimbus re-assigns a task: new inbox, same task id.
        let dir = Directory::new();
        let old = Inbox::local();
        dir.register(TaskId(4), old.addr.clone());
        let out = Outbound::new(dir.clone());
        out.send(TaskId(4), &Bytes::from_static(b"old"));
        let new = Inbox::local();
        dir.register(TaskId(4), new.addr.clone());
        out.send(TaskId(4), &Bytes::from_static(b"new"));
        assert_eq!(&recv_timeout(&old.rx)[..], b"old");
        assert_eq!(&recv_timeout(&new.rx)[..], b"new");
    }
}
