//! Nimbus: topology submission, scheduling, supervision.
//!
//! The baseline's control plane (§2): builds and schedules topologies,
//! launches executors, and detects worker failure **only** through missing
//! heartbeats — after `heartbeat_timeout` a dead worker is restarted from
//! its blueprint. Compare the Typhoon fault detector, which reacts to a
//! switch `PortStatus` event immediately (Fig. 10).

use crate::executor::{self, Component, Route};
use crate::transport::{Directory, Inbox, Outbound};
use crate::{Result, StormError};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_diag::{rank, DiagMutex as Mutex};
use typhoon_metrics::{RateMeter, Registry};
use typhoon_model::{
    AppId, ComponentRegistry, Grouping, LogicalTopology, NodeKind, PhysicalTopology,
    RoundRobinScheduler, RoutingState, Scheduler, TaskId,
};
use typhoon_trace::Tracer;
use typhoon_tuple::ser::SerStats;

/// How executors exchange tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// In-process channels (the paper's LOCAL placement).
    Local,
    /// Real TCP over loopback (the paper's REMOTE placement).
    Tcp,
}

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Number of (simulated) compute hosts.
    pub hosts: usize,
    /// Worker slots per host.
    pub slots_per_host: usize,
    /// Transport between workers.
    pub mode: TransportMode,
    /// Enable guaranteed processing (spawns one acker per topology).
    pub acking: bool,
    /// Replay timeout for incomplete tuple trees.
    pub ack_timeout: Duration,
    /// Max in-flight spout roots when acking.
    pub max_pending: usize,
    /// Heartbeat staleness before a worker is declared dead. Storm's
    /// default is 30 s; experiments compress it.
    pub heartbeat_timeout: Duration,
    /// How often the monitor sweeps heartbeats.
    pub monitor_interval: Duration,
    /// Restart dead workers (Storm supervisors always do; disable to
    /// observe raw failure).
    pub restart_failed: bool,
    /// Per-node inbox caps modelling bounded worker memory: exceeding the
    /// cap crashes the worker with a simulated `OutOfMemoryError`
    /// (Fig. 11's overload failure).
    pub mem_caps: HashMap<String, usize>,
    /// End-to-end trace sampling: 1 in `trace_sample` spout emissions is
    /// traced across every hop (0 = off, the default).
    pub trace_sample: u32,
}

impl StormConfig {
    /// A local-transport cluster with `hosts` hosts.
    pub fn local(hosts: usize) -> Self {
        StormConfig {
            hosts,
            slots_per_host: 16,
            mode: TransportMode::Local,
            acking: false,
            ack_timeout: Duration::from_secs(30),
            max_pending: 1024,
            heartbeat_timeout: Duration::from_secs(30),
            monitor_interval: Duration::from_millis(100),
            restart_failed: true,
            mem_caps: HashMap::new(),
            trace_sample: 0,
        }
    }

    /// A TCP-transport cluster with `hosts` hosts.
    pub fn tcp(hosts: usize) -> Self {
        StormConfig {
            mode: TransportMode::Tcp,
            ..Self::local(hosts)
        }
    }

    /// Builder: enable acking.
    pub fn with_acking(mut self, timeout: Duration, max_pending: usize) -> Self {
        self.acking = true;
        self.ack_timeout = timeout;
        self.max_pending = max_pending;
        self
    }

    /// Builder: set the heartbeat timeout (fault-detection latency).
    pub fn with_heartbeat_timeout(mut self, t: Duration) -> Self {
        self.heartbeat_timeout = t;
        self
    }

    /// Builder: cap a node's inbox (simulated worker memory bound).
    pub fn with_mem_cap(mut self, node: &str, items: usize) -> Self {
        self.mem_caps.insert(node.to_owned(), items);
        self
    }

    /// Builder: enable end-to-end tuple tracing, sampling 1 in `rate`
    /// spout emissions.
    pub fn with_trace(mut self, rate: u32) -> Self {
        self.trace_sample = rate;
        self
    }
}

struct Blueprint {
    node: String,
    component: String,
    kind: NodeKind,
}

struct TopoInner {
    app: AppId,
    logical: LogicalTopology,
    physical: PhysicalTopology,
    blueprints: HashMap<TaskId, Blueprint>,
    acker_task: Option<TaskId>,
    shutdowns: Mutex<HashMap<TaskId, Arc<AtomicBool>>>,
    meters: Mutex<HashMap<TaskId, RateMeter>>,
    registries: Mutex<HashMap<TaskId, Registry>>,
    input_rates: Mutex<HashMap<TaskId, Arc<Mutex<Option<u32>>>>>,
    mirrors: Mutex<HashMap<TaskId, Arc<Mutex<Option<TaskId>>>>>,
    restarts: Mutex<HashMap<TaskId, u32>>,
    stopped: AtomicBool,
}

/// A running topology.
#[derive(Clone)]
pub struct TopologyHandle {
    cluster: StormCluster,
    inner: Arc<TopoInner>,
}

struct ClusterInner {
    config: StormConfig,
    components: ComponentRegistry,
    directory: Directory,
    ser: Arc<SerStats>,
    heartbeats: Arc<Mutex<HashMap<TaskId, Instant>>>,
    topologies: Mutex<Vec<Arc<TopoInner>>>,
    next_app: Mutex<u16>,
    /// Cluster-global task-ID allocator: topologies share the transport
    /// directory, so task IDs must be unique across applications.
    next_task_base: Mutex<u32>,
    monitor_shutdown: Arc<AtomicBool>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
    tracer: Option<Arc<Tracer>>,
}

/// The Storm-like cluster: Nimbus + supervisors collapsed into one object
/// (they share a process here; the division of labour is preserved in the
/// monitor/spawn split).
#[derive(Clone)]
pub struct StormCluster {
    inner: Arc<ClusterInner>,
}

impl StormCluster {
    /// Boots a cluster with the given component registry.
    pub fn new(config: StormConfig, components: ComponentRegistry) -> Self {
        let tracer = (config.trace_sample > 0).then(|| Tracer::new(config.trace_sample));
        let cluster = StormCluster {
            inner: Arc::new(ClusterInner {
                config,
                components,
                directory: Directory::new(),
                ser: SerStats::shared(),
                heartbeats: Arc::new(Mutex::with_rank(
                    rank::NIMBUS_HEARTBEATS,
                    "storm.nimbus.heartbeats",
                    HashMap::new(),
                )),
                topologies: Mutex::with_rank(rank::NIMBUS, "storm.nimbus.topologies", Vec::new()),
                next_app: Mutex::with_rank(rank::NIMBUS_APP_IDS, "storm.nimbus.next_app", 1),
                next_task_base: Mutex::with_rank(
                    rank::NIMBUS_TASK_IDS,
                    "storm.nimbus.next_task_base",
                    0,
                ),
                monitor_shutdown: Arc::new(AtomicBool::new(false)),
                monitor: Mutex::with_rank(rank::NIMBUS_MONITOR, "storm.nimbus.monitor", None),
                tracer,
            }),
        };
        cluster.start_monitor();
        cluster
    }

    /// Cluster-wide serialization counters (the Fig. 9 evidence).
    pub fn ser_stats(&self) -> &Arc<SerStats> {
        &self.inner.ser
    }

    /// The end-to-end tuple tracer (`None` unless the cluster was built
    /// with [`StormConfig::with_trace`]).
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.inner.tracer.as_ref()
    }

    fn make_inbox(&self) -> Result<Inbox> {
        Ok(match self.inner.config.mode {
            TransportMode::Local => Inbox::local(),
            TransportMode::Tcp => Inbox::tcp()?,
        })
    }

    /// Submits a topology: build → schedule (round-robin, Storm's default)
    /// → launch workers → start processing.
    pub fn submit(&self, logical: LogicalTopology) -> Result<TopologyHandle> {
        logical.validate()?;
        let app = {
            let mut next = self.inner.next_app.lock();
            let id = AppId(*next);
            *next += 1;
            id
        };
        let hosts: Vec<typhoon_model::HostInfo> = (0..self.inner.config.hosts)
            .map(|i| {
                typhoon_model::HostInfo::new(
                    i as u32,
                    &format!("h{i}"),
                    self.inner.config.slots_per_host,
                )
            })
            .collect();
        let mut physical = RoundRobinScheduler.schedule(app, &logical, &hosts)?;
        // Rebase task IDs into a cluster-global range (the directory is
        // shared across topologies).
        let base = {
            let mut next = self.inner.next_task_base.lock();
            let b = *next;
            *next = b + physical.assignments.len() as u32 + 1; // +1 for acker
            b
        };
        for a in &mut physical.assignments {
            a.task = TaskId(a.task.0 + base);
        }
        physical.task_watermark += base;

        let mut blueprints = HashMap::new();
        for a in &physical.assignments {
            let node = logical.node(&a.node).expect("scheduled node exists");
            blueprints.insert(
                a.task,
                Blueprint {
                    node: a.node.clone(),
                    component: a.component.clone(),
                    kind: node.kind,
                },
            );
        }
        let acker_task = self.inner.config.acking.then(|| physical.next_task_id());
        if let Some(acker) = acker_task {
            blueprints.insert(
                acker,
                Blueprint {
                    node: "__acker".into(),
                    component: "__acker".into(),
                    kind: NodeKind::Bolt,
                },
            );
        }

        let inner = Arc::new(TopoInner {
            app,
            logical,
            physical,
            blueprints,
            acker_task,
            shutdowns: Mutex::with_rank(
                rank::TOPO_SHUTDOWNS,
                "storm.topo.shutdowns",
                HashMap::new(),
            ),
            meters: Mutex::with_rank(rank::TOPO_METERS, "storm.topo.meters", HashMap::new()),
            registries: Mutex::with_rank(
                rank::TOPO_REGISTRIES,
                "storm.topo.registries",
                HashMap::new(),
            ),
            input_rates: Mutex::with_rank(
                rank::TOPO_INPUT_RATES,
                "storm.topo.input_rates",
                HashMap::new(),
            ),
            mirrors: Mutex::with_rank(rank::TOPO_MIRRORS, "storm.topo.mirrors", HashMap::new()),
            restarts: Mutex::with_rank(rank::TOPO_RESTARTS, "storm.topo.restarts", HashMap::new()),
            stopped: AtomicBool::new(false),
        });
        let handle = TopologyHandle {
            cluster: self.clone(),
            inner: inner.clone(),
        };

        // Create and publish every inbox first so no early emission is
        // lost, then spawn executors.
        let tasks: Vec<TaskId> = inner.blueprints.keys().copied().collect();
        let mut inboxes: HashMap<TaskId, Inbox> = HashMap::new();
        for &task in &tasks {
            let inbox = self.make_inbox()?;
            self.inner.directory.register(task, inbox.addr.clone());
            inboxes.insert(task, inbox);
        }
        for (task, inbox) in inboxes {
            self.spawn_executor(&inner, task, inbox)?;
        }
        self.inner.topologies.lock().push(inner);
        Ok(handle)
    }

    fn spawn_executor(&self, topo: &Arc<TopoInner>, task: TaskId, inbox: Inbox) -> Result<()> {
        let bp = topo
            .blueprints
            .get(&task)
            .ok_or_else(|| StormError::UnknownTopology(format!("task {task}")))?;
        let routes = self.build_routes(topo, &bp.node);
        let shutdown = Arc::new(AtomicBool::new(false));
        let meter = topo
            .meters
            .lock()
            .entry(task)
            .or_insert_with(RateMeter::per_second)
            .clone();
        let registry = topo.registries.lock().entry(task).or_default().clone();
        let mut ctx = executor::make_ctx(
            task,
            &bp.node,
            routes,
            Outbound::new(self.inner.directory.clone()),
            inbox.rx.clone(),
            self.inner.ser.clone(),
            self.inner.heartbeats.clone(),
            meter,
            registry,
            topo.acker_task.filter(|&a| a != task),
            self.inner.config.max_pending,
            self.inner.config.ack_timeout,
            shutdown.clone(),
        );
        ctx.input_rate = topo
            .input_rates
            .lock()
            .entry(task)
            .or_insert_with(|| {
                Arc::new(Mutex::with_rank(
                    rank::EXEC_RATE_CELL,
                    "storm.executor.input_rate",
                    None,
                ))
            })
            .clone();
        ctx.mirror_to = topo
            .mirrors
            .lock()
            .entry(task)
            .or_insert_with(|| {
                Arc::new(Mutex::with_rank(
                    rank::EXEC_MIRROR_CELL,
                    "storm.executor.mirror_to",
                    None,
                ))
            })
            .clone();
        ctx.mem_cap_items = self.inner.config.mem_caps.get(&bp.node).copied();
        if let Some(t) = &self.inner.tracer {
            ctx.trace = t.ctx();
        }

        let component = if Some(task) == topo.acker_task {
            Component::Acker
        } else {
            match bp.kind {
                NodeKind::Spout => {
                    Component::Spout(self.inner.components.make_spout(&bp.component)?)
                }
                NodeKind::Bolt => Component::Bolt(self.inner.components.make_bolt(&bp.component)?),
            }
        };
        topo.shutdowns.lock().insert(task, shutdown);
        // Keep the inbox alive for the executor's lifetime: move it in.
        std::thread::Builder::new()
            .name(format!("storm-{}-{}", bp.node, task))
            .spawn(move || {
                let _inbox = inbox;
                let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    executor::run(ctx, component);
                }));
            })
            .expect("spawn executor");
        Ok(())
    }

    fn build_routes(&self, topo: &Arc<TopoInner>, node: &str) -> Vec<Route> {
        let mut routes = Vec::new();
        for edge in topo.logical.edges_from(node) {
            let hops = topo.physical.tasks_of(&edge.to);
            let key_indices = match &edge.grouping {
                Grouping::Fields(keys) => topo
                    .logical
                    .node(node)
                    .and_then(|n| n.output_fields.resolve(keys).ok())
                    .unwrap_or_default(),
                _ => Vec::new(),
            };
            routes.push(Route {
                stream: edge.stream,
                downstream: edge.to.clone(),
                state: RoutingState::new(edge.grouping.clone(), hops, key_indices),
            });
        }
        routes
    }

    fn start_monitor(&self) {
        let cluster = self.clone();
        let shutdown = self.inner.monitor_shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("storm-nimbus-monitor".into())
            .spawn(move || {
                while !shutdown.load(Ordering::Acquire) {
                    cluster.sweep_heartbeats();
                    std::thread::sleep(cluster.inner.config.monitor_interval); // LINT: allow-sleep(heartbeat monitor tick on a dedicated thread)
                }
            })
            .expect("spawn monitor");
        *self.inner.monitor.lock() = Some(handle);
    }

    fn sweep_heartbeats(&self) {
        let timeout = self.inner.config.heartbeat_timeout;
        let now = Instant::now();
        let dead: Vec<TaskId> = {
            let hb = self.inner.heartbeats.lock();
            hb.iter()
                .filter(|(_, &t)| now.saturating_duration_since(t) > timeout)
                .map(|(&t, _)| t)
                .collect()
        };
        if dead.is_empty() {
            return;
        }
        let topologies: Vec<Arc<TopoInner>> = self.inner.topologies.lock().clone();
        for task in dead {
            self.inner.heartbeats.lock().remove(&task);
            if !self.inner.config.restart_failed {
                continue;
            }
            for topo in &topologies {
                if topo.stopped.load(Ordering::Acquire) || !topo.blueprints.contains_key(&task) {
                    continue;
                }
                // Storm supervisor behaviour: restart the worker in place
                // with a fresh component instance and a fresh inbox.
                *topo.restarts.lock().entry(task).or_insert(0) += 1;
                if let Ok(inbox) = self.make_inbox() {
                    self.inner.directory.register(task, inbox.addr.clone());
                    let _ = self.spawn_executor(topo, task, inbox);
                }
                break;
            }
        }
    }

    /// Stops the monitor and every running topology.
    pub fn shutdown(&self) {
        self.inner.monitor_shutdown.store(true, Ordering::Release);
        if let Some(t) = self.inner.monitor.lock().take() {
            let _ = t.join();
        }
        let topologies: Vec<Arc<TopoInner>> = self.inner.topologies.lock().clone();
        for topo in topologies {
            topo.stopped.store(true, Ordering::Release);
            for (_, flag) in topo.shutdowns.lock().iter() {
                flag.store(true, Ordering::Release);
            }
        }
    }
}

impl TopologyHandle {
    /// The application ID assigned at submission.
    pub fn app(&self) -> AppId {
        self.inner.app
    }

    /// The scheduled physical topology.
    pub fn physical(&self) -> &PhysicalTopology {
        &self.inner.physical
    }

    /// Tasks instantiating `node`.
    pub fn tasks_of(&self, node: &str) -> Vec<TaskId> {
        self.inner.physical.tasks_of(node)
    }

    /// The received/emitted-tuples meter of one task.
    pub fn meter(&self, task: TaskId) -> Option<RateMeter> {
        self.inner.meters.lock().get(&task).cloned()
    }

    /// The metrics registry of one task.
    pub fn registry(&self, task: TaskId) -> Option<Registry> {
        self.inner.registries.lock().get(&task).cloned()
    }

    /// Times each task has been restarted by the monitor.
    pub fn restarts(&self, task: TaskId) -> u32 {
        self.inner.restarts.lock().get(&task).copied().unwrap_or(0)
    }

    /// Caps (or uncaps) a spout task's emission rate.
    pub fn set_input_rate(&self, task: TaskId, rate: Option<u32>) {
        if let Some(cell) = self.inner.input_rates.lock().get(&task) {
            *cell.lock() = rate;
        }
    }

    /// Enables app-level debug mirroring from `src` to `debug` — the
    /// Storm-style live debugger with its extra serialization (Fig. 12).
    pub fn enable_debug(&self, src: TaskId, debug: TaskId) {
        if let Some(cell) = self.inner.mirrors.lock().get(&src) {
            *cell.lock() = Some(debug);
        }
    }

    /// Disables app-level debug mirroring from `src`.
    pub fn disable_debug(&self, src: TaskId) {
        if let Some(cell) = self.inner.mirrors.lock().get(&src) {
            *cell.lock() = None;
        }
    }

    /// Simulates a worker crash: the executor thread exits without
    /// deregistering, exactly like a process kill — detection is left to
    /// the heartbeat monitor.
    pub fn crash_task(&self, task: TaskId) {
        if let Some(flag) = self.inner.shutdowns.lock().get(&task) {
            flag.store(true, Ordering::Release);
        }
    }

    /// Gracefully stops the topology.
    pub fn kill(&self) {
        self.inner.stopped.store(true, Ordering::Release);
        for (task, flag) in self.inner.shutdowns.lock().iter() {
            flag.store(true, Ordering::Release);
            self.cluster.inner.directory.unregister(*task);
            self.cluster.inner.heartbeats.lock().remove(task);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;
    use std::sync::Arc as SArc;
    use typhoon_model::{Bolt, Emitter, Fields, Spout};
    use typhoon_tuple::{Tuple, Value};

    struct NumberSpout {
        next: i64,
        limit: i64,
    }

    impl Spout for NumberSpout {
        fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
            if self.next >= self.limit {
                return false;
            }
            out.emit(vec![Value::Int(self.next)]);
            self.next += 1;
            true
        }
    }

    struct DoubleBolt;

    impl Bolt for DoubleBolt {
        fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
            let v = input.get(0).and_then(Value::as_int).unwrap_or(0);
            out.emit(vec![Value::Int(v * 2)]);
        }
    }

    #[derive(Clone, Default)]
    struct SinkState {
        seen: SArc<PMutex<Vec<i64>>>,
    }

    struct SinkBolt {
        state: SinkState,
    }

    impl Bolt for SinkBolt {
        fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
            if let Some(v) = input.get(0).and_then(Value::as_int) {
                self.state.seen.lock().push(v);
            }
        }
    }

    fn registry_with_sink(limit: i64) -> (ComponentRegistry, SinkState) {
        let mut reg = ComponentRegistry::new();
        let sink_state = SinkState::default();
        reg.register_spout("numbers", move || NumberSpout { next: 0, limit });
        reg.register_bolt("double", || DoubleBolt);
        let s = sink_state.clone();
        reg.register_bolt("sink", move || SinkBolt { state: s.clone() });
        (reg, sink_state)
    }

    fn pipeline() -> LogicalTopology {
        LogicalTopology::builder("pipeline")
            .spout("src", "numbers", 1, Fields::new(["n"]))
            .bolt("mid", "double", 2, Fields::new(["n2"]))
            .bolt("out", "sink", 1, Fields::new(["n2"]))
            .edge("src", "mid", Grouping::Shuffle)
            .edge("mid", "out", Grouping::Global)
            .build()
            .unwrap()
    }

    fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let end = Instant::now() + deadline;
        while Instant::now() < end {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn pipeline_processes_all_tuples_local() {
        let (reg, sink) = registry_with_sink(500);
        let cluster = StormCluster::new(StormConfig::local(2), reg);
        let _handle = cluster.submit(pipeline()).unwrap();
        assert!(
            wait_until(Duration::from_secs(10), || sink.seen.lock().len() == 500),
            "saw {} of 500",
            sink.seen.lock().len()
        );
        let mut seen = sink.seen.lock().clone();
        seen.sort_unstable();
        let expected: Vec<i64> = (0..500).map(|n| n * 2).collect();
        assert_eq!(seen, expected, "every tuple doubled exactly once");
        cluster.shutdown();
    }

    #[test]
    fn pipeline_processes_all_tuples_tcp() {
        let (reg, sink) = registry_with_sink(200);
        let cluster = StormCluster::new(StormConfig::tcp(2), reg);
        let _handle = cluster.submit(pipeline()).unwrap();
        assert!(
            wait_until(Duration::from_secs(10), || sink.seen.lock().len() == 200),
            "saw {} of 200",
            sink.seen.lock().len()
        );
        cluster.shutdown();
    }

    #[test]
    fn acking_completes_every_root() {
        let (reg, sink) = registry_with_sink(300);
        let config = StormConfig::local(1).with_acking(Duration::from_secs(10), 64);
        let cluster = StormCluster::new(config, reg);
        let handle = cluster.submit(pipeline()).unwrap();
        let spout_task = handle.tasks_of("src")[0];
        assert!(
            wait_until(Duration::from_secs(15), || {
                handle
                    .registry(spout_task)
                    .map(|r| r.snapshot().counter("acks.completed"))
                    .unwrap_or(0)
                    == 300
            }),
            "completed {} of 300 roots",
            handle
                .registry(spout_task)
                .map(|r| r.snapshot().counter("acks.completed"))
                .unwrap_or(0)
        );
        assert_eq!(sink.seen.lock().len(), 300);
        // Latency histogram populated by the ack path.
        let snap = handle.registry(spout_task).unwrap().snapshot();
        let (count, _, p50, _) = snap.histograms["latency"];
        assert_eq!(count, 300);
        assert!(p50 > 0);
        cluster.shutdown();
    }

    #[test]
    fn heartbeat_monitor_restarts_crashed_worker() {
        let (reg, sink) = registry_with_sink(i64::MAX); // endless spout
        let config = StormConfig {
            heartbeat_timeout: Duration::from_millis(300),
            monitor_interval: Duration::from_millis(50),
            ..StormConfig::local(1)
        };
        let cluster = StormCluster::new(config, reg);
        let handle = cluster.submit(pipeline()).unwrap();
        let victim = handle.tasks_of("mid")[0];
        assert!(wait_until(Duration::from_secs(5), || !sink
            .seen
            .lock()
            .is_empty()));
        handle.crash_task(victim);
        assert!(
            wait_until(Duration::from_secs(10), || handle.restarts(victim) >= 1),
            "monitor never restarted the victim"
        );
        // The pipeline keeps flowing after the restart.
        let before = sink.seen.lock().len();
        assert!(wait_until(Duration::from_secs(10), || sink
            .seen
            .lock()
            .len()
            > before + 100));
        cluster.shutdown();
    }

    #[test]
    fn fields_grouping_keeps_keys_sticky_across_tasks() {
        // With a fields grouping over 3 tasks, every occurrence of a key
        // must land on the same physical task.
        #[derive(Clone, Default)]
        struct KeySink {
            per_key: SArc<PMutex<HashMap<String, Vec<u32>>>>,
        }
        struct KeyBolt {
            id: u32,
            sink: KeySink,
        }
        impl Bolt for KeyBolt {
            fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
                let key = input.get(0).and_then(Value::as_str).unwrap().to_owned();
                self.sink
                    .per_key
                    .lock()
                    .entry(key)
                    .or_default()
                    .push(self.id);
            }
        }
        struct WordSpout {
            i: usize,
        }
        impl Spout for WordSpout {
            fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
                if self.i >= 400 {
                    return false;
                }
                let word = ["apple", "pear", "plum", "fig"][self.i % 4];
                out.emit(vec![Value::Str(word.into())]);
                self.i += 1;
                true
            }
        }
        let sink = KeySink::default();
        let instance_counter = SArc::new(PMutex::new(0u32));
        let mut reg = ComponentRegistry::new();
        reg.register_spout("words", || WordSpout { i: 0 });
        let s2 = sink.clone();
        let c2 = instance_counter.clone();
        reg.register_bolt("keyed", move || {
            let mut c = c2.lock();
            *c += 1;
            KeyBolt {
                id: *c,
                sink: s2.clone(),
            }
        });
        let topo = LogicalTopology::builder("keys")
            .spout("src", "words", 1, Fields::new(["word"]))
            .bolt("count", "keyed", 3, Fields::new(["word"]))
            .edge("src", "count", Grouping::Fields(vec!["word".into()]))
            .build()
            .unwrap();
        let cluster = StormCluster::new(StormConfig::local(1), reg);
        let _h = cluster.submit(topo).unwrap();
        assert!(wait_until(Duration::from_secs(10), || {
            sink.per_key.lock().values().map(Vec::len).sum::<usize>() == 400
        }));
        for (key, tasks) in sink.per_key.lock().iter() {
            let first = tasks[0];
            assert!(
                tasks.iter().all(|&t| t == first),
                "key {key:?} visited multiple tasks: {tasks:?}"
            );
        }
        cluster.shutdown();
    }
}
