//! The XOR acker ledger — Storm's guaranteed processing (§6.1).
//!
//! Every spout-rooted tuple tree is tracked by a single 64-bit cell: the
//! XOR of every anchor ever created for the tree and every anchor ever
//! acknowledged. Creating an anchor XORs it in; completing it XORs it in
//! again (x ^ x = 0), so the cell returns to zero exactly when every tuple
//! in the tree has been processed — regardless of order, with O(1) state
//! per tree.
//!
//! Because the spout's *init* message and downstream *ack* messages race
//! through independent channels, [`AckerLedger::apply`] accepts them in any
//! order: a tree completes once its XOR is zero **and** its owning spout is
//! known (only the init carries the spout identity).

use std::collections::HashMap;
use std::time::{Duration, Instant};
use typhoon_tuple::tuple::TaskId;

/// Outcome the acker reports to the owning spout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckOutcome {
    /// The tree completed: every anchor was acknowledged.
    Complete,
    /// The tree timed out and should be replayed.
    TimedOut,
}

#[derive(Debug)]
struct Entry {
    xor: u64,
    spout: Option<TaskId>,
    born: Instant,
}

/// The acker's ledger: root id → XOR cell.
#[derive(Debug, Default)]
pub struct AckerLedger {
    entries: HashMap<u64, Entry>,
}

impl AckerLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trees currently in flight.
    pub fn pending(&self) -> usize {
        self.entries.len()
    }

    /// Applies one acker message. The spout's init passes
    /// `spout = Some(task)` with the XOR of the root's initial anchors;
    /// downstream acks pass `spout = None` with `input_anchor XOR
    /// new_anchors`. Returns the spout to notify when the tree completes.
    pub fn apply(
        &mut self,
        root: u64,
        xor: u64,
        spout: Option<TaskId>,
        now: Instant,
    ) -> Option<(TaskId, AckOutcome)> {
        let entry = self.entries.entry(root).or_insert(Entry {
            xor: 0,
            spout: None,
            born: now,
        });
        entry.xor ^= xor;
        if spout.is_some() {
            entry.spout = spout;
        }
        if entry.xor == 0 {
            if let Some(owner) = entry.spout {
                self.entries.remove(&root);
                return Some((owner, AckOutcome::Complete));
            }
        }
        None
    }

    /// Expires trees older than `timeout`, returning the spout
    /// notifications to deliver (triggering replay). Trees whose init was
    /// never seen expire silently (there is no spout to notify).
    pub fn expire(&mut self, timeout: Duration, now: Instant) -> Vec<(u64, TaskId, AckOutcome)> {
        let expired: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| now.saturating_duration_since(e.born) >= timeout)
            .map(|(&r, _)| r)
            .collect();
        expired
            .into_iter()
            .filter_map(|root| {
                let e = self.entries.remove(&root).expect("listed above");
                e.spout.map(|s| (root, s, AckOutcome::TimedOut))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPOUT: TaskId = TaskId(0);

    #[test]
    fn linear_chain_completes() {
        // spout → A → B, one tuple each hop.
        let mut l = AckerLedger::new();
        let now = Instant::now();
        let a0 = 0x1111;
        assert!(l.apply(1, a0, Some(SPOUT), now).is_none());
        // A acks its input (a0) and emits one anchored tuple (a1).
        let a1 = 0x2222;
        assert!(l.apply(1, a0 ^ a1, None, now).is_none());
        // B acks a1 and emits nothing.
        let done = l.apply(1, a1, None, now).expect("complete");
        assert_eq!(done, (SPOUT, AckOutcome::Complete));
        assert_eq!(l.pending(), 0);
    }

    #[test]
    fn fanout_tree_completes_in_any_order() {
        let mut l = AckerLedger::new();
        let now = Instant::now();
        let a0 = 7;
        l.apply(1, a0, Some(SPOUT), now);
        let (a1, a2, a3) = (11, 22, 33);
        assert!(l.apply(1, a0 ^ a1 ^ a2 ^ a3, None, now).is_none());
        assert!(l.apply(1, a2, None, now).is_none());
        assert!(l.apply(1, a3, None, now).is_none());
        assert!(l.apply(1, a1, None, now).is_some());
    }

    #[test]
    fn init_arriving_after_downstream_acks_still_completes() {
        // The race the channel design allows: a bolt's ack beats the init.
        let mut l = AckerLedger::new();
        let now = Instant::now();
        let a0 = 0x77;
        assert!(l.apply(1, a0, None, now).is_none(), "ack first");
        let done = l.apply(1, a0, Some(SPOUT), now).expect("init second");
        assert_eq!(done, (SPOUT, AckOutcome::Complete));
    }

    #[test]
    fn zero_anchor_init_completes_immediately() {
        let mut l = AckerLedger::new();
        let r = l.apply(5, 0, Some(SPOUT), Instant::now());
        assert_eq!(r, Some((SPOUT, AckOutcome::Complete)));
        assert_eq!(l.pending(), 0);
    }

    #[test]
    fn timeout_expires_incomplete_trees_only() {
        let mut l = AckerLedger::new();
        let t0 = Instant::now();
        l.apply(1, 5, Some(SPOUT), t0);
        l.apply(2, 6, Some(TaskId(1)), t0 + Duration::from_secs(10));
        let expired = l.expire(Duration::from_secs(5), t0 + Duration::from_secs(11));
        assert_eq!(expired, vec![(1, SPOUT, AckOutcome::TimedOut)]);
        assert_eq!(l.pending(), 1);
    }

    #[test]
    fn orphan_tree_expires_silently() {
        // Updates arrived but the init never did (spout died): no
        // notification target exists.
        let mut l = AckerLedger::new();
        let t0 = Instant::now();
        l.apply(9, 3, None, t0);
        let expired = l.expire(Duration::from_secs(1), t0 + Duration::from_secs(2));
        assert!(expired.is_empty());
        assert_eq!(l.pending(), 0);
    }

    #[test]
    fn two_trees_are_independent() {
        let mut l = AckerLedger::new();
        let now = Instant::now();
        l.apply(1, 0xa, Some(SPOUT), now);
        l.apply(2, 0xb, Some(SPOUT), now);
        assert!(l.apply(2, 0xb, None, now).is_some());
        assert_eq!(l.pending(), 1);
        assert!(l.apply(1, 0xa, None, now).is_some());
    }
}
