//! Self-tests: the linter must report the exact rules and line numbers
//! for the violation fixtures, and nothing for the clean fixture — both
//! through the library API and through the installed binary (`--json`).

use std::path::PathBuf;
use std::process::Command;

fn fixtures(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(sub)
}

#[test]
fn lib_reports_exact_rules_and_lines_for_bad_fixture() {
    let diags = typhoon_lint::check_workspace(&fixtures("bad")).expect("scan");
    let got: Vec<(&str, &str, usize)> = diags
        .iter()
        .map(|d| (d.rule, d.path.as_str(), d.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("TL006", "crates/core/src/raw_spawn.rs", 4),
            ("TL006", "crates/core/src/raw_spawn.rs", 8),
            ("TL007", "crates/storm/src/lock_order.rs", 15),
            ("TL007", "crates/storm/src/lock_order.rs", 21),
            ("TL002", "crates/storm/src/raw_lock.rs", 3),
            ("TL002", "crates/storm/src/raw_lock.rs", 5),
            ("TL008", "crates/storm/src/send_under_lock.rs", 11),
            ("TL007", "cycle.rs", 18),
            ("TL001", "violations.rs", 5),
            ("TL005", "violations.rs", 9),
            ("TL004", "violations.rs", 13),
            ("TL003", "violations.rs", 16),
            ("TL003", "violations.rs", 20),
        ],
    );
}

#[test]
fn lib_reports_nothing_for_clean_fixture() {
    let diags = typhoon_lint::check_workspace(&fixtures("clean")).expect("scan");
    assert_eq!(diags, vec![], "clean fixture must produce no diagnostics");
}

#[test]
fn binary_json_output_and_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_typhoon-lint");

    let bad = Command::new(bin)
        .args(["check", "--json", "--root"])
        .arg(fixtures("bad"))
        .output()
        .expect("run typhoon-lint");
    assert_eq!(bad.status.code(), Some(1), "violations must exit 1");
    let json = String::from_utf8(bad.stdout).expect("utf8");
    for expected in [
        r#""rule":"TL001","path":"violations.rs","line":5"#,
        r#""rule":"TL005","path":"violations.rs","line":9"#,
        r#""rule":"TL004","path":"violations.rs","line":13"#,
        r#""rule":"TL003","path":"violations.rs","line":16"#,
        r#""rule":"TL003","path":"violations.rs","line":20"#,
        r#""rule":"TL002","path":"crates/storm/src/raw_lock.rs","line":3"#,
        r#""rule":"TL002","path":"crates/storm/src/raw_lock.rs","line":5"#,
        r#""rule":"TL006","path":"crates/core/src/raw_spawn.rs","line":4"#,
        r#""rule":"TL006","path":"crates/core/src/raw_spawn.rs","line":8"#,
        r#""rule":"TL007","path":"crates/storm/src/lock_order.rs","line":15"#,
        r#""rule":"TL007","path":"crates/storm/src/lock_order.rs","line":21"#,
        r#""rule":"TL008","path":"crates/storm/src/send_under_lock.rs","line":11"#,
        r#""rule":"TL007","path":"cycle.rs","line":18"#,
    ] {
        assert!(json.contains(expected), "missing {expected} in:\n{json}");
    }
    assert_eq!(json.matches(r#""rule":"#).count(), 13, "no extras:\n{json}");
    // Every diagnostic carries a one-line rationale for its rule.
    assert_eq!(
        json.matches(r#""rationale":""#).count(),
        13,
        "every finding needs a rationale:\n{json}"
    );
    assert!(
        json.contains("A total lock order (strictly increasing ranks) makes deadlock impossible."),
        "TL007 rationale missing:\n{json}"
    );

    let clean = Command::new(bin)
        .args(["check", "--json", "--root"])
        .arg(fixtures("clean"))
        .output()
        .expect("run typhoon-lint");
    assert_eq!(clean.status.code(), Some(0), "clean tree must exit 0");
    assert_eq!(String::from_utf8(clean.stdout).expect("utf8").trim(), "[]");
}

#[test]
fn binary_graph_emits_deterministic_dot() {
    let bin = env!("CARGO_BIN_EXE_typhoon-lint");
    let run = || {
        let out = Command::new(bin)
            .args(["graph", "--root"])
            .arg(fixtures("clean"))
            .output()
            .expect("run typhoon-lint graph");
        assert_eq!(out.status.code(), Some(0), "graph must exit 0");
        String::from_utf8(out.stdout).expect("utf8")
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "DOT output must be deterministic");
    assert!(
        first.contains(r#""fixture.outer""#),
        "ranked node missing:\n{first}"
    );
    assert!(
        first.contains(r#""fixture.outer" -> "fixture.inner""#),
        "nesting edge missing:\n{first}"
    );
}

#[test]
fn binary_rejects_bad_usage() {
    let bin = env!("CARGO_BIN_EXE_typhoon-lint");
    for args in [&[][..], &["frobnicate"][..], &["check", "--root"][..]] {
        let out = Command::new(bin).args(args).output().expect("run");
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
    }
}

#[test]
fn real_workspace_is_clean() {
    // The tree this linter ships in must satisfy its own rules.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let diags = typhoon_lint::check_workspace(&root).expect("scan");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
