//! Runtime-crate fixture: spawns done right — supervised, or waived with
//! a reason. The linter must report nothing here.

fn supervised() {
    let _h = typhoon_diag::spawn_supervised("worker", |_e| {}, || {});
}

fn short_lived() {
    // LINT: allow-raw-spawn(scoped helper joined before return)
    let h = std::thread::spawn(|| {});
    let _ = h.join();
}
