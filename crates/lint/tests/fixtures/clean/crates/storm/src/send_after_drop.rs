//! The TL008-compliant shape: clone the senders under the lock, send
//! after the guard drops — plus an explicitly waived handshake send.
use typhoon_diag::DiagMutex as Mutex;

#[derive(Clone)]
struct Sender;

impl Sender {
    fn send(&self, _value: u32) -> Result<(), ()> {
        Ok(())
    }
}

struct Hub {
    peers: Mutex<Vec<Sender>>,
}

fn broadcast(hub: &Hub, value: u32) {
    let peers = {
        let guard = hub.peers.lock();
        guard.clone()
    };
    for tx in peers {
        let _ = tx.send(value);
    }
}

fn handshake(hub: &Hub, tx: &Sender, value: u32) {
    let guard = hub.peers.lock();
    // LINT: allow-send-under-lock(rendezvous handshake; the receiver drains before taking this lock)
    let _ = tx.send(value);
    drop(guard);
}
