//! Ranked locks acquired in increasing rank order, plus a waived
//! unranked scratch lock.
use typhoon_diag::{DiagMutex as Mutex, LockRank};

struct Tables {
    outer: Mutex<u32>,
    inner: Mutex<u32>,
    scratch: Mutex<u32>,
}

fn build() -> Tables {
    Tables {
        outer: Mutex::with_rank(LockRank(200), "fixture.outer", 0),
        inner: Mutex::with_rank(LockRank(300), "fixture.inner", 0),
        // LINT: allow-unranked-lock(scratch pad local to this helper)
        scratch: Mutex::new(0),
    }
}

fn nested(t: &Tables) {
    let outer = t.outer.lock();
    let inner = t.inner.lock();
    drop(inner);
    drop(outer);
}
