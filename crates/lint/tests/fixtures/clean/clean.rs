//! Linter fixture: every would-be violation is properly waived or
//! documented; the linter must report nothing for this tree.

fn lock_unwrap(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap() // LINT: allow-lock-unwrap(single-threaded setup code)
}

fn sleepy() {
    // LINT: allow-sleep(fixture pacing loop)
    std::thread::sleep(std::time::Duration::from_millis(1));
}

fn chan() {
    let (_tx, _rx) = crossbeam::channel::unbounded::<u8>(); // LINT: allow-unbounded(fixture control channel)
}

fn blocky() {
    let p: *const u8 = std::ptr::null();
    // SAFETY: p is only compared, never dereferenced for real.
    unsafe {
        let _ = *p;
    }
}

fn mentions_only() {
    let _doc = "an unbounded( call inside a string is not a violation";
    // thread::sleep in a comment is not a violation either
}
