//! TL007 fixture: an acquisition-order cycle between two locks.
use typhoon_diag::{DiagMutex as Mutex, LockRank};

struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

fn build() -> Pair {
    Pair {
        alpha: Mutex::with_rank(LockRank(0), "fixture.alpha", 0),
        beta: Mutex::with_rank(LockRank(0), "fixture.beta", 0),
    }
}

fn ab(p: &Pair) {
    let a = p.alpha.lock();
    let b = p.beta.lock();
    drop(b);
    drop(a);
}

fn ba(p: &Pair) {
    let b = p.beta.lock();
    let a = p.alpha.lock();
    drop(a);
    drop(b);
}
