//! Linter fixture: known violations with stable line numbers.
//! lint_self.rs asserts the exact (rule, line) pairs reported here.

fn lock_unwrap(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

fn sleepy() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

fn chan() {
    let (_tx, _rx) = crossbeam::channel::unbounded::<u8>();
}

unsafe fn danger() {}

fn blocky() {
    let p: *const u8 = std::ptr::null();
    unsafe {
        let _ = *p;
    }
}
