//! Runtime-crate fixture: raw spawns where spawn_supervised is required.

fn looper() {
    let _h = std::thread::spawn(|| {});
}

fn named() {
    let _h = std::thread::Builder::new().name("x".into()).spawn(|| {});
}
