//! TL008 fixture: a blocking channel send while a lock guard is live.
use typhoon_diag::DiagMutex as Mutex;

struct Hub {
    peers: Mutex<Vec<u32>>,
}

fn broadcast(hub: &Hub, tx: &std::sync::mpsc::Sender<u32>) {
    let peers = hub.peers.lock();
    for &p in peers.iter() {
        let _ = tx.send(p);
    }
}
