//! Hot-crate fixture: raw locks where typhoon-diag wrappers are required.

use parking_lot::Mutex;

static SLOTS: std::sync::RwLock<u32> = std::sync::RwLock::new(0);
