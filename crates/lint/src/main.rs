//! CLI for the workspace invariant linter.
//!
//! ```text
//! typhoon-lint check [--json] [--root <dir>]
//! ```
//!
//! Exit status: 0 clean, 1 violations found, 2 usage or I/O error.
//! `cargo lint` is aliased to `cargo run -p typhoon-lint -- check` in
//! `.cargo/config.toml`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: typhoon-lint check [--json] [--root <dir>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd != "check" {
        eprintln!("unknown command: {cmd}");
        return usage();
    }
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }
    // `cargo run`/`cargo lint` executes from the invocation directory;
    // default to the workspace root that owns this binary so the whole
    // tree is scanned regardless of the caller's cwd.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let diags = match typhoon_lint::check_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("typhoon-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", typhoon_lint::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!("typhoon-lint: clean");
        } else {
            println!("typhoon-lint: {} violation(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
