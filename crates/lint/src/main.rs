//! CLI for the workspace invariant linter.
//!
//! ```text
//! typhoon-lint check [--json] [--root <dir>]
//! typhoon-lint graph [--root <dir>] [--out <file>]
//! ```
//!
//! `check` runs every rule (TL001–TL008) and exits 0 clean, 1 on
//! violations, 2 on usage or I/O error. `graph` renders the lock
//! acquisition-order graph as Graphviz DOT (stdout, or `--out` — CI
//! diffs it against the committed `docs/lock-order.dot`).
//! `cargo lint` is aliased to `cargo run -p typhoon-lint -- check` in
//! `.cargo/config.toml`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: typhoon-lint check [--json] [--root <dir>]\n       \
         typhoon-lint graph [--root <dir>] [--out <file>]"
    );
    ExitCode::from(2)
}

fn default_root() -> PathBuf {
    // `cargo run`/`cargo lint` executes from the invocation directory;
    // default to the workspace root that owns this binary so the whole
    // tree is scanned regardless of the caller's cwd.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    match cmd.as_str() {
        "check" => {
            let mut json = false;
            let mut root: Option<PathBuf> = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--root" => match args.next() {
                        Some(dir) => root = Some(PathBuf::from(dir)),
                        None => return usage(),
                    },
                    other => {
                        eprintln!("unknown argument: {other}");
                        return usage();
                    }
                }
            }
            let root = root.unwrap_or_else(default_root);
            let diags = match typhoon_lint::check_workspace(&root) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("typhoon-lint: failed to scan {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            if json {
                println!("{}", typhoon_lint::to_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
                if diags.is_empty() {
                    println!("typhoon-lint: clean");
                } else {
                    println!("typhoon-lint: {} violation(s)", diags.len());
                }
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "graph" => {
            let mut root: Option<PathBuf> = None;
            let mut out: Option<PathBuf> = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => match args.next() {
                        Some(dir) => root = Some(PathBuf::from(dir)),
                        None => return usage(),
                    },
                    "--out" => match args.next() {
                        Some(file) => out = Some(PathBuf::from(file)),
                        None => return usage(),
                    },
                    other => {
                        eprintln!("unknown argument: {other}");
                        return usage();
                    }
                }
            }
            let root = root.unwrap_or_else(default_root);
            let graph = match typhoon_lint::graph::analyze(&root) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("typhoon-lint: failed to scan {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            let dot = graph.to_dot();
            match out {
                Some(file) => {
                    if let Err(e) = std::fs::write(&file, dot) {
                        eprintln!("typhoon-lint: failed to write {}: {e}", file.display());
                        return ExitCode::from(2);
                    }
                    eprintln!(
                        "typhoon-lint: wrote {} ({} lock(s), {} edge(s))",
                        file.display(),
                        graph.sites.len(),
                        graph.edges.len()
                    );
                }
                None => print!("{dot}"),
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}");
            usage()
        }
    }
}
