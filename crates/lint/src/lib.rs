//! # typhoon-lint — workspace invariant linter
//!
//! A dependency-free static checker for the concurrency discipline the
//! Typhoon workspace relies on (see `docs/CONCURRENCY.md`). It is not a
//! Rust parser: it tokenizes just enough (comments and string literals
//! stripped, `#[cfg(test)]` regions tracked by brace matching) to make the
//! eight rules below reliable on idiomatic code, and it runs in
//! milliseconds with zero dependencies so CI can gate on it.
//!
//! | Rule  | What it flags | Waiver |
//! |-------|---------------|--------|
//! | TL001 | `.lock().unwrap()` / `.read().unwrap()` / `.write().unwrap()` in non-test code (poisoning panics propagate) | `// LINT: allow-lock-unwrap(reason)` |
//! | TL002 | raw `std::sync::Mutex`/`RwLock` or `parking_lot` in hot-path crates instead of `typhoon-diag` wrappers | `// LINT: allow-raw-lock(reason)` |
//! | TL003 | `unsafe` without a `// SAFETY:` comment | the `// SAFETY:` comment itself |
//! | TL004 | unbounded channels in non-test code (unbackpressured queues hide overload) | `// LINT: allow-unbounded(reason)` |
//! | TL005 | `std::thread::sleep` in library code (blocks an executor thread) | `// LINT: allow-sleep(reason)` |
//! | TL006 | raw `thread::spawn`/`thread::Builder` in runtime crates instead of `typhoon_diag::spawn_supervised` (a silent thread death is an undetectable fault) | `// LINT: allow-raw-spawn(reason)` |
//! | TL007 | lock-order violations: unranked Diag locks in hot-path crates, acquisition nesting that contradicts the declared ranks, and cycles in the acquisition-order graph (see [`graph`]) | `// LINT: allow-unranked-lock(reason)` |
//! | TL008 | blocking channel `.send()`/`.recv()` while a lock guard is held (couples queue backpressure to the lock) | `// LINT: allow-send-under-lock(reason)` |
//!
//! Waivers go on the offending line or the line directly above it, and
//! must carry a reason in parentheses.
//!
//! Test code — anything under a `tests/`, `benches/` or `examples/`
//! directory, and `#[cfg(test)]` regions inside `src/` — is exempt from
//! every rule except TL003.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod graph;

/// Crates whose `src/` must use `typhoon-diag` wrappers instead of raw
/// locks (TL002). These sit on the dataplane or control loops where an
/// undetected deadlock or poisoned lock takes the whole pipeline down.
pub const HOT_CRATES: &[&str] = &[
    "crates/net",
    "crates/switch",
    "crates/storm",
    "crates/core",
    "crates/coordinator",
    "crates/controller",
];

/// Crates whose `src/` must spawn threads through
/// `typhoon_diag::spawn_supervised` (TL006). These own the long-lived
/// runtime threads — workers, switch datapaths, manager loops — where an
/// uncaught panic silently kills a thread the rest of the system assumes
/// is alive; the supervised wrapper turns that into a counted, logged
/// fault the recovery machinery can observe.
pub const SUPERVISED_CRATES: &[&str] = &["crates/core", "crates/switch"];

/// Directories never scanned (build output, vendored shims, VCS, and the
/// linter's own violation fixtures).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier, `TL001`..`TL006`.
    pub rule: &'static str,
    /// Path relative to the scanned root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation with the expected remedy.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

impl Diagnostic {
    /// Serializes the diagnostic as a JSON object. Includes the rule's
    /// one-line rationale so machine consumers (CI annotations, editor
    /// integrations) can explain a finding without a lookup table.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"rule":"{}","path":"{}","line":{},"message":"{}","rationale":"{}"}}"#,
            self.rule,
            json_escape(&self.path),
            self.line,
            json_escape(&self.message),
            json_escape(rationale(self.rule))
        )
    }
}

/// One-line rationale for each rule: *why* the workspace enforces it.
pub fn rationale(rule: &str) -> &'static str {
    match rule {
        "TL001" => "Poisoned locks propagate panics across threads; recover the guard instead.",
        "TL002" => "Hot-path locks need debug-build deadlock and hold-time diagnostics.",
        "TL003" => "Every unsafe block needs a written proof of the invariants it relies on.",
        "TL004" => "Unbounded queues hide overload instead of applying backpressure.",
        "TL005" => "Sleeping blocks an executor thread the scheduler believes is live.",
        "TL006" => "A raw thread dies silently; supervised spawns surface panics to recovery.",
        "TL007" => "A total lock order (strictly increasing ranks) makes deadlock impossible.",
        "TL008" => "Blocking channel ops under a lock couple queue pressure to the lock.",
        _ => "Unknown rule.",
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a full diagnostic list as a JSON array (one object per line).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&d.to_json());
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

// --------------------------------------------------------------- scanning

/// A source line after comment/string stripping, plus the comment text
/// that was removed (waivers and SAFETY markers live in comments).
pub(crate) struct Line {
    /// Code with comments replaced by nothing and string/char literal
    /// *contents* blanked (delimiters kept), so pattern matches never fire
    /// inside literals or comments.
    pub(crate) code: String,
    /// Concatenated comment text on this line (line + block comments).
    pub(crate) comment: String,
}

/// Strips comments and blanks string-literal contents, preserving line
/// structure. Handles `//`, `/* */` (nested), `"…"` with escapes, raw
/// strings `r#"…"#`, char literals, and lifetimes (`'a` is not a char).
pub(crate) fn strip(source: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Block(usize),  // nesting depth
        Str,           // inside "…"
        RawStr(usize), // inside r##"…"##, hash count
    }
    let mut lines = Vec::new();
    let mut st = St::Code;
    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match st {
                St::Code => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(
                            &raw[raw.char_indices().nth(i).map(|(b, _)| b).unwrap_or(0)..],
                        );
                        i = bytes.len();
                    }
                    '/' if next == Some('*') => {
                        st = St::Block(1);
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        st = St::Str;
                        i += 1;
                    }
                    'r' if next == Some('"') || next == Some('#') => {
                        // Possible raw string: r"…" or r#"…"#
                        let mut j = i + 1;
                        let mut hashes = 0;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            code.push('"');
                            st = St::RawStr(hashes);
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: a char literal closes
                        // with ' within a few chars; a lifetime does not.
                        let close = if bytes.get(i + 1) == Some(&'\\') {
                            // escaped char: find the next '
                            (i + 2..bytes.len().min(i + 8)).find(|&j| bytes[j] == '\'')
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            Some(i + 2)
                        } else {
                            None
                        };
                        match close {
                            Some(j) => {
                                code.push_str("' '");
                                i = j + 1;
                            }
                            None => {
                                code.push('\'');
                                i += 1;
                            }
                        }
                    }
                    c => {
                        code.push(c);
                        i += 1;
                    }
                },
                St::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        st = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        st = St::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                St::Str => {
                    if c == '\\' {
                        i += 2; // skip escaped char
                    } else if c == '"' {
                        code.push('"');
                        st = St::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if bytes.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            code.push('"');
                            st = St::Code;
                            i += 1 + hashes;
                            continue;
                        }
                    }
                    i += 1;
                }
            }
        }
        lines.push(Line { code, comment });
    }
    lines
}

/// Marks lines inside `#[cfg(test)]`-gated brace regions. Handles the
/// idiomatic `#[cfg(test)] mod tests { … }` (attribute and item on the
/// same or following lines) by matching braces on stripped code.
pub(crate) fn cfg_test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Find the opening brace of the gated item.
            let mut depth = 0usize;
            let mut opened = false;
            let mut j = i;
            'scan: while j < lines.len() {
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break 'scan;
                            }
                        }
                        ';' if !opened && depth == 0 => break 'scan, // `#[cfg(test)] use …;`
                        _ => {}
                    }
                }
                j += 1;
            }
            let end = j.min(lines.len() - 1);
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// True when `rel` (a /-separated relative path) lies in a test-only tree.
pub(crate) fn is_test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

pub(crate) fn waived(lines: &[Line], idx: usize, tag: &str) -> bool {
    let here = &lines[idx].comment;
    let above = idx.checked_sub(1).map(|p| lines[p].comment.as_str());
    let hit = |c: &str| {
        let Some(rest) = c.split("LINT:").nth(1) else {
            return false;
        };
        // A waiver must carry a non-empty reason: `allow-x()` waives nothing.
        let needle = format!("{tag}(");
        rest.match_indices(&needle).any(|(i, _)| {
            let tail = &rest[i + needle.len()..];
            let reason = tail.split(')').next().unwrap_or("");
            !reason.trim().is_empty()
        })
    };
    hit(here) || above.map(hit).unwrap_or(false)
}

/// Lints one file's source. `rel` is the /-separated path relative to the
/// workspace root (used for hot-crate and test-tree classification).
pub fn check_source(rel: &str, source: &str) -> Vec<Diagnostic> {
    let lines = strip(source);
    let test_file = is_test_path(rel);
    let test_mask = if test_file {
        vec![true; lines.len()]
    } else {
        cfg_test_mask(&lines)
    };
    let hot = HOT_CRATES.iter().any(|c| rel.starts_with(&format!("{c}/")));
    let supervised = SUPERVISED_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("{c}/")));
    let in_bin_dir = rel.contains("/bin/");

    let mut diags = Vec::new();
    let mut push = |rule: &'static str, line: usize, message: String| {
        diags.push(Diagnostic {
            rule,
            path: rel.to_owned(),
            line: line + 1,
            message,
        });
    };

    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let in_test = test_mask[i];

        // TL003 applies everywhere, tests included: unsafe is unsafe.
        if let Some(col) = find_unsafe(code) {
            let _ = col;
            let documented = line.comment.contains("SAFETY:")
                || preceding_comment_block(&lines, i).contains("SAFETY:");
            if !documented {
                push(
                    "TL003",
                    i,
                    "`unsafe` without a `// SAFETY:` comment explaining why the \
                     invariants hold"
                        .into(),
                );
            }
        }

        if in_test {
            continue;
        }

        // TL001: poisoning unwraps on lock acquisition.
        if has_lock_unwrap(&lines, i) && !waived(&lines, i, "allow-lock-unwrap") {
            push(
                "TL001",
                i,
                "lock acquisition followed by `.unwrap()` propagates poisoning; \
                 use a typhoon-diag wrapper or `unwrap_or_else(PoisonError::into_inner)` \
                 (waive: `// LINT: allow-lock-unwrap(reason)`)"
                    .into(),
            );
        }

        // TL002: raw locks in hot crates.
        if hot && has_raw_lock(code) && !waived(&lines, i, "allow-raw-lock") {
            push(
                "TL002",
                i,
                "hot-path crate uses a raw std::sync/parking_lot lock; use \
                 typhoon_diag::{DiagMutex, DiagRwLock} so debug builds check \
                 lock discipline (waive: `// LINT: allow-raw-lock(reason)`)"
                    .into(),
            );
        }

        // TL004: unbounded channels.
        if has_unbounded(code) && !waived(&lines, i, "allow-unbounded") {
            push(
                "TL004",
                i,
                "unbounded channel in non-test code hides overload instead of \
                 applying backpressure; use `bounded(n)` or waive with \
                 `// LINT: allow-unbounded(reason)`"
                    .into(),
            );
        }

        // TL005: sleeps in library code (bin targets are driver programs,
        // not library code, so they may pace themselves).
        if !in_bin_dir && has_sleep(code) && !waived(&lines, i, "allow-sleep") {
            push(
                "TL005",
                i,
                "`thread::sleep` in library code blocks an executor thread; \
                 prefer condvars/timeouts, or waive with \
                 `// LINT: allow-sleep(reason)`"
                    .into(),
            );
        }

        // TL006: raw thread spawns in runtime crates. A panic in a raw
        // thread dies silently; the supervised wrapper logs it, counts it
        // and lets recovery observe it.
        if supervised && has_raw_spawn(code) && !waived(&lines, i, "allow-raw-spawn") {
            push(
                "TL006",
                i,
                "runtime crate spawns a raw thread; use \
                 `typhoon_diag::spawn_supervised` so a panic is captured, \
                 counted and visible to crash recovery (waive: \
                 `// LINT: allow-raw-spawn(reason)`)"
                    .into(),
            );
        }
    }
    diags
}

/// Comment text of the contiguous comment-only lines directly above `idx`.
fn preceding_comment_block(lines: &[Line], idx: usize) -> String {
    let mut text = String::new();
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if l.code.trim().is_empty() && !l.comment.is_empty() {
            text.push_str(&l.comment);
            text.push('\n');
        } else {
            break;
        }
    }
    text
}

fn find_unsafe(code: &str) -> Option<usize> {
    // Token match: `unsafe` as a whole word (strip() already removed
    // comments/strings, so any remaining occurrence is the keyword).
    let mut start = 0;
    while let Some(pos) = code[start..].find("unsafe") {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[abs + 6..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + 6;
    }
    None
}

fn has_lock_unwrap(lines: &[Line], i: usize) -> bool {
    let squash = |s: &str| s.split_whitespace().collect::<String>();
    let code = squash(&lines[i].code);
    const ACQ: &[&str] = &[".lock()", ".read()", ".write()", ".try_lock()"];
    if ACQ.iter().any(|a| code.contains(&format!("{a}.unwrap()"))) {
        return true;
    }
    // Formatted chains: `.unwrap()` leading a line whose previous
    // non-empty line ends with an acquisition call.
    if code.starts_with(".unwrap()") {
        if let Some(prev) = lines[..i]
            .iter()
            .rev()
            .map(|l| squash(&l.code))
            .find(|c| !c.is_empty())
        {
            return ACQ.iter().any(|a| prev.ends_with(a));
        }
    }
    false
}

fn has_raw_lock(code: &str) -> bool {
    if code.contains("parking_lot") {
        return true;
    }
    code.contains("std::sync") && (code.contains("Mutex") || code.contains("RwLock"))
}

fn has_unbounded(code: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find("unbounded") {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let rest = &code[abs + "unbounded".len()..];
        // `unbounded(…)` or `unbounded::<T>(…)` — a call, not a mention.
        let call = rest.trim_start().starts_with('(') || rest.trim_start().starts_with("::<");
        if before_ok && call {
            return true;
        }
        start = abs + "unbounded".len();
    }
    false
}

fn has_sleep(code: &str) -> bool {
    code.contains("thread::sleep")
}

fn has_raw_spawn(code: &str) -> bool {
    code.contains("thread::spawn") || code.contains("thread::Builder")
}

// ----------------------------------------------------------------- walking

/// Recursively collects `.rs` files under `dir`, skipping [`SKIP_DIRS`].
pub(crate) fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file in the workspace rooted at `root` — the
/// per-file rules plus the whole-tree lock-order analysis (TL007/TL008).
/// Diagnostics are stable-sorted by (path, line, rule).
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&file)?;
        diags.extend(check_source(&rel, &source));
    }
    diags.extend(graph::analyze(root)?.diagnostics);
    diags.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = r##"
fn main() {
    let s = "thread::sleep inside a string";
    // thread::sleep inside a comment
    /* parking_lot in a block comment */
    let r = r#"unbounded( in a raw string"#;
}
"##;
        assert!(check_source("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn sleep_flagged_and_waivable() {
        let bad = "fn f() { std::thread::sleep(d); }\n";
        let d = check_source("crates/core/src/f.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "TL005");
        assert_eq!(d[0].line, 1);
        let ok = "fn f() { std::thread::sleep(d); } // LINT: allow-sleep(pacing loop)\n";
        assert!(check_source("crates/core/src/f.rs", ok).is_empty());
        let ok2 = "// LINT: allow-sleep(pacing loop)\nfn f() { std::thread::sleep(d); }\n";
        assert!(check_source("crates/core/src/f.rs", ok2).is_empty());
    }

    #[test]
    fn lock_unwrap_across_lines() {
        let bad = "fn f() {\n    let g = m\n        .lock()\n        .unwrap();\n}\n";
        let d = check_source("crates/kv/src/f.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "TL001");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn raw_lock_only_flagged_in_hot_crates() {
        let src = "use parking_lot::Mutex;\n";
        assert_eq!(check_source("crates/storm/src/x.rs", src).len(), 1);
        assert!(check_source("crates/metrics/src/x.rs", src).is_empty());
    }

    #[test]
    fn waiver_requires_a_nonempty_reason() {
        let empty = "// LINT: allow-sleep()\nstd::thread::sleep(d);\n";
        assert_eq!(
            check_source("crates/storm/src/x.rs", empty)[0].rule,
            "TL005"
        );
        let blank = "// LINT: allow-sleep(  )\nstd::thread::sleep(d);\n";
        assert_eq!(
            check_source("crates/storm/src/x.rs", blank)[0].rule,
            "TL005"
        );
        let ok = "// LINT: allow-sleep(idle backoff)\nstd::thread::sleep(d);\n";
        assert!(check_source("crates/storm/src/x.rs", ok).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    use parking_lot::Mutex;
    fn t() { std::thread::sleep(d); }
}
";
        assert!(check_source("crates/storm/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment_even_in_tests() {
        let bad = "fn f() { unsafe { x() } }\n";
        let d = check_source("crates/net/tests/t.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "TL003");
        let ok = "// SAFETY: x has no preconditions\nfn f() { unsafe { x() } }\n";
        assert!(check_source("crates/net/tests/t.rs", ok).is_empty());
    }

    #[test]
    fn unbounded_call_flagged_mention_not() {
        let bad = "let (tx, rx) = unbounded();\n";
        assert_eq!(check_source("crates/mq/src/x.rs", bad)[0].rule, "TL004");
        let mention = "/// unbounded channels are discouraged\nfn f(unbounded_ok: u8) {}\n";
        assert!(check_source("crates/mq/src/x.rs", mention).is_empty());
    }

    #[test]
    fn raw_spawn_flagged_in_runtime_crates_only() {
        let spawn = "let h = std::thread::spawn(move || work());\n";
        let builder = "let h = std::thread::Builder::new().name(n).spawn(f);\n";
        assert_eq!(check_source("crates/core/src/x.rs", spawn)[0].rule, "TL006");
        assert_eq!(
            check_source("crates/switch/src/x.rs", builder)[0].rule,
            "TL006"
        );
        // Outside the supervised crates, raw spawns are fine.
        assert!(check_source("crates/bench/src/x.rs", spawn).is_empty());
        // Test trees are exempt.
        assert!(check_source("crates/core/tests/t.rs", spawn).is_empty());
        // The supervised wrapper itself is not a raw spawn.
        let ok = "let h = typhoon_diag::spawn_supervised(name, cb, body);\n";
        assert!(check_source("crates/core/src/x.rs", ok).is_empty());
        // Waivers work like every other rule's.
        let waived =
            "// LINT: allow-raw-spawn(scoped thread joined two lines down)\nstd::thread::spawn(f);\n";
        assert!(check_source("crates/core/src/x.rs", waived).is_empty());
    }

    #[test]
    fn json_escapes() {
        let d = Diagnostic {
            rule: "TL001",
            path: "a\"b.rs".into(),
            line: 3,
            message: "x\ny".into(),
        };
        assert_eq!(
            d.to_json(),
            r#"{"rule":"TL001","path":"a\"b.rs","line":3,"message":"x\ny","rationale":"Poisoned locks propagate panics across threads; recover the guard instead."}"#
        );
    }
}
