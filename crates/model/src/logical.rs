//! Logical topologies: the DAG a stream application declares.
//!
//! A logical topology (Fig. 2(a) of the paper) is built from the application
//! with framework-provided APIs and fixes, per node: the computation (by
//! registered component name), the routing policy toward it, and the degree
//! of parallelism. Unlike Storm, nothing here is frozen at compile time —
//! the dynamic topology manager mutates this structure at runtime and
//! re-schedules it.

use crate::routing::Grouping;
use crate::{ModelError, Result};
use std::collections::{BTreeMap, HashMap, HashSet};
use typhoon_tuple::{Fields, StreamId};

/// Whether a node produces or transforms tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A source of tuples.
    Spout,
    /// A processing node.
    Bolt,
}

/// One logical node.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Unique node name within the topology (e.g. `"split"`).
    pub name: String,
    /// Spout or bolt.
    pub kind: NodeKind,
    /// Name of the registered component implementing the computation.
    /// Re-pointing this at another registered component is the runtime
    /// computation-logic swap of §6.2.
    pub component: String,
    /// Number of parallel tasks for this node.
    pub parallelism: usize,
    /// Output schema of tuples this node emits.
    pub output_fields: Fields,
    /// Whether the node keeps in-memory state (drives the §3.5 stable-update
    /// procedure choice, Table 4).
    pub stateful: bool,
}

/// One logical edge: tuples flowing `from → to` on `stream`, distributed by
/// `grouping`.
#[derive(Debug, Clone)]
pub struct EdgeSpec {
    /// Upstream node name.
    pub from: String,
    /// Downstream node name.
    pub to: String,
    /// Which of the upstream node's output streams this edge subscribes to.
    pub stream: StreamId,
    /// Distribution policy.
    pub grouping: Grouping,
}

/// A validated logical topology.
#[derive(Debug, Clone)]
pub struct LogicalTopology {
    /// Topology name (unique per submission).
    pub name: String,
    /// Nodes in insertion order.
    pub nodes: Vec<NodeSpec>,
    /// Edges in insertion order.
    pub edges: Vec<EdgeSpec>,
}

impl LogicalTopology {
    /// Starts a builder.
    pub fn builder(name: &str) -> TopologyBuilder {
        TopologyBuilder {
            name: name.to_owned(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Looks up a node by name.
    pub fn node(&self, name: &str) -> Option<&NodeSpec> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Mutable lookup (used by the dynamic topology manager).
    pub fn node_mut(&mut self, name: &str) -> Option<&mut NodeSpec> {
        self.nodes.iter_mut().find(|n| n.name == name)
    }

    /// Edges leaving `name`.
    pub fn edges_from<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a EdgeSpec> + 'a {
        self.edges.iter().filter(move |e| e.from == name)
    }

    /// Edges entering `name`.
    pub fn edges_to<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a EdgeSpec> + 'a {
        self.edges.iter().filter(move |e| e.to == name)
    }

    /// Upstream node names of `name` (deduplicated, stable order).
    pub fn predecessors(&self, name: &str) -> Vec<&str> {
        let mut seen = HashSet::new();
        self.edges
            .iter()
            .filter(|e| e.to == name)
            .map(|e| e.from.as_str())
            .filter(|n| seen.insert(*n))
            .collect()
    }

    /// Total number of tasks after parallelism expansion.
    pub fn total_tasks(&self) -> usize {
        self.nodes.iter().map(|n| n.parallelism).sum()
    }

    /// Node names in a topological order (validation guarantees acyclicity).
    pub fn topo_order(&self) -> Vec<&str> {
        let mut indegree: BTreeMap<&str, usize> =
            self.nodes.iter().map(|n| (n.name.as_str(), 0)).collect();
        for e in &self.edges {
            *indegree.get_mut(e.to.as_str()).expect("validated edge") += 1;
        }
        let mut ready: Vec<&str> = self
            .nodes
            .iter()
            .map(|n| n.name.as_str())
            .filter(|n| indegree[n] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = ready.pop() {
            order.push(n);
            for e in self.edges.iter().filter(|e| e.from == n) {
                let d = indegree.get_mut(e.to.as_str()).unwrap();
                *d -= 1;
                if *d == 0 {
                    ready.push(e.to.as_str());
                }
            }
        }
        order
    }

    /// Re-validates the topology after an in-place mutation.
    pub fn validate(&self) -> Result<()> {
        validate(&self.nodes, &self.edges)
    }
}

fn validate(nodes: &[NodeSpec], edges: &[EdgeSpec]) -> Result<()> {
    let mut by_name: HashMap<&str, &NodeSpec> = HashMap::new();
    for n in nodes {
        if by_name.insert(n.name.as_str(), n).is_some() {
            return Err(ModelError::DuplicateNode(n.name.clone()));
        }
        if n.parallelism == 0 {
            return Err(ModelError::ZeroParallelism(n.name.clone()));
        }
    }
    if !nodes.iter().any(|n| n.kind == NodeKind::Spout) {
        return Err(ModelError::NoSpout);
    }
    for e in edges {
        let from = by_name
            .get(e.from.as_str())
            .ok_or_else(|| ModelError::UnknownNode(e.from.clone()))?;
        let to = by_name
            .get(e.to.as_str())
            .ok_or_else(|| ModelError::UnknownNode(e.to.clone()))?;
        if to.kind == NodeKind::Spout {
            return Err(ModelError::SpoutWithInput(to.name.clone()));
        }
        if let Grouping::Fields(keys) = &e.grouping {
            for k in keys {
                if from.output_fields.index_of(k).is_none() {
                    return Err(ModelError::UnknownField {
                        node: from.name.clone(),
                        field: k.clone(),
                    });
                }
            }
        }
    }
    // Kahn's algorithm: any node never drained is on a cycle.
    let mut indegree: HashMap<&str, usize> = nodes.iter().map(|n| (n.name.as_str(), 0)).collect();
    for e in edges {
        *indegree.get_mut(e.to.as_str()).unwrap() += 1;
    }
    let mut ready: Vec<&str> = indegree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    let mut drained = 0usize;
    while let Some(n) = ready.pop() {
        drained += 1;
        for e in edges.iter().filter(|e| e.from == n) {
            let d = indegree.get_mut(e.to.as_str()).unwrap();
            *d -= 1;
            if *d == 0 {
                ready.push(e.to.as_str());
            }
        }
    }
    if drained != nodes.len() {
        let stuck = indegree
            .iter()
            .find(|(_, &d)| d > 0)
            .map(|(&n, _)| n.to_owned())
            .unwrap_or_default();
        return Err(ModelError::Cycle(stuck));
    }
    Ok(())
}

/// Fluent builder for [`LogicalTopology`]; `build` validates.
#[derive(Debug)]
pub struct TopologyBuilder {
    name: String,
    nodes: Vec<NodeSpec>,
    edges: Vec<EdgeSpec>,
}

impl TopologyBuilder {
    /// Adds a spout node.
    pub fn spout(
        mut self,
        name: &str,
        component: &str,
        parallelism: usize,
        output_fields: Fields,
    ) -> Self {
        self.nodes.push(NodeSpec {
            name: name.to_owned(),
            kind: NodeKind::Spout,
            component: component.to_owned(),
            parallelism,
            output_fields,
            stateful: false,
        });
        self
    }

    /// Adds a stateless bolt node.
    pub fn bolt(
        self,
        name: &str,
        component: &str,
        parallelism: usize,
        output_fields: Fields,
    ) -> Self {
        self.bolt_with_state(name, component, parallelism, output_fields, false)
    }

    /// Adds a bolt node, declaring statefulness explicitly (Table 4).
    pub fn bolt_with_state(
        mut self,
        name: &str,
        component: &str,
        parallelism: usize,
        output_fields: Fields,
        stateful: bool,
    ) -> Self {
        self.nodes.push(NodeSpec {
            name: name.to_owned(),
            kind: NodeKind::Bolt,
            component: component.to_owned(),
            parallelism,
            output_fields,
            stateful,
        });
        self
    }

    /// Connects `from → to` on the default stream.
    pub fn edge(self, from: &str, to: &str, grouping: Grouping) -> Self {
        self.edge_on(from, to, StreamId::DEFAULT, grouping)
    }

    /// Connects `from → to` subscribing to a specific stream.
    pub fn edge_on(mut self, from: &str, to: &str, stream: StreamId, grouping: Grouping) -> Self {
        self.edges.push(EdgeSpec {
            from: from.to_owned(),
            to: to.to_owned(),
            stream,
            grouping,
        });
        self
    }

    /// Validates and produces the topology.
    pub fn build(self) -> Result<LogicalTopology> {
        validate(&self.nodes, &self.edges)?;
        Ok(LogicalTopology {
            name: self.name,
            nodes: self.nodes,
            edges: self.edges,
        })
    }
}

/// The word-count example topology from Fig. 2 of the paper; used across
/// the test suites and experiments.
pub fn word_count_example() -> LogicalTopology {
    LogicalTopology::builder("word-count")
        .spout("input", "sentence-source", 1, Fields::new(["sentence"]))
        .bolt("split", "splitter", 2, Fields::new(["word"]))
        .bolt_with_state("count", "counter", 2, Fields::new(["word", "count"]), true)
        .bolt(
            "aggregator",
            "aggregate-sink",
            1,
            Fields::new(["word", "count"]),
        )
        .edge("input", "split", Grouping::Shuffle)
        .edge("split", "count", Grouping::Fields(vec!["word".into()]))
        .edge("count", "aggregator", Grouping::Global)
        .build()
        .expect("example topology is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count_example_is_valid_and_ordered() {
        let t = word_count_example();
        assert_eq!(t.total_tasks(), 6);
        let order = t.topo_order();
        let pos = |n: &str| order.iter().position(|&x| x == n).unwrap();
        assert!(pos("input") < pos("split"));
        assert!(pos("split") < pos("count"));
        assert!(pos("count") < pos("aggregator"));
    }

    #[test]
    fn duplicate_node_rejected() {
        let r = LogicalTopology::builder("t")
            .spout("a", "c", 1, Fields::new(["x"]))
            .bolt("a", "c", 1, Fields::new(["x"]))
            .build();
        assert_eq!(r.unwrap_err(), ModelError::DuplicateNode("a".into()));
    }

    #[test]
    fn unknown_edge_endpoint_rejected() {
        let r = LogicalTopology::builder("t")
            .spout("a", "c", 1, Fields::new(["x"]))
            .edge("a", "ghost", Grouping::Shuffle)
            .build();
        assert_eq!(r.unwrap_err(), ModelError::UnknownNode("ghost".into()));
    }

    #[test]
    fn fields_grouping_must_name_upstream_fields() {
        let r = LogicalTopology::builder("t")
            .spout("a", "c", 1, Fields::new(["x"]))
            .bolt("b", "c", 1, Fields::new(["y"]))
            .edge("a", "b", Grouping::Fields(vec!["nope".into()]))
            .build();
        assert!(matches!(r.unwrap_err(), ModelError::UnknownField { .. }));
    }

    #[test]
    fn cycle_rejected() {
        let r = LogicalTopology::builder("t")
            .spout("s", "c", 1, Fields::new(["x"]))
            .bolt("a", "c", 1, Fields::new(["x"]))
            .bolt("b", "c", 1, Fields::new(["x"]))
            .edge("s", "a", Grouping::Shuffle)
            .edge("a", "b", Grouping::Shuffle)
            .edge("b", "a", Grouping::Shuffle)
            .build();
        assert!(matches!(r.unwrap_err(), ModelError::Cycle(_)));
    }

    #[test]
    fn spout_with_input_rejected() {
        let r = LogicalTopology::builder("t")
            .spout("s1", "c", 1, Fields::new(["x"]))
            .spout("s2", "c", 1, Fields::new(["x"]))
            .edge("s1", "s2", Grouping::Shuffle)
            .build();
        assert_eq!(r.unwrap_err(), ModelError::SpoutWithInput("s2".into()));
    }

    #[test]
    fn zero_parallelism_rejected() {
        let r = LogicalTopology::builder("t")
            .spout("s", "c", 0, Fields::new(["x"]))
            .build();
        assert_eq!(r.unwrap_err(), ModelError::ZeroParallelism("s".into()));
    }

    #[test]
    fn topology_without_spout_rejected() {
        let r = LogicalTopology::builder("t")
            .bolt("b", "c", 1, Fields::new(["x"]))
            .build();
        assert_eq!(r.unwrap_err(), ModelError::NoSpout);
    }

    #[test]
    fn predecessors_deduplicate_multi_stream_edges() {
        let t = LogicalTopology::builder("t")
            .spout("s", "c", 1, Fields::new(["x"]))
            .bolt("b", "c", 1, Fields::new(["x"]))
            .edge("s", "b", Grouping::Shuffle)
            .edge_on("s", "b", StreamId::FIRST_USER, Grouping::All)
            .build()
            .unwrap();
        assert_eq!(t.predecessors("b"), vec!["s"]);
    }

    #[test]
    fn mutation_then_revalidation_flow() {
        // The dynamic topology manager's modus operandi: mutate, revalidate.
        let mut t = word_count_example();
        t.node_mut("split").unwrap().parallelism = 3;
        assert!(t.validate().is_ok());
        assert_eq!(t.total_tasks(), 7);
        t.node_mut("split").unwrap().parallelism = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn diamond_topology_is_acyclic() {
        let t = LogicalTopology::builder("diamond")
            .spout("s", "c", 1, Fields::new(["x"]))
            .bolt("l", "c", 1, Fields::new(["x"]))
            .bolt("r", "c", 1, Fields::new(["x"]))
            .bolt("join", "c", 1, Fields::new(["x"]))
            .edge("s", "l", Grouping::Shuffle)
            .edge("s", "r", Grouping::Shuffle)
            .edge("l", "join", Grouping::Shuffle)
            .edge("r", "join", Grouping::Shuffle)
            .build();
        assert!(t.is_ok());
    }
}
