//! Reconfiguration requests — the three update classes of §3.2.
//!
//! A user submits a [`ReconfigRequest`] against a running topology; the
//! dynamic topology manager applies the ops to the logical topology,
//! re-validates, and triggers the reschedule/notify/flow-update workflow.

use crate::logical::LogicalTopology;
use crate::physical::HostId;
use crate::routing::Grouping;
use crate::{ModelError, Result};
use typhoon_tuple::tuple::TaskId;

/// One atomic topology mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum ReconfigOp {
    /// "Per-node parallelism: change the number of concurrent workers for a
    /// particular node."
    SetParallelism {
        /// Logical node to resize.
        node: String,
        /// New task count (≥ 1).
        parallelism: usize,
    },
    /// "Computation logic: launch new workers with new computation logic in
    /// an existing topology" — repoint a node at another registered
    /// component.
    SwapLogic {
        /// Logical node whose workers get replaced.
        node: String,
        /// Newly registered component name.
        component: String,
    },
    /// "Routing policy: change routing type, or change policy-specific
    /// parameters" — replace the grouping on an edge.
    SetGrouping {
        /// Edge source node.
        from: String,
        /// Edge destination node.
        to: String,
        /// New distribution policy.
        grouping: Grouping,
    },
    /// §8 extension: relocate one worker to another host via
    /// pause-and-resume control tuples ("Typhoon can simply
    /// pause-and-resume the worker via control tuples (e.g., SIGNAL and
    /// (DE)ACTIVATE tuples), while its state remains in an external
    /// storage"). The logical topology is unchanged; only placement moves,
    /// so [`ReconfigRequest::apply`] treats it as a no-op and the manager
    /// handles the physical side.
    Relocate {
        /// The worker to move.
        task: TaskId,
        /// Destination host.
        target: HostId,
    },
}

/// A batch of mutations against one running topology.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigRequest {
    /// Name of the running topology.
    pub topology: String,
    /// Ops applied in order; all-or-nothing (validation failure rolls back).
    pub ops: Vec<ReconfigOp>,
}

impl ReconfigRequest {
    /// A single-op request.
    pub fn single(topology: &str, op: ReconfigOp) -> Self {
        ReconfigRequest {
            topology: topology.to_owned(),
            ops: vec![op],
        }
    }

    /// Applies every op to `logical`, validating the result. On any error
    /// the topology is left unchanged.
    pub fn apply(&self, logical: &mut LogicalTopology) -> Result<()> {
        let backup = logical.clone();
        let result = self.apply_inner(logical);
        if result.is_err() {
            *logical = backup;
        }
        result
    }

    fn apply_inner(&self, logical: &mut LogicalTopology) -> Result<()> {
        for op in &self.ops {
            match op {
                ReconfigOp::SetParallelism { node, parallelism } => {
                    let n = logical
                        .node_mut(node)
                        .ok_or_else(|| ModelError::UnknownNode(node.clone()))?;
                    n.parallelism = *parallelism;
                }
                ReconfigOp::SwapLogic { node, component } => {
                    let n = logical
                        .node_mut(node)
                        .ok_or_else(|| ModelError::UnknownNode(node.clone()))?;
                    n.component = component.clone();
                }
                ReconfigOp::SetGrouping { from, to, grouping } => {
                    let e = logical
                        .edges
                        .iter_mut()
                        .find(|e| &e.from == from && &e.to == to)
                        .ok_or_else(|| ModelError::UnknownNode(format!("{from}->{to}")))?;
                    e.grouping = grouping.clone();
                }
                ReconfigOp::Relocate { .. } => {
                    // Placement-only: nothing changes logically.
                }
            }
        }
        logical.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::word_count_example;

    #[test]
    fn set_parallelism_applies() {
        let mut t = word_count_example();
        ReconfigRequest::single(
            "word-count",
            ReconfigOp::SetParallelism {
                node: "split".into(),
                parallelism: 3,
            },
        )
        .apply(&mut t)
        .unwrap();
        assert_eq!(t.node("split").unwrap().parallelism, 3);
    }

    #[test]
    fn swap_logic_repoints_component() {
        let mut t = word_count_example();
        ReconfigRequest::single(
            "word-count",
            ReconfigOp::SwapLogic {
                node: "split".into(),
                component: "splitter-v2".into(),
            },
        )
        .apply(&mut t)
        .unwrap();
        assert_eq!(t.node("split").unwrap().component, "splitter-v2");
    }

    #[test]
    fn set_grouping_replaces_edge_policy() {
        let mut t = word_count_example();
        ReconfigRequest::single(
            "word-count",
            ReconfigOp::SetGrouping {
                from: "split".into(),
                to: "count".into(),
                grouping: Grouping::Shuffle,
            },
        )
        .apply(&mut t)
        .unwrap();
        let edge = t
            .edges
            .iter()
            .find(|e| e.from == "split" && e.to == "count")
            .unwrap();
        assert_eq!(edge.grouping, Grouping::Shuffle);
    }

    #[test]
    fn invalid_op_rolls_back_everything() {
        let mut t = word_count_example();
        let before = t.node("split").unwrap().parallelism;
        let req = ReconfigRequest {
            topology: "word-count".into(),
            ops: vec![
                ReconfigOp::SetParallelism {
                    node: "split".into(),
                    parallelism: 5,
                },
                ReconfigOp::SetParallelism {
                    node: "split".into(),
                    parallelism: 0, // invalid → whole batch rolls back
                },
            ],
        };
        assert!(req.apply(&mut t).is_err());
        assert_eq!(t.node("split").unwrap().parallelism, before);
    }

    #[test]
    fn unknown_node_is_an_error() {
        let mut t = word_count_example();
        let req = ReconfigRequest::single(
            "word-count",
            ReconfigOp::SetParallelism {
                node: "ghost".into(),
                parallelism: 2,
            },
        );
        assert_eq!(
            req.apply(&mut t).unwrap_err(),
            ModelError::UnknownNode("ghost".into())
        );
    }

    #[test]
    fn grouping_swap_to_invalid_fields_rolls_back() {
        let mut t = word_count_example();
        let req = ReconfigRequest::single(
            "word-count",
            ReconfigOp::SetGrouping {
                from: "split".into(),
                to: "count".into(),
                grouping: Grouping::Fields(vec!["no-such-field".into()]),
            },
        );
        assert!(req.apply(&mut t).is_err());
        let edge = t
            .edges
            .iter()
            .find(|e| e.from == "split" && e.to == "count")
            .unwrap();
        assert_eq!(edge.grouping, Grouping::Fields(vec!["word".into()]));
    }
}
