//! Per-worker routing state — the paper's Listing 1, made reconfigurable.
//!
//! Every worker holds, per outgoing edge, a [`RoutingState`]: the list of
//! next-hop tasks (`nextHops`), its length (`numNextHops`), the routing
//! policy type and the policy-specific state (round-robin counter, key field
//! indices). In Typhoon this state is *owned by the control plane*: a
//! `ROUTING` control tuple replaces it atomically at runtime, which is the
//! flexibility mechanism of §3.3.2.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use typhoon_tuple::tuple::TaskId;
use typhoon_tuple::{Tuple, Value};

/// How tuples on one edge are distributed to the downstream node's tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grouping {
    /// Round-robin across next hops (load balancing, stateless nodes).
    Shuffle,
    /// Hash of the named fields modulo the hop count (stateful nodes:
    /// identical keys always reach the same task).
    Fields(Vec<String>),
    /// Everything to one task (sink aggregation).
    Global,
    /// A copy to every next hop (one-to-many; the pattern Typhoon offloads
    /// to network-layer broadcast).
    All,
    /// Destination chosen by the network, not the worker: the worker stamps
    /// a random next hop and the SDN switch rewrites it via a select group
    /// (the SDN load-balancer application of §4).
    SdnOffloaded,
}

impl Grouping {
    /// Short display name used in logs and the live debugger.
    pub fn name(&self) -> &'static str {
        match self {
            Grouping::Shuffle => "shuffle",
            Grouping::Fields(_) => "fields",
            Grouping::Global => "global",
            Grouping::All => "all",
            Grouping::SdnOffloaded => "sdn",
        }
    }
}

/// The routing decision for one tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RouteDecision {
    /// Send to exactly one task.
    One(TaskId),
    /// Send a copy to every next hop (serialization-free broadcast on
    /// Typhoon; per-destination serialization on the baseline).
    Broadcast,
    /// No next hops are configured; the tuple is dropped and counted.
    Drop,
}

/// Runtime routing state for one (worker, downstream node) edge.
///
/// Field names intentionally mirror the paper's Listing 1.
#[derive(Debug, Clone)]
pub struct RoutingState {
    policy: Grouping,
    /// `nextHops` — the downstream task IDs, in stable (sorted) order so
    /// that every upstream worker resolves `hash % n` identically.
    next_hops: Vec<TaskId>,
    /// Round-robin `counter` (policy-specific state).
    counter: usize,
    /// Resolved indices of the key fields in the upstream output schema
    /// (policy-specific state for [`Grouping::Fields`]).
    key_indices: Vec<usize>,
}

impl RoutingState {
    /// Builds routing state. For [`Grouping::Fields`], `key_indices` must be
    /// pre-resolved against the emitting node's output schema (the logical
    /// topology validation guarantees they exist).
    pub fn new(policy: Grouping, mut next_hops: Vec<TaskId>, key_indices: Vec<usize>) -> Self {
        next_hops.sort_unstable();
        RoutingState {
            policy,
            next_hops,
            counter: 0,
            key_indices,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> &Grouping {
        &self.policy
    }

    /// `numNextHops` in the paper's listing.
    pub fn num_next_hops(&self) -> usize {
        self.next_hops.len()
    }

    /// The current next-hop set.
    pub fn next_hops(&self) -> &[TaskId] {
        &self.next_hops
    }

    /// Routes one tuple. Mutates policy-specific state (the round-robin
    /// counter), exactly like the paper's Listing 1.
    pub fn route(&mut self, tuple: &Tuple) -> RouteDecision {
        if self.next_hops.is_empty() {
            return RouteDecision::Drop;
        }
        match &self.policy {
            Grouping::Shuffle => {
                let index = self.counter % self.next_hops.len();
                self.counter = self.counter.wrapping_add(1);
                RouteDecision::One(self.next_hops[index])
            }
            Grouping::Fields(_) => {
                let mut hasher = DefaultHasher::new();
                for &i in &self.key_indices {
                    tuple.values.get(i).unwrap_or(&Value::Nil).hash(&mut hasher);
                }
                let index = (hasher.finish() % self.next_hops.len() as u64) as usize;
                RouteDecision::One(self.next_hops[index])
            }
            Grouping::Global => RouteDecision::One(self.next_hops[0]),
            Grouping::All => RouteDecision::Broadcast,
            Grouping::SdnOffloaded => {
                // The worker picks an arbitrary member; the switch's select
                // group rewrites the destination (§4, Load balancer).
                let index = self.counter % self.next_hops.len();
                self.counter = self.counter.wrapping_add(1);
                RouteDecision::One(self.next_hops[index])
            }
        }
    }

    /// Replaces `nextHops`/`numNextHops` — the payload of a `ROUTING`
    /// control tuple when parallelism changes (§3.3.2).
    pub fn set_next_hops(&mut self, mut hops: Vec<TaskId>) {
        hops.sort_unstable();
        self.next_hops = hops;
        // Reset the round-robin cursor so distribution restarts evenly.
        self.counter = 0;
    }

    /// Replaces the policy and its policy-specific state — the payload of a
    /// `ROUTING` control tuple when the routing *type* changes.
    pub fn set_policy(&mut self, policy: Grouping, key_indices: Vec<usize>) {
        self.policy = policy;
        self.key_indices = key_indices;
        self.counter = 0;
    }

    /// The resolved key indices (empty unless fields-grouped).
    pub fn key_indices(&self) -> &[usize] {
        &self.key_indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple_with(values: Vec<Value>) -> Tuple {
        Tuple::new(TaskId(0), values)
    }

    fn hops(ids: &[u32]) -> Vec<TaskId> {
        ids.iter().map(|&i| TaskId(i)).collect()
    }

    #[test]
    fn shuffle_cycles_evenly() {
        let mut rs = RoutingState::new(Grouping::Shuffle, hops(&[1, 2, 3]), vec![]);
        let t = tuple_with(vec![]);
        let picks: Vec<_> = (0..6).map(|_| rs.route(&t)).collect();
        assert_eq!(
            picks,
            vec![
                RouteDecision::One(TaskId(1)),
                RouteDecision::One(TaskId(2)),
                RouteDecision::One(TaskId(3)),
                RouteDecision::One(TaskId(1)),
                RouteDecision::One(TaskId(2)),
                RouteDecision::One(TaskId(3)),
            ]
        );
    }

    #[test]
    fn fields_grouping_is_sticky_per_key() {
        let mut rs = RoutingState::new(
            Grouping::Fields(vec!["word".into()]),
            hops(&[10, 11, 12, 13]),
            vec![0],
        );
        let a1 = rs.route(&tuple_with(vec![Value::Str("apple".into()), Value::Int(1)]));
        let a2 = rs.route(&tuple_with(vec![Value::Str("apple".into()), Value::Int(2)]));
        assert_eq!(a1, a2, "same key must route to the same task");
    }

    #[test]
    fn fields_grouping_ignores_non_key_fields() {
        let mut rs = RoutingState::new(
            Grouping::Fields(vec!["k".into()]),
            hops(&[1, 2, 3]),
            vec![0],
        );
        let x = rs.route(&tuple_with(vec![
            Value::Int(7),
            Value::Str("noise-a".into()),
        ]));
        let y = rs.route(&tuple_with(vec![
            Value::Int(7),
            Value::Str("noise-b".into()),
        ]));
        assert_eq!(x, y);
    }

    #[test]
    fn global_always_picks_lowest_task() {
        let mut rs = RoutingState::new(Grouping::Global, hops(&[9, 4, 7]), vec![]);
        let t = tuple_with(vec![]);
        for _ in 0..3 {
            assert_eq!(rs.route(&t), RouteDecision::One(TaskId(4)));
        }
    }

    #[test]
    fn all_grouping_broadcasts() {
        let mut rs = RoutingState::new(Grouping::All, hops(&[1, 2]), vec![]);
        assert_eq!(rs.route(&tuple_with(vec![])), RouteDecision::Broadcast);
    }

    #[test]
    fn empty_next_hops_drops() {
        let mut rs = RoutingState::new(Grouping::Shuffle, vec![], vec![]);
        assert_eq!(rs.route(&tuple_with(vec![])), RouteDecision::Drop);
    }

    #[test]
    fn routing_control_update_changes_next_hops() {
        // The scale-up scenario: a ROUTING control tuple adds a next hop.
        let mut rs = RoutingState::new(Grouping::Shuffle, hops(&[1, 2]), vec![]);
        rs.set_next_hops(hops(&[1, 2, 3]));
        assert_eq!(rs.num_next_hops(), 3);
        let t = tuple_with(vec![]);
        let picks: std::collections::HashSet<_> = (0..3).map(|_| rs.route(&t)).collect();
        assert_eq!(picks.len(), 3, "all three hops are used after the update");
    }

    #[test]
    fn routing_control_update_changes_policy_type() {
        // "change routing type (e.g., from key-based to round robin)" — §3.2.
        let mut rs = RoutingState::new(Grouping::Fields(vec!["k".into()]), hops(&[1, 2]), vec![0]);
        rs.set_policy(Grouping::Shuffle, vec![]);
        assert_eq!(rs.policy().name(), "shuffle");
        let t = tuple_with(vec![Value::Int(1)]);
        let a = rs.route(&t);
        let b = rs.route(&t);
        assert_ne!(a, b, "round robin alternates even for identical keys");
    }

    #[test]
    fn key_change_without_hop_change() {
        // "change a set of fields for key-based routing without changing the
        // number of next-hop workers" — §3.3.2.
        let mut rs = RoutingState::new(
            Grouping::Fields(vec!["a".into()]),
            hops(&[1, 2, 3]),
            vec![0],
        );
        let t1 = tuple_with(vec![Value::Int(1), Value::Int(100)]);
        let t2 = tuple_with(vec![Value::Int(1), Value::Int(200)]);
        assert_eq!(rs.route(&t1), rs.route(&t2), "keyed on field 0");
        rs.set_policy(Grouping::Fields(vec!["b".into()]), vec![1]);
        let r1 = rs.route(&t1);
        let _ = r1;
        // After re-keying on field 1, identical field-1 values still co-route.
        let t3 = tuple_with(vec![Value::Int(999), Value::Int(100)]);
        let t4 = tuple_with(vec![Value::Int(-5), Value::Int(100)]);
        assert_eq!(rs.route(&t3), rs.route(&t4), "keyed on field 1 now");
    }

    #[test]
    fn next_hops_are_kept_sorted_for_cross_worker_consistency() {
        let rs = RoutingState::new(Grouping::Fields(vec![]), hops(&[5, 1, 3]), vec![]);
        assert_eq!(rs.next_hops(), &[TaskId(1), TaskId(3), TaskId(5)]);
    }

    #[test]
    fn missing_key_field_hashes_as_nil_instead_of_panicking() {
        let mut rs = RoutingState::new(
            Grouping::Fields(vec!["k".into()]),
            hops(&[1, 2]),
            vec![5], // out of range for the tuple below
        );
        let d = rs.route(&tuple_with(vec![Value::Int(1)]));
        assert!(matches!(d, RouteDecision::One(_)));
    }
}
