//! Physical topologies: logical nodes expanded into placed tasks.
//!
//! The scheduler converts a logical topology into a physical one
//! (Fig. 2(b)): each node becomes `parallelism` tasks, and every task is
//! assigned a compute host, a unique task ID, and — on Typhoon — a dedicated
//! port on that host's software SDN switch (§3.2 step (i)).

use crate::logical::LogicalTopology;
use crate::AppId;
use std::collections::BTreeMap;
use typhoon_tuple::tuple::TaskId;

/// Identifies a compute host in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// A compute host advertised to the scheduler by its worker agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// Host identity.
    pub id: HostId,
    /// Human-readable name.
    pub name: String,
    /// Worker slots available (cores the agent will hand out).
    pub slots: usize,
}

impl HostInfo {
    /// Convenience constructor.
    pub fn new(id: u32, name: &str, slots: usize) -> Self {
        HostInfo {
            id: HostId(id),
            name: name.to_owned(),
            slots,
        }
    }
}

/// Placement of one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskAssignment {
    /// Unique task ID within the application.
    pub task: TaskId,
    /// The logical node this task instantiates.
    pub node: String,
    /// The component name the worker agent must launch. Carried separately
    /// from the node so a logic swap can deploy replacement tasks for the
    /// same node with different code (§6.2).
    pub component: String,
    /// Host the task runs on.
    pub host: HostId,
    /// The task's dedicated port on the host's SDN switch (Typhoon only;
    /// the Storm baseline ignores it).
    pub switch_port: u32,
}

/// A scheduled physical topology.
#[derive(Debug, Clone, Default)]
pub struct PhysicalTopology {
    /// Application this assignment belongs to.
    pub app: AppId,
    /// Topology name.
    pub name: String,
    /// Monotonically increasing version; bumped by every reschedule so
    /// readers (SDN controller, worker agents) can detect staleness.
    pub version: u64,
    /// High-water mark for task IDs: IDs of removed tasks are never
    /// reused, because stale flow rules and in-flight routing updates may
    /// still reference them (idle timeouts have not elapsed).
    pub task_watermark: u32,
    /// All task placements.
    pub assignments: Vec<TaskAssignment>,
}

impl PhysicalTopology {
    /// Tasks instantiating logical node `node`, in ascending task order.
    pub fn tasks_of(&self, node: &str) -> Vec<TaskId> {
        let mut v: Vec<TaskId> = self
            .assignments
            .iter()
            .filter(|a| a.node == node)
            .map(|a| a.task)
            .collect();
        v.sort_unstable();
        v
    }

    /// The assignment record for `task`.
    pub fn assignment(&self, task: TaskId) -> Option<&TaskAssignment> {
        self.assignments.iter().find(|a| a.task == task)
    }

    /// Host → tasks placed there (sorted map for stable iteration).
    pub fn by_host(&self) -> BTreeMap<HostId, Vec<TaskId>> {
        let mut m: BTreeMap<HostId, Vec<TaskId>> = BTreeMap::new();
        for a in &self.assignments {
            m.entry(a.host).or_default().push(a.task);
        }
        for v in m.values_mut() {
            v.sort_unstable();
        }
        m
    }

    /// Allocates the next task ID, advancing the watermark: never reuses
    /// an ID, even after removals.
    pub fn alloc_task_id(&mut self) -> TaskId {
        let floor = self
            .assignments
            .iter()
            .map(|a| a.task.0 + 1)
            .max()
            .unwrap_or(0);
        self.task_watermark = self.task_watermark.max(floor);
        let id = TaskId(self.task_watermark);
        self.task_watermark += 1;
        id
    }

    /// The next task ID that would be allocated (read-only peek).
    pub fn next_task_id(&self) -> TaskId {
        let floor = self
            .assignments
            .iter()
            .map(|a| a.task.0 + 1)
            .max()
            .unwrap_or(0);
        TaskId(self.task_watermark.max(floor))
    }

    /// Number of tasks whose upstream/downstream peer lives on a different
    /// host, for every edge in `logical`. The locality scheduler minimizes
    /// this count (§5: "assigns topologically neighboring workers to the
    /// same compute node to minimize remote inter-worker communication").
    pub fn remote_edge_pairs(&self, logical: &LogicalTopology) -> usize {
        let host_of: BTreeMap<TaskId, HostId> =
            self.assignments.iter().map(|a| (a.task, a.host)).collect();
        let mut remote = 0;
        for e in &logical.edges {
            for &src in &self.tasks_of(&e.from) {
                for &dst in &self.tasks_of(&e.to) {
                    if host_of.get(&src) != host_of.get(&dst) {
                        remote += 1;
                    }
                }
            }
        }
        remote
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::word_count_example;

    fn sample() -> PhysicalTopology {
        PhysicalTopology {
            app: AppId(1),
            name: "t".into(),
            version: 1,
            task_watermark: 3,
            assignments: vec![
                TaskAssignment {
                    task: TaskId(0),
                    node: "input".into(),
                    component: "sentence-source".into(),
                    host: HostId(0),
                    switch_port: 1,
                },
                TaskAssignment {
                    task: TaskId(2),
                    node: "split".into(),
                    component: "splitter".into(),
                    host: HostId(1),
                    switch_port: 1,
                },
                TaskAssignment {
                    task: TaskId(1),
                    node: "split".into(),
                    component: "splitter".into(),
                    host: HostId(0),
                    switch_port: 2,
                },
            ],
        }
    }

    #[test]
    fn tasks_of_returns_sorted_tasks() {
        assert_eq!(sample().tasks_of("split"), vec![TaskId(1), TaskId(2)]);
        assert!(sample().tasks_of("ghost").is_empty());
    }

    #[test]
    fn by_host_groups_and_sorts() {
        let by = sample().by_host();
        assert_eq!(by[&HostId(0)], vec![TaskId(0), TaskId(1)]);
        assert_eq!(by[&HostId(1)], vec![TaskId(2)]);
    }

    #[test]
    fn next_task_id_skips_existing() {
        assert_eq!(sample().next_task_id(), TaskId(3));
        assert_eq!(PhysicalTopology::default().next_task_id(), TaskId(0));
    }

    #[test]
    fn alloc_task_id_never_reuses_after_removal() {
        // The live_reconfigure regression: removing tasks must not recycle
        // their IDs — stale rules may still reference them.
        let mut phys = sample();
        let a = phys.alloc_task_id();
        assert_eq!(a, TaskId(3));
        phys.assignments.retain(|x| x.task != TaskId(2));
        let b = phys.alloc_task_id();
        assert_eq!(b, TaskId(4), "TaskId(2) must not come back");
        assert_eq!(phys.next_task_id(), TaskId(5));
    }

    #[test]
    fn remote_edge_pairs_counts_cross_host_pairs() {
        let logical = word_count_example();
        let mut phys = sample();
        // input(t0)@h0 -> split t1@h0 (local), t2@h1 (remote)
        assert_eq!(phys.remote_edge_pairs(&logical), 1);
        phys.assignments[1].host = HostId(0);
        assert_eq!(phys.remote_edge_pairs(&logical), 0);
    }
}
