//! # typhoon-model — topologies, components, routing and scheduling
//!
//! The vocabulary shared by the Storm-like baseline (`typhoon-storm`) and the
//! SDN-enhanced Typhoon framework (`typhoon-core`): what a stream application
//! *is*, independent of how its tuples are transported.
//!
//! Mirrors §2 of the paper:
//!
//! * [`component`] — the application computation layer: [`Spout`]s produce
//!   tuples, [`Bolt`]s transform them, a [`ComponentRegistry`] maps names to
//!   factories (the hook that makes runtime *computation-logic swap*
//!   possible, §6.2 "Computation logic reconfiguration").
//! * [`logical`] — the logical topology DAG: nodes with parallelism and
//!   output schemas, edges with routing policies, with validation.
//! * [`routing`] — per-worker routing state exactly as in the paper's
//!   Listing 1: `nextHops`, `numNextHops`, a round-robin counter and
//!   key-field indices, all reconfigurable at runtime.
//! * [`physical`] — the physical topology: logical nodes expanded by
//!   parallelism into tasks, each assigned a host and a dedicated SDN switch
//!   port.
//! * [`scheduler`] — pluggable schedulers: Storm's default round-robin and
//!   Typhoon's locality-aware scheduler that co-locates topological
//!   neighbours (§5 "custom Typhoon topology scheduler").
//! * [`reconfig`] — the reconfiguration request vocabulary of §3.2
//!   (parallelism / computation logic / routing policy).

#![warn(missing_docs)]

pub mod component;
pub mod logical;
pub mod physical;
pub mod reconfig;
pub mod routing;
pub mod scheduler;

pub use component::{
    Bolt, BoltFactory, ComponentRegistry, Emitter, Spout, SpoutFactory, VecEmitter,
};
pub use logical::{EdgeSpec, LogicalTopology, NodeKind, NodeSpec, TopologyBuilder};
pub use physical::{HostId, HostInfo, PhysicalTopology, TaskAssignment};
pub use reconfig::{ReconfigOp, ReconfigRequest};
pub use routing::{Grouping, RouteDecision, RoutingState};
pub use scheduler::{LocalityScheduler, RoundRobinScheduler, Scheduler};

// Re-export the identifiers that flow through tuples.
pub use typhoon_tuple::tuple::TaskId;
/// Re-exported schema type (topology builders take output field schemas).
pub use typhoon_tuple::Fields;

/// Identifies a submitted stream application. Becomes the address prefix of
/// every worker MAC on the SDN fabric (Fig. 5 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u16);

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// Errors raised while building, validating or scheduling topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Two nodes share a name.
    DuplicateNode(String),
    /// An edge references a node that does not exist.
    UnknownNode(String),
    /// A fields-grouping names a field absent from the upstream schema.
    UnknownField {
        /// The edge's upstream node.
        node: String,
        /// The missing field.
        field: String,
    },
    /// The DAG contains a cycle through the named node.
    Cycle(String),
    /// A spout was given an incoming edge.
    SpoutWithInput(String),
    /// Parallelism must be at least one.
    ZeroParallelism(String),
    /// A topology with no spout can never produce data.
    NoSpout,
    /// The cluster has fewer slots than the topology needs.
    InsufficientCapacity {
        /// Tasks to place.
        needed: usize,
        /// Slots available.
        available: usize,
    },
    /// A component name was not found in the registry.
    UnknownComponent(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::DuplicateNode(n) => write!(f, "duplicate node name {n:?}"),
            ModelError::UnknownNode(n) => write!(f, "edge references unknown node {n:?}"),
            ModelError::UnknownField { node, field } => {
                write!(f, "grouping on {node:?} names unknown field {field:?}")
            }
            ModelError::Cycle(n) => write!(f, "topology has a cycle through {n:?}"),
            ModelError::SpoutWithInput(n) => write!(f, "spout {n:?} cannot have inputs"),
            ModelError::ZeroParallelism(n) => write!(f, "node {n:?} has zero parallelism"),
            ModelError::NoSpout => write!(f, "topology has no spout"),
            ModelError::InsufficientCapacity { needed, available } => {
                write!(
                    f,
                    "need {needed} worker slots but only {available} available"
                )
            }
            ModelError::UnknownComponent(n) => write!(f, "unknown component {n:?}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;
