//! Pluggable topology schedulers.
//!
//! Storm's default scheduler distributes tasks round-robin across hosts; the
//! Typhoon prototype replaces it (via Storm's `IScheduler` interface, §5)
//! with a locality-aware scheduler that packs topologically neighbouring
//! workers onto the same host to minimize remote inter-worker traffic.
//! Both are implemented here behind one [`Scheduler`] trait so experiments
//! can hold the framework constant and vary only placement.

use crate::logical::LogicalTopology;
use crate::physical::{HostId, HostInfo, PhysicalTopology, TaskAssignment};
use crate::{AppId, ModelError, Result};
use std::collections::BTreeMap;
use typhoon_tuple::tuple::TaskId;

/// Converts a logical topology into task placements on a concrete cluster.
pub trait Scheduler: Send + Sync {
    /// Schedules `logical` for application `app` onto `hosts`.
    ///
    /// Implementations must: assign each task a unique [`TaskId`]; respect
    /// host slot capacities; and give every task a switch port unique on its
    /// host (ports start at 1; port 0 is reserved for the host's tunnel
    /// port, mirroring the reserved tunnel port of Table 3).
    fn schedule(
        &self,
        app: AppId,
        logical: &LogicalTopology,
        hosts: &[HostInfo],
    ) -> Result<PhysicalTopology>;

    /// Human-readable scheduler name (for experiment logs).
    fn name(&self) -> &'static str;
}

fn check_capacity(logical: &LogicalTopology, hosts: &[HostInfo]) -> Result<()> {
    let needed = logical.total_tasks();
    let available: usize = hosts.iter().map(|h| h.slots).sum();
    if needed > available {
        return Err(ModelError::InsufficientCapacity { needed, available });
    }
    Ok(())
}

/// Expands nodes into (node, component) entries in topological order so both
/// schedulers enumerate tasks identically and differ only in placement.
fn expand_tasks(logical: &LogicalTopology) -> Vec<(String, String)> {
    let order = logical.topo_order();
    let mut out = Vec::with_capacity(logical.total_tasks());
    for name in order {
        let node = logical.node(name).expect("topo order returns real nodes");
        for _ in 0..node.parallelism {
            out.push((node.name.clone(), node.component.clone()));
        }
    }
    out
}

struct PortAllocator {
    next: BTreeMap<HostId, u32>,
}

impl PortAllocator {
    fn new() -> Self {
        PortAllocator {
            next: BTreeMap::new(),
        }
    }

    fn alloc(&mut self, host: HostId) -> u32 {
        let p = self.next.entry(host).or_insert(1);
        let port = *p;
        *p += 1;
        port
    }
}

/// Storm's default placement: walk the task list and deal tasks to hosts in
/// round-robin order, skipping full hosts.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobinScheduler;

impl Scheduler for RoundRobinScheduler {
    fn schedule(
        &self,
        app: AppId,
        logical: &LogicalTopology,
        hosts: &[HostInfo],
    ) -> Result<PhysicalTopology> {
        check_capacity(logical, hosts)?;
        let tasks = expand_tasks(logical);
        let mut remaining: Vec<usize> = hosts.iter().map(|h| h.slots).collect();
        let mut ports = PortAllocator::new();
        let mut assignments = Vec::with_capacity(tasks.len());
        let mut cursor = 0usize;
        for (i, (node, component)) in tasks.into_iter().enumerate() {
            // Find the next host with a free slot.
            let mut probe = 0;
            while remaining[cursor % hosts.len()] == 0 {
                cursor += 1;
                probe += 1;
                debug_assert!(probe <= hosts.len(), "capacity was checked");
            }
            let hidx = cursor % hosts.len();
            cursor += 1;
            remaining[hidx] -= 1;
            let host = hosts[hidx].id;
            assignments.push(TaskAssignment {
                task: TaskId(i as u32),
                node,
                component,
                host,
                switch_port: ports.alloc(host),
            });
        }
        let task_watermark = assignments.len() as u32;
        Ok(PhysicalTopology {
            app,
            name: logical.name.clone(),
            version: 1,
            task_watermark,
            assignments,
        })
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Typhoon's locality scheduler: walk tasks in topological order and fill
/// one host completely before moving to the next, so adjacent pipeline
/// stages land together and most tuple hops stay switch-local.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalityScheduler;

impl Scheduler for LocalityScheduler {
    fn schedule(
        &self,
        app: AppId,
        logical: &LogicalTopology,
        hosts: &[HostInfo],
    ) -> Result<PhysicalTopology> {
        check_capacity(logical, hosts)?;
        let tasks = expand_tasks(logical);
        let mut ports = PortAllocator::new();
        let mut assignments = Vec::with_capacity(tasks.len());
        let mut hidx = 0usize;
        let mut used_on_host = 0usize;
        for (i, (node, component)) in tasks.into_iter().enumerate() {
            while used_on_host >= hosts[hidx].slots {
                hidx += 1;
                used_on_host = 0;
                debug_assert!(hidx < hosts.len(), "capacity was checked");
            }
            used_on_host += 1;
            let host = hosts[hidx].id;
            assignments.push(TaskAssignment {
                task: TaskId(i as u32),
                node,
                component,
                host,
                switch_port: ports.alloc(host),
            });
        }
        let task_watermark = assignments.len() as u32;
        Ok(PhysicalTopology {
            app,
            name: logical.name.clone(),
            version: 1,
            task_watermark,
            assignments,
        })
    }

    fn name(&self) -> &'static str {
        "locality"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::word_count_example;
    use std::collections::HashSet;

    fn hosts(n: u32, slots: usize) -> Vec<HostInfo> {
        (0..n)
            .map(|i| HostInfo::new(i, &format!("h{i}"), slots))
            .collect()
    }

    fn assert_well_formed(phys: &PhysicalTopology, hosts: &[HostInfo]) {
        // Unique task IDs.
        let ids: HashSet<_> = phys.assignments.iter().map(|a| a.task).collect();
        assert_eq!(ids.len(), phys.assignments.len());
        // Slot capacities respected.
        for (host, tasks) in phys.by_host() {
            let cap = hosts.iter().find(|h| h.id == host).unwrap().slots;
            assert!(tasks.len() <= cap, "{host:?} over capacity");
        }
        // Switch ports unique per host and never 0 (tunnel port).
        let mut seen: HashSet<(HostId, u32)> = HashSet::new();
        for a in &phys.assignments {
            assert_ne!(a.switch_port, 0, "port 0 is the tunnel port");
            assert!(seen.insert((a.host, a.switch_port)), "duplicate port");
        }
    }

    #[test]
    fn round_robin_spreads_tasks() {
        let logical = word_count_example(); // 6 tasks
        let hs = hosts(3, 4);
        let phys = RoundRobinScheduler
            .schedule(AppId(1), &logical, &hs)
            .unwrap();
        assert_well_formed(&phys, &hs);
        let by = phys.by_host();
        assert_eq!(by.len(), 3, "round robin touches every host");
        assert!(by.values().all(|t| t.len() == 2));
    }

    #[test]
    fn locality_packs_hosts_in_order() {
        let logical = word_count_example();
        let hs = hosts(3, 4);
        let phys = LocalityScheduler.schedule(AppId(1), &logical, &hs).unwrap();
        assert_well_formed(&phys, &hs);
        let by = phys.by_host();
        assert_eq!(by[&HostId(0)].len(), 4, "first host filled completely");
        assert_eq!(by[&HostId(1)].len(), 2);
    }

    #[test]
    fn locality_has_no_more_remote_pairs_than_round_robin() {
        let logical = word_count_example();
        let hs = hosts(3, 4);
        let rr = RoundRobinScheduler
            .schedule(AppId(1), &logical, &hs)
            .unwrap();
        let lo = LocalityScheduler.schedule(AppId(1), &logical, &hs).unwrap();
        assert!(
            lo.remote_edge_pairs(&logical) <= rr.remote_edge_pairs(&logical),
            "locality scheduler must not increase remote communication"
        );
    }

    #[test]
    fn insufficient_capacity_is_reported() {
        let logical = word_count_example(); // 6 tasks
        let hs = hosts(1, 3);
        let err = RoundRobinScheduler
            .schedule(AppId(1), &logical, &hs)
            .unwrap_err();
        assert_eq!(
            err,
            ModelError::InsufficientCapacity {
                needed: 6,
                available: 3
            }
        );
    }

    #[test]
    fn exact_fit_succeeds() {
        let logical = word_count_example();
        let hs = hosts(2, 3);
        for sched in [&RoundRobinScheduler as &dyn Scheduler, &LocalityScheduler] {
            let phys = sched.schedule(AppId(1), &logical, &hs).unwrap();
            assert_eq!(phys.assignments.len(), 6, "{}", sched.name());
            assert_well_formed(&phys, &hs);
        }
    }

    #[test]
    fn heterogeneous_slots_are_respected() {
        let logical = word_count_example();
        let hs = vec![HostInfo::new(0, "small", 1), HostInfo::new(1, "big", 8)];
        for sched in [&RoundRobinScheduler as &dyn Scheduler, &LocalityScheduler] {
            let phys = sched.schedule(AppId(1), &logical, &hs).unwrap();
            assert_well_formed(&phys, &hs);
        }
    }
}
