//! The application computation layer: spouts, bolts and emitters.
//!
//! These traits are deliberately transport-agnostic — the same word-count
//! bolts run unchanged on the Storm baseline and on Typhoon, which is what
//! makes the paper's comparisons like-for-like. The worker runtime (in
//! `typhoon-storm` / `typhoon-core`) owns routing, serialization and acking;
//! the component only sees [`Emitter`].

use crate::Result;
use std::collections::HashMap;
use std::sync::Arc;
use typhoon_tuple::{StreamId, Tuple, Value};

/// Sink for tuples produced by a component.
///
/// The runtime implementation applies the routing policy, serialization and
/// anchoring; [`VecEmitter`] is a plain buffer for unit tests.
pub trait Emitter {
    /// Emits values on the default stream.
    fn emit(&mut self, values: Vec<Value>) {
        self.emit_on(StreamId::DEFAULT, values);
    }

    /// Emits values on a specific stream.
    fn emit_on(&mut self, stream: StreamId, values: Vec<Value>);

    /// Acknowledges an input tuple (guaranteed-processing mode).
    fn ack(&mut self, _input: &Tuple) {}

    /// Marks an input tuple as failed, triggering replay from the spout.
    fn fail(&mut self, _input: &Tuple) {}
}

/// A trivial emitter that buffers emissions; used by unit tests and by the
/// stable-update drain logic to capture a component's final flush.
#[derive(Debug, Default)]
pub struct VecEmitter {
    /// Captured (stream, values) emissions in order.
    pub emitted: Vec<(StreamId, Vec<Value>)>,
    /// Tuples acked.
    pub acked: Vec<Tuple>,
    /// Tuples failed.
    pub failed: Vec<Tuple>,
}

impl Emitter for VecEmitter {
    fn emit_on(&mut self, stream: StreamId, values: Vec<Value>) {
        self.emitted.push((stream, values));
    }

    fn ack(&mut self, input: &Tuple) {
        self.acked.push(input.clone());
    }

    fn fail(&mut self, input: &Tuple) {
        self.failed.push(input.clone());
    }
}

/// A data source. The runtime calls [`Spout::next_batch`] in a loop; the
/// spout emits zero or more tuples per call.
pub trait Spout: Send {
    /// Called once before the first `next_batch`.
    fn open(&mut self) {}

    /// Emits the next tuple(s). Returns `false` when the spout has nothing
    /// to emit *right now* (the runtime may back off briefly) and `true`
    /// otherwise. A finite spout keeps returning `false` once exhausted.
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool;

    /// In guaranteed-processing mode the runtime assigns each top-level
    /// emission of the last `next_batch` call a root ID and reports it
    /// here (`index` is the emission's position within that batch). This
    /// is the link that lets a reliable spout replay the right tuple on
    /// [`Spout::fail`] — the counterpart of Storm's spout `messageId`.
    fn emitted(&mut self, _index: usize, _root: u64) {}

    /// Notification that the tuple tree rooted at `root` completed.
    fn ack(&mut self, _root: u64) {}

    /// Notification that the tuple tree rooted at `root` failed; a reliable
    /// spout replays the corresponding tuple.
    fn fail(&mut self, _root: u64) {}

    /// Crash-recovery hook: before assigning a root to the `index`-th
    /// emission of the current batch, the runtime asks whether this
    /// emission is a *replay* of a previously failed tuple. A reliable
    /// spout returns the failed tuple's original root; the runtime then
    /// derives the replay root from it (same base, bumped round byte) so
    /// downstream dedup keys stay stable across replays. `None` (the
    /// default) means a fresh emission with a fresh root.
    fn replay_root(&mut self, _index: usize) -> Option<u64> {
        None
    }
}

/// A processing node. Receives tuples, emits tuples.
pub trait Bolt: Send {
    /// Called once before the first `execute`.
    fn prepare(&mut self) {}

    /// Processes one input tuple.
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter);

    /// Handles a `SIGNAL` control tuple (Table 2): stateful bolts flush
    /// their in-memory cache downstream, exactly as the paper's Listing 2.
    fn on_signal(&mut self, _out: &mut dyn Emitter) {}

    /// Whether this bolt keeps in-memory state that must be flushed before
    /// topology updates (§3.5, Table 4). Stateful bolts get the Fig. 6(b)
    /// update procedure.
    fn is_stateful(&self) -> bool {
        false
    }

    /// Crash-recovery hook: snapshot this bolt's in-memory state as
    /// (key, value) pairs for an epoch checkpoint. `None` (the default)
    /// opts the bolt out of checkpointing; a stateful bolt that wants
    /// exactly-once recovery returns its full state here.
    fn checkpoint(&self) -> Option<Vec<(String, Value)>> {
        None
    }

    /// Crash-recovery hook: reinstall a snapshot previously produced by
    /// [`Bolt::checkpoint`] into a *fresh* instance of this bolt, replacing
    /// whatever state it holds. The bolt may re-emit restored entries on
    /// `out` (unanchored) so latest-value downstream consumers converge
    /// after pre-crash in-flight emissions were lost.
    fn restore(&mut self, _state: Vec<(String, Value)>, _out: &mut dyn Emitter) {}
}

/// Factory producing fresh spout instances, one per task.
pub type SpoutFactory = Arc<dyn Fn() -> Box<dyn Spout> + Send + Sync>;
/// Factory producing fresh bolt instances, one per task.
pub type BoltFactory = Arc<dyn Fn() -> Box<dyn Bolt> + Send + Sync>;

/// Maps component names to factories.
///
/// Logical topologies reference components *by name*; worker agents resolve
/// the name when launching a worker. This indirection is what lets the
/// dynamic topology manager hot-swap computation logic at runtime (§6.2):
/// a reconfiguration simply points a node at a different registered name.
#[derive(Default, Clone)]
pub struct ComponentRegistry {
    spouts: HashMap<String, SpoutFactory>,
    bolts: HashMap<String, BoltFactory>,
}

impl ComponentRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a spout factory under `name` (latest registration wins).
    pub fn register_spout<F, S>(&mut self, name: &str, f: F)
    where
        F: Fn() -> S + Send + Sync + 'static,
        S: Spout + 'static,
    {
        self.spouts
            .insert(name.to_owned(), Arc::new(move || Box::new(f())));
    }

    /// Registers a bolt factory under `name` (latest registration wins).
    pub fn register_bolt<F, B>(&mut self, name: &str, f: F)
    where
        F: Fn() -> B + Send + Sync + 'static,
        B: Bolt + 'static,
    {
        self.bolts
            .insert(name.to_owned(), Arc::new(move || Box::new(f())));
    }

    /// Instantiates the spout registered under `name`.
    pub fn make_spout(&self, name: &str) -> Result<Box<dyn Spout>> {
        self.spouts
            .get(name)
            .map(|f| f())
            .ok_or_else(|| crate::ModelError::UnknownComponent(name.to_owned()))
    }

    /// Instantiates the bolt registered under `name`.
    pub fn make_bolt(&self, name: &str) -> Result<Box<dyn Bolt>> {
        self.bolts
            .get(name)
            .map(|f| f())
            .ok_or_else(|| crate::ModelError::UnknownComponent(name.to_owned()))
    }

    /// True when a spout is registered under `name`.
    pub fn has_spout(&self, name: &str) -> bool {
        self.spouts.contains_key(name)
    }

    /// True when a bolt is registered under `name`.
    pub fn has_bolt(&self, name: &str) -> bool {
        self.bolts.contains_key(name)
    }
}

impl std::fmt::Debug for ComponentRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentRegistry")
            .field("spouts", &self.spouts.keys().collect::<Vec<_>>())
            .field("bolts", &self.bolts.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_tuple::tuple::TaskId;

    struct OneShotSpout {
        fired: bool,
    }

    impl Spout for OneShotSpout {
        fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
            if self.fired {
                return false;
            }
            self.fired = true;
            out.emit(vec![Value::Int(1)]);
            true
        }
    }

    struct EchoBolt;

    impl Bolt for EchoBolt {
        fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
            out.emit(input.values.clone());
            out.ack(&input);
        }
    }

    #[test]
    fn registry_instantiates_fresh_components() {
        let mut reg = ComponentRegistry::new();
        reg.register_spout("numbers", || OneShotSpout { fired: false });
        reg.register_bolt("echo", || EchoBolt);

        let mut s1 = reg.make_spout("numbers").unwrap();
        let mut s2 = reg.make_spout("numbers").unwrap();
        let mut out = VecEmitter::default();
        assert!(s1.next_batch(&mut out));
        assert!(!s1.next_batch(&mut out), "exhausted after one batch");
        assert!(s2.next_batch(&mut out), "instances have independent state");
    }

    #[test]
    fn unknown_component_is_an_error() {
        let reg = ComponentRegistry::new();
        assert!(reg.make_spout("ghost").is_err());
        assert!(reg.make_bolt("ghost").is_err());
        assert!(!reg.has_bolt("ghost"));
    }

    #[test]
    fn re_registration_swaps_logic() {
        // The mechanism behind runtime computation-logic swap: the same name
        // can be re-pointed at different logic.
        let mut reg = ComponentRegistry::new();
        reg.register_bolt("filter", || EchoBolt);
        assert!(reg.has_bolt("filter"));
        struct DropAll;
        impl Bolt for DropAll {
            fn execute(&mut self, _input: Tuple, _out: &mut dyn Emitter) {}
        }
        reg.register_bolt("filter", || DropAll);
        let mut b = reg.make_bolt("filter").unwrap();
        let mut out = VecEmitter::default();
        b.execute(Tuple::new(TaskId(0), vec![Value::Int(1)]), &mut out);
        assert!(out.emitted.is_empty(), "new logic drops everything");
    }

    #[test]
    fn vec_emitter_records_streams_and_acks() {
        let mut out = VecEmitter::default();
        let t = Tuple::new(TaskId(1), vec![Value::Int(9)]);
        let mut bolt = EchoBolt;
        bolt.execute(t.clone(), &mut out);
        assert_eq!(out.emitted.len(), 1);
        assert_eq!(out.emitted[0].0, StreamId::DEFAULT);
        assert_eq!(out.acked.len(), 1);
    }

    #[test]
    fn default_bolt_is_stateless_and_ignores_signals() {
        let mut b = EchoBolt;
        assert!(!b.is_stateful());
        let mut out = VecEmitter::default();
        b.on_signal(&mut out);
        assert!(out.emitted.is_empty());
    }

    #[test]
    fn default_recovery_hooks_opt_out() {
        let mut b = EchoBolt;
        assert!(b.checkpoint().is_none());
        let mut out = VecEmitter::default();
        b.restore(vec![("k".into(), Value::Int(1))], &mut out);
        assert!(out.emitted.is_empty());
        let mut s = OneShotSpout { fired: false };
        assert!(s.replay_root(0).is_none());
    }

    #[test]
    fn checkpoint_restore_roundtrips_through_a_stateful_bolt() {
        struct Counter {
            counts: HashMap<String, i64>,
        }
        impl Bolt for Counter {
            fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
                if let Some(word) = input.values.first().and_then(|v| v.as_str()) {
                    *self.counts.entry(word.to_owned()).or_insert(0) += 1;
                }
            }
            fn is_stateful(&self) -> bool {
                true
            }
            fn checkpoint(&self) -> Option<Vec<(String, Value)>> {
                Some(
                    self.counts
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Int(*v)))
                        .collect(),
                )
            }
            fn restore(&mut self, state: Vec<(String, Value)>, out: &mut dyn Emitter) {
                self.counts = state
                    .iter()
                    .filter_map(|(k, v)| v.as_int().map(|n| (k.clone(), n)))
                    .collect();
                for (k, v) in state {
                    out.emit(vec![Value::Str(k), v]);
                }
            }
        }
        let mut original = Counter {
            counts: HashMap::new(),
        };
        let mut sink = VecEmitter::default();
        for w in ["a", "b", "a"] {
            original.execute(Tuple::new(TaskId(0), vec![Value::Str(w.into())]), &mut sink);
        }
        let snap = original.checkpoint().expect("stateful bolt snapshots");
        let mut replacement = Counter {
            counts: HashMap::new(),
        };
        let mut flush = VecEmitter::default();
        replacement.restore(snap, &mut flush);
        assert_eq!(replacement.counts.get("a"), Some(&2));
        assert_eq!(replacement.counts.get("b"), Some(&1));
        assert_eq!(flush.emitted.len(), 2, "restore re-emits restored state");
    }
}
