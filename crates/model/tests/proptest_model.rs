//! Property tests on the topology model: scheduler invariants over
//! arbitrary clusters, routing-policy distribution laws, and validator
//! robustness on arbitrary DAG-ish inputs.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use typhoon_model::{
    AppId, Fields, Grouping, HostInfo, LocalityScheduler, LogicalTopology, RoundRobinScheduler,
    RoutingState, Scheduler, TaskId,
};
use typhoon_tuple::{Tuple, Value};

/// A layered pipeline topology: guaranteed acyclic by construction.
fn arb_pipeline() -> impl Strategy<Value = LogicalTopology> {
    (
        1usize..4,                                            // spout parallelism
        proptest::collection::vec((1usize..5, 0u8..4), 1..5), // layers: (parallelism, grouping tag)
    )
        .prop_map(|(spout_par, layers)| {
            let mut b = LogicalTopology::builder("prop").spout(
                "l0",
                "c",
                spout_par,
                Fields::new(["k", "v"]),
            );
            let mut prev = "l0".to_owned();
            for (i, (par, gtag)) in layers.into_iter().enumerate() {
                let name = format!("l{}", i + 1);
                let grouping = match gtag {
                    0 => Grouping::Shuffle,
                    1 => Grouping::Fields(vec!["k".into()]),
                    2 => Grouping::Global,
                    _ => Grouping::All,
                };
                b = b
                    .bolt(&name, "c", par, Fields::new(["k", "v"]))
                    .edge(&prev, &name, grouping);
                prev = name;
            }
            b.build().expect("layered pipelines are valid")
        })
}

fn arb_hosts() -> impl Strategy<Value = Vec<HostInfo>> {
    proptest::collection::vec(1usize..8, 1..6).prop_map(|slots| {
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| HostInfo::new(i as u32, &format!("h{i}"), s))
            .collect()
    })
}

proptest! {
    #[test]
    fn schedulers_respect_invariants(topo in arb_pipeline(), hosts in arb_hosts()) {
        for scheduler in [&RoundRobinScheduler as &dyn Scheduler, &LocalityScheduler] {
            match scheduler.schedule(AppId(1), &topo, &hosts) {
                Ok(phys) => {
                    // Every task placed exactly once.
                    prop_assert_eq!(phys.assignments.len(), topo.total_tasks());
                    let ids: HashSet<TaskId> =
                        phys.assignments.iter().map(|a| a.task).collect();
                    prop_assert_eq!(ids.len(), phys.assignments.len());
                    // Capacity respected.
                    for (host, tasks) in phys.by_host() {
                        let cap = hosts.iter().find(|h| h.id == host).unwrap().slots;
                        prop_assert!(tasks.len() <= cap);
                    }
                    // Ports unique per host, never the tunnel port.
                    let mut seen = HashSet::new();
                    for a in &phys.assignments {
                        prop_assert!(a.switch_port != 0);
                        prop_assert!(seen.insert((a.host, a.switch_port)));
                    }
                    // Node→task expansion matches parallelism.
                    for node in &topo.nodes {
                        prop_assert_eq!(
                            phys.tasks_of(&node.name).len(),
                            node.parallelism
                        );
                    }
                }
                Err(_) => {
                    // Only acceptable failure: genuinely out of capacity.
                    let capacity: usize = hosts.iter().map(|h| h.slots).sum();
                    prop_assert!(topo.total_tasks() > capacity);
                }
            }
        }
    }

    #[test]
    fn placement_shapes_hold_on_uniform_clusters(
        topo in arb_pipeline(),
        n_hosts in 1u32..6,
        slots in 2usize..8,
    ) {
        // Both schedulers are heuristics; their *placement shapes* are the
        // invariants. Locality packs: it touches the minimum number of
        // hosts. Round robin spreads: it touches as many hosts as tasks
        // allow. (Neither universally minimizes remote pairs — a chain
        // whose stages straddle pack boundaries can favour either.)
        let hosts: Vec<HostInfo> = (0..n_hosts)
            .map(|i| HostInfo::new(i, &format!("h{i}"), slots))
            .collect();
        let tasks = topo.total_tasks();
        if let Ok(lo) = LocalityScheduler.schedule(AppId(1), &topo, &hosts) {
            let min_hosts = tasks.div_ceil(slots);
            prop_assert_eq!(lo.by_host().len(), min_hosts, "locality packs");
        }
        if let Ok(rr) = RoundRobinScheduler.schedule(AppId(1), &topo, &hosts) {
            let spread = (n_hosts as usize).min(tasks);
            prop_assert_eq!(rr.by_host().len(), spread, "round robin spreads");
        }
    }

    #[test]
    fn shuffle_distributes_evenly(hops in 1usize..9, rounds in 1usize..20) {
        let hop_ids: Vec<TaskId> = (0..hops as u32).map(TaskId).collect();
        let mut rs = RoutingState::new(Grouping::Shuffle, hop_ids, vec![]);
        let t = Tuple::new(TaskId(0), vec![]);
        let mut counts: HashMap<TaskId, usize> = HashMap::new();
        for _ in 0..hops * rounds {
            if let typhoon_model::RouteDecision::One(d) = rs.route(&t) {
                *counts.entry(d).or_insert(0) += 1;
            }
        }
        // Perfect fairness: whole rounds distribute exactly evenly.
        prop_assert!(counts.values().all(|&c| c == rounds));
    }

    #[test]
    fn fields_routing_is_a_function_of_the_key(
        keys in proptest::collection::vec(any::<i64>(), 1..50),
        hops in 1usize..9,
    ) {
        let hop_ids: Vec<TaskId> = (0..hops as u32).map(TaskId).collect();
        let mut rs = RoutingState::new(
            Grouping::Fields(vec!["k".into()]),
            hop_ids,
            vec![0],
        );
        let mut mapping: HashMap<i64, typhoon_model::RouteDecision> = HashMap::new();
        for _ in 0..3 {
            for &k in &keys {
                let t = Tuple::new(TaskId(0), vec![Value::Int(k), Value::Int(999)]);
                let d = rs.route(&t);
                if let Some(prev) = mapping.get(&k) {
                    prop_assert_eq!(prev.clone(), d, "key {} moved", k);
                } else {
                    mapping.insert(k, d);
                }
            }
        }
    }

    #[test]
    fn routing_state_survives_arbitrary_hop_updates(
        updates in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..8),
            1..10
        ),
    ) {
        let mut rs = RoutingState::new(Grouping::Shuffle, vec![TaskId(0)], vec![]);
        let t = Tuple::new(TaskId(0), vec![]);
        for hops in updates {
            let hop_ids: Vec<TaskId> = hops.into_iter().map(TaskId).collect();
            rs.set_next_hops(hop_ids.clone());
            let decision = rs.route(&t);
            if hop_ids.is_empty() {
                prop_assert_eq!(decision, typhoon_model::RouteDecision::Drop);
            } else if let typhoon_model::RouteDecision::One(d) = decision {
                prop_assert!(rs.next_hops().contains(&d));
            }
        }
    }
}
