//! DPDK-style bounded ring ports.
//!
//! Workers attach to their host's software switch through shared-memory
//! ring buffers in the prototype (Fig. 7: "DPDK Ring Port"); here a ring is
//! a bounded lock-free queue with explicit overflow accounting. When the
//! consumer side (the switch, or a slow worker) falls behind, pushes fail
//! and the drop counter grows — the "temporary TX/RX queue overflow" of §8
//! becomes an observable, testable number instead of silent loss.

use crate::frame::Frame;
use crate::{NetError, Result};
use crossbeam::queue::ArrayQueue;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Counters shared by both ends of a ring.
#[derive(Debug, Default)]
pub struct RingStats {
    /// Frames successfully enqueued.
    pub enqueued: AtomicU64,
    /// Frames successfully dequeued.
    pub dequeued: AtomicU64,
    /// Frames dropped because the ring was full.
    pub dropped: AtomicU64,
}

impl RingStats {
    /// (enqueued, dequeued, dropped) snapshot.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.enqueued.load(Ordering::Relaxed),
            self.dequeued.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }
}

struct Shared {
    queue: ArrayQueue<Frame>,
    stats: RingStats,
    closed: AtomicBool,
}

/// Producer half of a ring.
pub struct RingProducer {
    shared: Arc<Shared>,
}

/// Consumer half of a ring.
pub struct RingConsumer {
    shared: Arc<Shared>,
}

/// Creates a bounded ring of `capacity` frames.
pub fn ring(capacity: usize) -> (RingProducer, RingConsumer) {
    let shared = Arc::new(Shared {
        queue: ArrayQueue::new(capacity),
        stats: RingStats::default(),
        closed: AtomicBool::new(false),
    });
    (
        RingProducer {
            shared: shared.clone(),
        },
        RingConsumer { shared },
    )
}

/// Outcome of a [`RingProducer::push_batch`] call.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchPush {
    /// Frames successfully enqueued.
    pub enqueued: usize,
    /// Frames dropped on overflow (counted in ring stats), like `push`.
    pub dropped: usize,
    /// True when the ring was observed closed mid-batch; the frames not
    /// yet attempted remain in the caller's vector.
    pub disconnected: bool,
}

impl RingProducer {
    /// Enqueues a frame. On overflow the frame is dropped (and counted),
    /// mirroring a full hardware TX queue.
    pub fn push(&self, frame: Frame) -> Result<()> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(NetError::Disconnected);
        }
        match self.shared.queue.push(frame) {
            Ok(()) => {
                self.shared.stats.enqueued.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => {
                self.shared.stats.dropped.fetch_add(1, Ordering::Relaxed);
                Err(NetError::RingFull)
            }
        }
    }

    /// Enqueues `batch` in order, pairing [`RingConsumer::pop_batch`]. The
    /// `closed` flag is checked before every frame (exactly like `push`),
    /// but its cost and the per-call bookkeeping are amortized over the
    /// batch. Overflowed frames are dropped and counted like `push`; when
    /// the ring is observed closed mid-batch, the remaining frames are
    /// **left in `batch`** so the caller knows precisely which frames were
    /// never attempted — no frame is silently dropped from a half-consumed
    /// batch.
    pub fn push_batch(&self, batch: &mut Vec<Frame>) -> BatchPush {
        let mut result = BatchPush::default();
        let mut iter = std::mem::take(batch).into_iter();
        loop {
            if self.shared.closed.load(Ordering::Acquire) {
                result.disconnected = true;
                *batch = iter.collect();
                break;
            }
            let frame = match iter.next() {
                Some(f) => f,
                None => break,
            };
            match self.shared.queue.push(frame) {
                Ok(()) => result.enqueued += 1,
                Err(_) => result.dropped += 1,
            }
        }
        if result.enqueued > 0 {
            self.shared
                .stats
                .enqueued
                .fetch_add(result.enqueued as u64, Ordering::Relaxed);
        }
        if result.dropped > 0 {
            self.shared
                .stats
                .dropped
                .fetch_add(result.dropped as u64, Ordering::Relaxed);
        }
        result
    }

    /// Shared statistics.
    pub fn stats(&self) -> (u64, u64, u64) {
        self.shared.stats.snapshot()
    }

    /// Marks the ring closed; the consumer drains what remains then sees
    /// [`NetError::Disconnected`].
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
    }

    /// True once either side closed the ring.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }
}

impl Drop for RingProducer {
    fn drop(&mut self) {
        self.close();
    }
}

impl RingConsumer {
    /// Dequeues one frame if available. `Ok(None)` means "empty right now";
    /// [`NetError::Disconnected`] means closed *and* drained.
    pub fn pop(&self) -> Result<Option<Frame>> {
        match self.shared.queue.pop() {
            Some(f) => {
                self.shared.stats.dequeued.fetch_add(1, Ordering::Relaxed);
                Ok(Some(f))
            }
            None => {
                if self.shared.closed.load(Ordering::Acquire) {
                    // The producer may have pushed and then closed between
                    // our empty pop above and the `closed` load; a frame
                    // enqueued before the close must still be delivered, so
                    // re-check the queue after observing `closed`.
                    match self.shared.queue.pop() {
                        Some(f) => {
                            self.shared.stats.dequeued.fetch_add(1, Ordering::Relaxed);
                            Ok(Some(f))
                        }
                        None => Err(NetError::Disconnected),
                    }
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Dequeues up to `max` frames into `out` (batch-amortized polling, as
    /// the southbound library "polls for incoming packets in shared memory
    /// RX ring buffers"). Returns the number appended.
    ///
    /// When the ring disconnects mid-drain, frames already appended are
    /// **kept** and `Ok(n)` is returned — `Disconnected` only surfaces on a
    /// call that drained nothing. (An earlier version propagated the error
    /// after a partial drain, and callers holding the output vector in a
    /// local dropped the final batch of a closing worker on the floor.)
    pub fn pop_batch(&self, out: &mut Vec<Frame>, max: usize) -> Result<usize> {
        let mut n = 0;
        while n < max {
            match self.pop() {
                Ok(Some(f)) => {
                    out.push(f);
                    n += 1;
                }
                Ok(None) => break,
                Err(e) => {
                    if n == 0 {
                        return Err(e);
                    }
                    break;
                }
            }
        }
        Ok(n)
    }

    /// Frames currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.len()
    }

    /// True when no frames are queued.
    pub fn is_empty(&self) -> bool {
        self.shared.queue.is_empty()
    }

    /// Shared statistics.
    pub fn stats(&self) -> (u64, u64, u64) {
        self.shared.stats.snapshot()
    }

    /// Marks the ring closed from the consumer side; subsequent pushes fail.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl Drop for RingConsumer {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for RingProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (e, d, x) = self.stats();
        write!(f, "RingProducer(enq={e}, deq={d}, drop={x})")
    }
}

impl std::fmt::Debug for RingConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (e, d, x) = self.stats();
        write!(f, "RingConsumer(enq={e}, deq={d}, drop={x})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MacAddr;
    use bytes::Bytes;
    use typhoon_tuple::tuple::TaskId;

    fn frame(n: u8) -> Frame {
        Frame::typhoon(
            MacAddr::worker(0, TaskId(0)),
            MacAddr::worker(0, TaskId(1)),
            Bytes::from(vec![n]),
        )
    }

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = ring(8);
        for i in 0..5 {
            tx.push(frame(i)).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.pop().unwrap().unwrap().payload[0], i);
        }
        assert!(rx.pop().unwrap().is_none());
    }

    #[test]
    fn overflow_drops_and_counts() {
        let (tx, rx) = ring(2);
        tx.push(frame(0)).unwrap();
        tx.push(frame(1)).unwrap();
        assert_eq!(tx.push(frame(2)).unwrap_err(), NetError::RingFull);
        let (enq, _, dropped) = rx.stats();
        assert_eq!((enq, dropped), (2, 1));
    }

    #[test]
    fn pop_batch_respects_max() {
        let (tx, rx) = ring(16);
        for i in 0..10 {
            tx.push(frame(i)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 4).unwrap(), 4);
        assert_eq!(rx.pop_batch(&mut out, 100).unwrap(), 6);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn push_batch_enqueues_in_order() {
        let (tx, rx) = ring(16);
        let mut batch: Vec<Frame> = (0..5).map(frame).collect();
        let res = tx.push_batch(&mut batch);
        assert_eq!(
            res,
            BatchPush {
                enqueued: 5,
                dropped: 0,
                disconnected: false
            }
        );
        assert!(batch.is_empty());
        for i in 0..5 {
            assert_eq!(rx.pop().unwrap().unwrap().payload[0], i);
        }
    }

    #[test]
    fn push_batch_overflow_drops_and_counts_like_push() {
        let (tx, rx) = ring(3);
        let mut batch: Vec<Frame> = (0..5).map(frame).collect();
        let res = tx.push_batch(&mut batch);
        assert_eq!(res.enqueued, 3);
        assert_eq!(res.dropped, 2);
        assert!(!res.disconnected);
        let (enq, _, dropped) = rx.stats();
        assert_eq!((enq, dropped), (3, 2));
    }

    #[test]
    fn push_batch_on_closed_ring_leaves_frames_with_caller() {
        let (tx, rx) = ring(8);
        drop(rx);
        let mut batch: Vec<Frame> = (0..4).map(frame).collect();
        let res = tx.push_batch(&mut batch);
        assert!(res.disconnected);
        assert_eq!(res.enqueued, 0);
        assert_eq!(batch.len(), 4, "nothing silently dropped");
        assert_eq!(batch[0].payload[0], 0, "order preserved");
    }

    /// The PR-3 drain contract extended to batches: frames pushed via
    /// `push_batch` before a close are all delivered via `pop_batch`, and
    /// the consumer sees `Disconnected` only once the queue is empty.
    #[test]
    fn pop_batch_keeps_partial_drain_on_disconnect() {
        let (tx, rx) = ring(8);
        let mut batch: Vec<Frame> = (0..5).map(frame).collect();
        assert_eq!(tx.push_batch(&mut batch).enqueued, 5);
        tx.close();
        let mut out = Vec::new();
        // One call drains the 5 buffered frames and hits the close; the
        // drained frames must be kept, not traded for the error.
        assert_eq!(rx.pop_batch(&mut out, 100).unwrap(), 5);
        assert_eq!(out.len(), 5);
        assert_eq!(
            rx.pop_batch(&mut out, 100).unwrap_err(),
            NetError::Disconnected
        );
    }

    #[test]
    fn close_drains_then_disconnects() {
        let (tx, rx) = ring(4);
        tx.push(frame(1)).unwrap();
        tx.close();
        assert!(tx.push(frame(2)).is_err());
        assert!(rx.pop().unwrap().is_some(), "drain survives close");
        assert_eq!(rx.pop().unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn dropping_consumer_closes_ring() {
        let (tx, rx) = ring(4);
        drop(rx);
        assert_eq!(tx.push(frame(0)).unwrap_err(), NetError::Disconnected);
    }

    /// Regression: a push racing a close must never lose the frame. The
    /// producer pushes one frame and immediately closes while the consumer
    /// spins on `pop`; before the close/drain re-check in `pop`, the
    /// consumer could observe `Disconnected` with the frame still queued.
    /// Many short rounds make the tiny race window trip reliably.
    #[test]
    fn close_pop_race_never_loses_the_last_frame() {
        for round in 0..2000 {
            let (tx, rx) = ring(4);
            let producer = std::thread::spawn(move || {
                tx.push(frame(7)).unwrap();
                // tx drops here, closing the ring right after the push.
            });
            let mut got = 0;
            loop {
                match rx.pop() {
                    Ok(Some(_)) => got += 1,
                    Ok(None) => std::hint::spin_loop(),
                    Err(NetError::Disconnected) => break,
                    Err(e) => panic!("{e}"),
                }
            }
            producer.join().unwrap();
            assert_eq!(got, 1, "round {round}: frame lost to the close race");
        }
    }

    #[test]
    fn cross_thread_transfer() {
        let (tx, rx) = ring(1024);
        let producer = std::thread::spawn(move || {
            for i in 0..10_000u32 {
                loop {
                    match tx.push(frame((i % 251) as u8)) {
                        Ok(()) => break,
                        Err(NetError::RingFull) => std::thread::yield_now(),
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        });
        let mut received = 0u32;
        while received < 10_000 {
            match rx.pop() {
                Ok(Some(_)) => received += 1,
                Ok(None) => std::thread::yield_now(),
                Err(_) => break,
            }
        }
        producer.join().unwrap();
        assert_eq!(received, 10_000);
    }
}
