//! Shared retry/timeout/exponential-backoff-with-jitter for control-plane
//! RPC paths.
//!
//! Every control-plane interaction that can transiently fail — the
//! controller↔switch channel during a failover, the REST command path,
//! coordinator session acquisition, waiting for a leader to be elected —
//! retries through one [`BackoffPolicy`] instead of hand-rolled sleep
//! loops. The delay sequence is exponential with multiplicative jitter,
//! and the jitter is drawn from a [`SmallRng`] seeded by the caller, so a
//! chaos run's retry timing replays deterministically from its
//! `CHAOS_SEED`.
//!
//! Giving up is a *typed* outcome ([`RetryError`]) carrying the attempt
//! count, the elapsed wall time and the last underlying error — callers
//! surface it instead of silently degrading. Metric naming for retry
//! observability lives in docs/OBSERVABILITY.md under `net.backoff.*`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Retry/timeout envelope for one class of control-plane call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the second attempt (the first runs immediately).
    pub initial: Duration,
    /// Upper bound on any single delay.
    pub max: Duration,
    /// Growth factor between consecutive delays.
    pub multiplier: f64,
    /// Jitter fraction in `0..=1`: each delay is scaled by a factor drawn
    /// uniformly from `1 - jitter ..= 1 + jitter`.
    pub jitter: f64,
    /// Give up after this many attempts (`0` = bounded by `deadline`
    /// alone).
    pub max_attempts: u32,
    /// Give up once this much wall time has elapsed (`None` = bounded by
    /// `max_attempts` alone).
    pub deadline: Option<Duration>,
}

impl BackoffPolicy {
    /// The default envelope for intra-process control-plane calls:
    /// 1 ms → 128 ms exponential, ±25% jitter, capped at 30 attempts or
    /// 5 s of wall time — comfortably longer than a leader election, far
    /// shorter than any test bound.
    pub fn control_plane() -> Self {
        BackoffPolicy {
            initial: Duration::from_millis(1),
            max: Duration::from_millis(128),
            multiplier: 2.0,
            jitter: 0.25,
            max_attempts: 30,
            deadline: Some(Duration::from_secs(5)),
        }
    }

    /// A tight envelope for paths that must fail fast (e.g. probing
    /// whether a leader exists without blocking a tick loop).
    pub fn fail_fast() -> Self {
        BackoffPolicy {
            initial: Duration::from_millis(1),
            max: Duration::from_millis(8),
            multiplier: 2.0,
            jitter: 0.25,
            max_attempts: 4,
            deadline: Some(Duration::from_millis(50)),
        }
    }

    /// Builder: override the attempt bound.
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n;
        self
    }

    /// Builder: override the wall-time bound.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// The jittered delay to sleep before attempt `attempt + 1`
    /// (attempts are 0-indexed; attempt 0 runs immediately).
    fn delay(&self, attempt: u32, rng: &mut SmallRng) -> Duration {
        let base = self.initial.as_secs_f64() * self.multiplier.powi(attempt as i32);
        let capped = base.min(self.max.as_secs_f64());
        let jitter = if self.jitter > 0.0 {
            rng.gen_range(1.0 - self.jitter..1.0 + self.jitter)
        } else {
            1.0
        };
        Duration::from_secs_f64((capped * jitter).max(0.0))
    }
}

/// Why a retried operation was abandoned.
#[derive(Debug, Clone, PartialEq)]
pub enum RetryError<E> {
    /// Every allowed attempt failed; `last` is the final error.
    AttemptsExhausted {
        /// Attempts actually made.
        attempts: u32,
        /// Wall time spent retrying.
        elapsed: Duration,
        /// The error from the last attempt.
        last: E,
    },
    /// The wall-time deadline passed; `last` is the most recent error.
    DeadlineExceeded {
        /// Attempts actually made.
        attempts: u32,
        /// Wall time spent retrying.
        elapsed: Duration,
        /// The error from the last attempt.
        last: E,
    },
}

impl<E> RetryError<E> {
    /// Attempts made before giving up.
    pub fn attempts(&self) -> u32 {
        match self {
            RetryError::AttemptsExhausted { attempts, .. }
            | RetryError::DeadlineExceeded { attempts, .. } => *attempts,
        }
    }

    /// The last underlying error.
    pub fn last(&self) -> &E {
        match self {
            RetryError::AttemptsExhausted { last, .. }
            | RetryError::DeadlineExceeded { last, .. } => last,
        }
    }
}

impl<E: std::fmt::Display> std::fmt::Display for RetryError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::AttemptsExhausted {
                attempts,
                elapsed,
                last,
            } => write!(f, "gave up after {attempts} attempts ({elapsed:?}): {last}"),
            RetryError::DeadlineExceeded {
                attempts,
                elapsed,
                last,
            } => write!(
                f,
                "deadline exceeded after {attempts} attempts ({elapsed:?}): {last}"
            ),
        }
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for RetryError<E> {}

/// Runs `op` under `policy`, sleeping a jittered exponential delay between
/// failures. `op` receives the 0-indexed attempt number. Returns the first
/// success, or a typed [`RetryError`] when the policy is exhausted.
///
/// `seed` drives the jitter; derive it from the run seed (plus a call-site
/// discriminator) so chaos runs replay with identical timing.
pub fn retry<T, E>(
    policy: &BackoffPolicy,
    seed: u64,
    mut op: impl FnMut(u32) -> std::result::Result<T, E>,
) -> std::result::Result<T, RetryError<E>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let start = Instant::now();
    let mut attempt = 0u32;
    loop {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => {
                attempt += 1;
                let elapsed = start.elapsed();
                if policy.max_attempts > 0 && attempt >= policy.max_attempts {
                    return Err(RetryError::AttemptsExhausted {
                        attempts: attempt,
                        elapsed,
                        last: e,
                    });
                }
                let delay = policy.delay(attempt - 1, &mut rng);
                if let Some(deadline) = policy.deadline {
                    if elapsed + delay >= deadline {
                        return Err(RetryError::DeadlineExceeded {
                            attempts: attempt,
                            elapsed,
                            last: e,
                        });
                    }
                }
                // LINT: allow-sleep(backoff delay between control-plane retry attempts, bounded by the policy deadline)
                std::thread::sleep(delay);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_returns_immediately() {
        let policy = BackoffPolicy::control_plane();
        let r: std::result::Result<u32, RetryError<&str>> = retry(&policy, 7, |_| Ok(42u32));
        assert_eq!(r.unwrap(), 42);
    }

    #[test]
    fn retries_until_success_and_reports_attempt_numbers() {
        let policy = BackoffPolicy {
            initial: Duration::from_micros(50),
            max: Duration::from_micros(200),
            multiplier: 2.0,
            jitter: 0.25,
            max_attempts: 10,
            deadline: None,
        };
        let mut seen = Vec::new();
        let r: std::result::Result<u32, RetryError<&str>> = retry(&policy, 1, |attempt| {
            seen.push(attempt);
            if attempt < 3 {
                Err("not yet")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(r.unwrap(), 3);
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn attempts_exhausted_is_typed_with_counts() {
        let policy = BackoffPolicy {
            initial: Duration::from_micros(10),
            max: Duration::from_micros(20),
            multiplier: 2.0,
            jitter: 0.0,
            max_attempts: 4,
            deadline: None,
        };
        let r: std::result::Result<(), RetryError<&str>> = retry(&policy, 3, |_| Err("down"));
        match r {
            Err(RetryError::AttemptsExhausted { attempts, last, .. }) => {
                assert_eq!(attempts, 4);
                assert_eq!(last, "down");
            }
            other => panic!("expected AttemptsExhausted, got {other:?}"),
        }
    }

    #[test]
    fn deadline_exceeded_is_typed() {
        let policy = BackoffPolicy {
            initial: Duration::from_millis(20),
            max: Duration::from_millis(20),
            multiplier: 1.0,
            jitter: 0.0,
            max_attempts: 0,
            deadline: Some(Duration::from_millis(30)),
        };
        let r: std::result::Result<(), RetryError<&str>> = retry(&policy, 9, |_| Err("down"));
        match r {
            Err(RetryError::DeadlineExceeded { attempts, .. }) => assert!(attempts >= 1),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(r.unwrap_err().attempts() >= 1);
    }

    #[test]
    fn delays_grow_exponentially_within_jitter_and_cap() {
        let policy = BackoffPolicy {
            initial: Duration::from_millis(1),
            max: Duration::from_millis(8),
            multiplier: 2.0,
            jitter: 0.25,
            max_attempts: 0,
            deadline: None,
        };
        let mut rng = SmallRng::seed_from_u64(0xfeed);
        for attempt in 0..10 {
            let d = policy.delay(attempt, &mut rng).as_secs_f64();
            let base = (0.001f64 * 2f64.powi(attempt as i32)).min(0.008);
            assert!(
                d >= base * 0.75 - 1e-9,
                "attempt {attempt}: {d} < {base}*0.75"
            );
            assert!(
                d <= base * 1.25 + 1e-9,
                "attempt {attempt}: {d} > {base}*1.25"
            );
        }
    }

    #[test]
    fn same_seed_same_delay_sequence() {
        let policy = BackoffPolicy::control_plane();
        let seq = |seed: u64| -> Vec<Duration> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..6).map(|a| policy.delay(a, &mut rng)).collect()
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43));
    }
}
