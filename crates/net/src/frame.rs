//! The Typhoon transport packet: an Ethernet frame with worker-ID MACs.
//!
//! Fig. 5 of the paper: `| dst worker ID | src worker ID | EtherType |
//! payload |`. Worker IDs are "filled with source/destination worker IDs
//! combined with application ID as an address prefix", and the EtherType is
//! a custom value (`0xffff`) "so that any unnecessary wildcards for unused
//! IPv4 header can be avoided in rule processing of SDN switches" (§3.4).

use crate::{NetError, Result};
use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use typhoon_tuple::tuple::TaskId;

/// The custom EtherType carried by every Typhoon transport packet.
pub const TYPHOON_ETHERTYPE: u16 = 0xffff;

/// Header length: two MACs + EtherType + reserved trace-id field.
///
/// The extra 8 bytes after the EtherType carry the `typhoon-trace` trace id
/// (0 = untraced) so switches and receiving workers can record spans
/// without parsing the tuple payload — the same "reserved header field"
/// trick the paper uses for the application-ID address prefix.
pub const HEADER_LEN: usize = 22;

/// A 48-bit Ethernet-style address encoding `app_id:task_id`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff` — one-to-many delivery.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The SDN controller's logical address (for worker→controller
    /// PacketIn traffic such as `METRIC_RESP` control tuples).
    pub const CONTROLLER: MacAddr = MacAddr([0xfe, 0xff, 0xff, 0xff, 0xff, 0xff]);

    /// Builds a worker address: the application ID is the 2-byte prefix and
    /// the task ID the 4-byte suffix (Fig. 5).
    pub fn worker(app: u16, task: TaskId) -> Self {
        let mut b = [0u8; 6];
        b[..2].copy_from_slice(&app.to_be_bytes());
        b[2..].copy_from_slice(&task.0.to_be_bytes());
        MacAddr(b)
    }

    /// The application-ID prefix.
    pub fn app(self) -> u16 {
        u16::from_be_bytes([self.0[0], self.0[1]])
    }

    /// The task-ID suffix (meaningless for broadcast/controller addresses).
    pub fn task(self) -> TaskId {
        TaskId(u32::from_be_bytes([
            self.0[2], self.0[3], self.0[4], self.0[5],
        ]))
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// True for the controller address.
    pub fn is_controller(self) -> bool {
        self == Self::CONTROLLER
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_broadcast() {
            return write!(f, "BROADCAST");
        }
        if self.is_controller() {
            return write!(f, "CONTROLLER");
        }
        write!(f, "{}:{}", self.app(), self.task())
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// One transport packet. The payload is [`Bytes`], so cloning a frame for
/// broadcast replication shares the buffer instead of copying it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Destination worker address (or broadcast/controller).
    pub dst: MacAddr,
    /// Source worker address.
    pub src: MacAddr,
    /// EtherType; always [`TYPHOON_ETHERTYPE`] for tuple traffic.
    pub ethertype: u16,
    /// End-to-end trace id riding in the reserved header field (0 =
    /// untraced; see `typhoon-trace`).
    pub trace: u64,
    /// Packet payload (packetized tuples; see [`crate::packetize`]).
    pub payload: Bytes,
}

impl Frame {
    /// A Typhoon-EtherType frame (untraced).
    pub fn typhoon(src: MacAddr, dst: MacAddr, payload: Bytes) -> Self {
        Frame {
            dst,
            src,
            ethertype: TYPHOON_ETHERTYPE,
            trace: 0,
            payload,
        }
    }

    /// Sets the trace id carried in the reserved header field (builder
    /// style).
    pub fn with_trace(mut self, trace: u64) -> Self {
        self.trace = trace;
        self
    }

    /// Total on-wire length.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Serializes the frame to contiguous bytes (for tunnels).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype);
        buf.put_u64(self.trace);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses a frame from contiguous bytes. The payload is a zero-copy
    /// slice of the input.
    pub fn decode(mut bytes: Bytes) -> Result<Frame> {
        if bytes.len() < HEADER_LEN {
            return Err(NetError::Malformed("frame shorter than header"));
        }
        let header = bytes.split_to(HEADER_LEN);
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&header[0..6]);
        src.copy_from_slice(&header[6..12]);
        let ethertype = u16::from_be_bytes([header[12], header[13]]);
        let trace = u64::from_be_bytes(header[14..22].try_into().expect("8-byte slice"));
        Ok(Frame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            trace,
            payload: bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_address_roundtrips_app_and_task() {
        let mac = MacAddr::worker(7, TaskId(123_456));
        assert_eq!(mac.app(), 7);
        assert_eq!(mac.task(), TaskId(123_456));
        assert!(!mac.is_broadcast());
    }

    #[test]
    fn broadcast_and_controller_are_distinct_and_recognized() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::CONTROLLER.is_controller());
        assert_ne!(MacAddr::BROADCAST, MacAddr::CONTROLLER);
    }

    #[test]
    fn frame_encode_decode_roundtrip() {
        let f = Frame::typhoon(
            MacAddr::worker(1, TaskId(2)),
            MacAddr::worker(1, TaskId(3)),
            Bytes::from_static(b"payload-bytes"),
        );
        let decoded = Frame::decode(f.encode()).unwrap();
        assert_eq!(decoded, f);
        assert_eq!(decoded.ethertype, TYPHOON_ETHERTYPE);
    }

    #[test]
    fn trace_id_roundtrips_through_the_header() {
        let f = Frame::typhoon(
            MacAddr::worker(1, TaskId(2)),
            MacAddr::worker(1, TaskId(3)),
            Bytes::from_static(b"x"),
        )
        .with_trace(0xdead_beef_cafe_f00d);
        let decoded = Frame::decode(f.encode()).unwrap();
        assert_eq!(decoded.trace, 0xdead_beef_cafe_f00d);
        assert_eq!(decoded, f);
        // Untraced frames carry a zero field.
        let plain = Frame::typhoon(MacAddr::BROADCAST, MacAddr::BROADCAST, Bytes::new());
        assert_eq!(Frame::decode(plain.encode()).unwrap().trace, 0);
    }

    #[test]
    fn short_frame_is_malformed() {
        assert_eq!(
            Frame::decode(Bytes::from_static(b"short")).unwrap_err(),
            NetError::Malformed("frame shorter than header")
        );
    }

    #[test]
    fn empty_payload_is_legal() {
        let f = Frame::typhoon(
            MacAddr::worker(0, TaskId(0)),
            MacAddr::BROADCAST,
            Bytes::new(),
        );
        let decoded = Frame::decode(f.encode()).unwrap();
        assert!(decoded.payload.is_empty());
        assert_eq!(decoded.wire_len(), HEADER_LEN);
    }

    #[test]
    fn clone_shares_payload_storage() {
        let payload = Bytes::from(vec![0u8; 1024]);
        let f = Frame::typhoon(MacAddr::BROADCAST, MacAddr::BROADCAST, payload.clone());
        let g = f.clone();
        // Same backing buffer pointer — replication without copy.
        assert_eq!(f.payload.as_ptr(), g.payload.as_ptr());
        assert_eq!(payload.as_ptr(), g.payload.as_ptr());
    }

    #[test]
    fn display_formats_as_hex() {
        let mac = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(mac.to_string(), "de:ad:be:ef:00:01");
        assert_eq!(format!("{:?}", MacAddr::BROADCAST), "BROADCAST");
    }
}
