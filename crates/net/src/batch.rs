//! Configurable batching for the worker I/O layer.
//!
//! "The I/O layer is designed to support a configurable amount of batching
//! when sending data tuples and packets … the batch size can be flexibly
//! configured based on the relative priority of latency and throughput on a
//! per-application basis" (§3.3.1). The batch size is additionally mutable
//! at runtime by a `BATCH_SIZE` control tuple (Table 2), hence the atomic.
//!
//! A batch flushes when it reaches the configured size **or** when its
//! oldest element exceeds `max_delay` — the timer bounds worst-case latency
//! at low rates so Figs. 8(c)/(d) have a well-defined tail.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A size-or-deadline batcher.
#[derive(Debug)]
pub struct Batcher<T> {
    items: Vec<T>,
    batch_size: Arc<AtomicUsize>,
    max_delay: Duration,
    oldest: Option<Instant>,
}

impl<T> Batcher<T> {
    /// A batcher flushing at `batch_size` items or `max_delay` age.
    pub fn new(batch_size: usize, max_delay: Duration) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Batcher {
            items: Vec::with_capacity(batch_size),
            batch_size: Arc::new(AtomicUsize::new(batch_size)),
            max_delay,
            oldest: None,
        }
    }

    /// A shareable handle that can retune the batch size at runtime (the
    /// `BATCH_SIZE` control-tuple hook).
    pub fn size_knob(&self) -> Arc<AtomicUsize> {
        self.batch_size.clone()
    }

    /// Currently configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size.load(Ordering::Relaxed)
    }

    /// Buffered item count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Adds an item; returns the full batch when the size threshold is hit.
    pub fn push(&mut self, item: T) -> Option<Vec<T>> {
        self.push_at(item, Instant::now())
    }

    /// [`Batcher::push`] with an explicit clock (deterministic tests).
    pub fn push_at(&mut self, item: T, now: Instant) -> Option<Vec<T>> {
        if self.items.is_empty() {
            self.oldest = Some(now);
        }
        self.items.push(item);
        if self.items.len() >= self.batch_size.load(Ordering::Relaxed) {
            self.take()
        } else {
            None
        }
    }

    /// Returns the batch if its oldest item is older than `max_delay`.
    pub fn poll_flush(&mut self) -> Option<Vec<T>> {
        self.poll_flush_at(Instant::now())
    }

    /// [`Batcher::poll_flush`] with an explicit clock.
    ///
    /// Also re-evaluates the size threshold: a `BATCH_SIZE` retune that
    /// *lowers* the knob can leave already-buffered items at or above the
    /// new size, and those must flush on the next poll rather than sit
    /// until another push or the `max_delay` timer fires.
    pub fn poll_flush_at(&mut self, now: Instant) -> Option<Vec<T>> {
        if self.items.len() >= self.batch_size.load(Ordering::Relaxed) && !self.items.is_empty() {
            return self.take();
        }
        match self.oldest {
            Some(t0) if now.saturating_duration_since(t0) >= self.max_delay => self.take(),
            _ => None,
        }
    }

    /// Unconditionally flushes whatever is buffered.
    pub fn take(&mut self) -> Option<Vec<T>> {
        self.oldest = None;
        if self.items.is_empty() {
            None
        } else {
            let cap = self.batch_size.load(Ordering::Relaxed);
            Some(std::mem::replace(&mut self.items, Vec::with_capacity(cap)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_exactly_at_batch_size() {
        let mut b = Batcher::new(3, Duration::from_secs(10));
        assert!(b.push(1).is_none());
        assert!(b.push(2).is_none());
        let batch = b.push(3).expect("full batch");
        assert_eq!(batch, vec![1, 2, 3]);
        assert!(b.is_empty());
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let t0 = Instant::now();
        let mut b = Batcher::new(100, Duration::from_millis(5));
        assert!(b.push_at(1, t0).is_none());
        assert!(b.poll_flush_at(t0 + Duration::from_millis(1)).is_none());
        let batch = b.poll_flush_at(t0 + Duration::from_millis(6)).unwrap();
        assert_eq!(batch, vec![1]);
        assert!(b.poll_flush_at(t0 + Duration::from_secs(1)).is_none());
    }

    #[test]
    fn deadline_resets_after_flush() {
        let t0 = Instant::now();
        let mut b = Batcher::new(100, Duration::from_millis(5));
        b.push_at(1, t0);
        let _ = b.poll_flush_at(t0 + Duration::from_millis(6)).unwrap();
        // A new item restarts the clock from its own arrival time.
        b.push_at(2, t0 + Duration::from_millis(7));
        assert!(b.poll_flush_at(t0 + Duration::from_millis(10)).is_none());
        assert!(b.poll_flush_at(t0 + Duration::from_millis(13)).is_some());
    }

    #[test]
    fn size_knob_retunes_at_runtime() {
        let mut b = Batcher::new(1000, Duration::from_secs(10));
        let knob = b.size_knob();
        b.push(1);
        knob.store(2, Ordering::Relaxed); // BATCH_SIZE control tuple arrives
        let batch = b.push(2).expect("new smaller threshold reached");
        assert_eq!(batch.len(), 2);
        assert_eq!(b.batch_size(), 2);
    }

    #[test]
    fn lowering_knob_flushes_buffered_items_on_poll() {
        let t0 = Instant::now();
        let mut b = Batcher::new(1000, Duration::from_secs(10));
        let knob = b.size_knob();
        for i in 0..5 {
            assert!(b.push_at(i, t0).is_none());
        }
        // BATCH_SIZE lowered below what is already buffered: the batch must
        // flush on the next poll, not wait for another push or the timer.
        knob.store(3, Ordering::Relaxed);
        let batch = b
            .poll_flush_at(t0 + Duration::from_millis(1))
            .expect("retune flush");
        assert_eq!(batch, vec![0, 1, 2, 3, 4]);
        assert!(b.is_empty());
        // The deadline clock must have been reset by that flush too.
        assert!(b.poll_flush_at(t0 + Duration::from_secs(60)).is_none());
    }

    #[test]
    fn take_on_empty_is_none() {
        let mut b = Batcher::<u8>::new(4, Duration::from_secs(1));
        assert!(b.take().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_rejected() {
        let _ = Batcher::<u8>::new(0, Duration::from_secs(1));
    }
}
