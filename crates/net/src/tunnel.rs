//! Host-level tunnels carrying frames between compute hosts.
//!
//! "Typhoon leverages host-level TCP tunnels which interconnect different
//! compute hosts … used to reliably carry data tuples exchanged across
//! hosts over the network, and to hide Typhoon's custom transport protocol
//! format from the underlying physical network" (§3.3.1).
//!
//! Two implementations sit behind the [`Tunnel`] trait:
//!
//! * [`TcpTunnel`] — a real TCP connection (loopback in experiments) with
//!   4-byte length-prefixed framing and a background reader thread. This is
//!   the REMOTE configuration of Fig. 8.
//! * [`InMemoryTunnel`] — a channel-backed pipe with identical semantics,
//!   used for deterministic tests and as a faster LOCAL-style transport.

use crate::frame::Frame;
use crate::{NetError, Result, TeardownCause};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;
use typhoon_diag::{rank, DiagMutex as Mutex};

/// Upper bound on a tunnelled frame, to stop a corrupt length prefix from
/// allocating gigabytes.
const MAX_TUNNEL_FRAME: usize = 64 * 1024 * 1024;

/// TCP tunnel tunables.
#[derive(Debug, Clone, Copy)]
pub struct TunnelConfig {
    /// Upper bound on one blocking socket write. A stalled peer (zero
    /// window, dead NIC) must not block `send` forever while the sender
    /// holds the writer mutex; when the timeout fires the tunnel is
    /// poisoned with [`TeardownCause::WriteTimeout`] and fails fast.
    ///
    /// The default is generous on purpose: the timeout guards against a
    /// peer that *stopped reading*, not against transient backpressure or
    /// scheduler starvation on a loaded box — a false positive here tears
    /// a healthy tunnel down. Deployments wanting faster stall detection
    /// lower it explicitly (see `TyphoonConfig::tunnel_write_timeout`).
    pub write_timeout: Duration,
}

impl Default for TunnelConfig {
    fn default() -> Self {
        TunnelConfig {
            write_timeout: Duration::from_secs(30),
        }
    }
}

/// `net.tunnel.*` counters for one tunnel endpoint: traffic totals plus
/// one teardown counter per [`TeardownCause`], so operators can tell a
/// clean peer close from corruption, I/O failure or a write stall.
#[derive(Debug, Default)]
pub struct TunnelStats {
    /// Frames successfully written (`net.tunnel.sent`).
    pub sent: AtomicU64,
    /// Frames decoded off the wire (`net.tunnel.received`).
    pub received: AtomicU64,
    /// Sends refused because the tunnel was already broken
    /// (`net.tunnel.rejected_sends`).
    pub rejected_sends: AtomicU64,
    /// Teardowns: peer closed cleanly (`net.tunnel.teardown.peer_closed`).
    pub teardown_peer_closed: AtomicU64,
    /// Teardowns: oversized length prefix
    /// (`net.tunnel.teardown.corrupt_len`).
    pub teardown_corrupt_len: AtomicU64,
    /// Teardowns: frame decode failure
    /// (`net.tunnel.teardown.decode_error`).
    pub teardown_decode_error: AtomicU64,
    /// Teardowns: socket I/O error (`net.tunnel.teardown.io_error`).
    pub teardown_io_error: AtomicU64,
    /// Teardowns: write timeout (`net.tunnel.teardown.write_timeout`).
    pub teardown_write_timeout: AtomicU64,
}

impl TunnelStats {
    fn record_teardown(&self, cause: TeardownCause) {
        let cell = match cause {
            TeardownCause::PeerClosed => &self.teardown_peer_closed,
            TeardownCause::CorruptLength => &self.teardown_corrupt_len,
            TeardownCause::DecodeError => &self.teardown_decode_error,
            TeardownCause::Io => &self.teardown_io_error,
            TeardownCause::WriteTimeout => &self.teardown_write_timeout,
            // Partitions are injected above the TCP layer and counted by
            // the injector's own `chaos.*` stats.
            TeardownCause::Partitioned => return,
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as `(metric name, value)` pairs under the `net.tunnel.*`
    /// namespace (see docs/OBSERVABILITY.md).
    pub fn named(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("net.tunnel.sent", self.sent.load(Ordering::Relaxed)),
            ("net.tunnel.received", self.received.load(Ordering::Relaxed)),
            (
                "net.tunnel.rejected_sends",
                self.rejected_sends.load(Ordering::Relaxed),
            ),
            (
                "net.tunnel.teardown.peer_closed",
                self.teardown_peer_closed.load(Ordering::Relaxed),
            ),
            (
                "net.tunnel.teardown.corrupt_len",
                self.teardown_corrupt_len.load(Ordering::Relaxed),
            ),
            (
                "net.tunnel.teardown.decode_error",
                self.teardown_decode_error.load(Ordering::Relaxed),
            ),
            (
                "net.tunnel.teardown.io_error",
                self.teardown_io_error.load(Ordering::Relaxed),
            ),
            (
                "net.tunnel.teardown.write_timeout",
                self.teardown_write_timeout.load(Ordering::Relaxed),
            ),
        ]
    }
}

/// The poisoned ("broken") state of a tunnel. The first fault wins; its
/// cause is echoed by every later operation.
#[derive(Debug, Default)]
struct BrokenFlag {
    // 0 = healthy, otherwise 1 + TeardownCause discriminant.
    cause: AtomicU8,
}

impl BrokenFlag {
    fn encode(cause: TeardownCause) -> u8 {
        match cause {
            TeardownCause::PeerClosed => 1,
            TeardownCause::CorruptLength => 2,
            TeardownCause::DecodeError => 3,
            TeardownCause::Io => 4,
            TeardownCause::WriteTimeout => 5,
            TeardownCause::Partitioned => 6,
        }
    }

    fn decode(v: u8) -> Option<TeardownCause> {
        match v {
            1 => Some(TeardownCause::PeerClosed),
            2 => Some(TeardownCause::CorruptLength),
            3 => Some(TeardownCause::DecodeError),
            4 => Some(TeardownCause::Io),
            5 => Some(TeardownCause::WriteTimeout),
            6 => Some(TeardownCause::Partitioned),
            _ => None,
        }
    }

    /// Records `cause` if the tunnel was healthy; returns whether this
    /// call was the one that poisoned it.
    fn poison(&self, cause: TeardownCause) -> bool {
        self.cause
            .compare_exchange(0, Self::encode(cause), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    fn get(&self) -> Option<TeardownCause> {
        Self::decode(self.cause.load(Ordering::Acquire))
    }
}

/// State shared between the send path, the reader thread and `Drop`.
#[derive(Debug, Default)]
struct TunnelShared {
    broken: BrokenFlag,
    stats: TunnelStats,
}

impl TunnelShared {
    fn teardown(&self, cause: TeardownCause) {
        if self.broken.poison(cause) {
            self.stats.record_teardown(cause);
        }
    }
}

/// A reliable, ordered, bidirectional frame pipe between two hosts.
pub trait Tunnel: Send {
    /// Sends one frame to the peer host.
    fn send(&self, frame: &Frame) -> Result<()>;

    /// Receives one frame if available; `Ok(None)` when none is pending.
    fn try_recv(&self) -> Result<Option<Frame>>;

    /// Drains up to `max` pending frames into `out`; returns the count.
    fn recv_batch(&self, out: &mut Vec<Frame>, max: usize) -> Result<usize> {
        let mut n = 0;
        while n < max {
            match self.try_recv()? {
                Some(f) => {
                    out.push(f);
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }
}

// ------------------------------------------------------------- in-memory

/// One endpoint of an in-memory tunnel.
#[derive(Debug)]
pub struct InMemoryTunnel {
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
}

impl InMemoryTunnel {
    /// Creates a connected endpoint pair.
    pub fn pair() -> (InMemoryTunnel, InMemoryTunnel) {
        let (a_tx, a_rx) = unbounded(); // LINT: allow-unbounded(in-memory tunnel mirrors TCP socket buffering; rings bound in-flight tuples upstream)
        let (b_tx, b_rx) = unbounded(); // LINT: allow-unbounded(in-memory tunnel mirrors TCP socket buffering; rings bound in-flight tuples upstream)
        (
            InMemoryTunnel { tx: a_tx, rx: b_rx },
            InMemoryTunnel { tx: b_tx, rx: a_rx },
        )
    }
}

impl Tunnel for InMemoryTunnel {
    fn send(&self, frame: &Frame) -> Result<()> {
        self.tx
            .send(frame.clone())
            .map_err(|_| NetError::Disconnected)
    }

    fn try_recv(&self) -> Result<Option<Frame>> {
        match self.rx.try_recv() {
            Ok(f) => Ok(Some(f)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

// ------------------------------------------------------------------ TCP

/// One endpoint of a TCP tunnel. Writes are length-prefixed and mutex-
/// serialized; reads happen on a background thread that decodes frames and
/// queues them for [`Tunnel::try_recv`].
///
/// Fail-fast discipline: any write error (including a partial write that
/// left the stream misframed), write timeout, oversized length prefix or
/// decode error poisons the tunnel. A poisoned tunnel refuses every
/// further `send` with [`NetError::Broken`] immediately and `try_recv`
/// fails the same way once buffered frames are drained — it never
/// misframes and never hangs.
pub struct TcpTunnel {
    writer: Arc<Mutex<TcpStream>>,
    rx: Receiver<Frame>,
    shared: Arc<TunnelShared>,
}

impl TcpTunnel {
    /// Wraps an established stream with default [`TunnelConfig`].
    pub fn from_stream(stream: TcpStream) -> Result<Self> {
        Self::from_stream_with(stream, TunnelConfig::default())
    }

    /// Wraps an established stream.
    pub fn from_stream_with(stream: TcpStream, config: TunnelConfig) -> Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(config.write_timeout))?;
        let reader_stream = stream.try_clone()?;
        let (tx, rx) = unbounded(); // LINT: allow-unbounded(reader thread decouples socket reads; rings bound in-flight tuples upstream)
        let shared = Arc::new(TunnelShared::default());
        let reader_shared = shared.clone();
        std::thread::Builder::new()
            .name("tcp-tunnel-reader".into())
            .spawn(move || Self::reader_loop(reader_stream, tx, reader_shared))
            .map_err(NetError::Io)?;
        Ok(TcpTunnel {
            writer: Arc::new(Mutex::with_rank(rank::TUNNEL, "net.tunnel.writer", stream)),
            rx,
            shared,
        })
    }

    /// Creates a connected loopback pair (convenience for tests/benches).
    pub fn pair() -> Result<(TcpTunnel, TcpTunnel)> {
        Self::pair_with(TunnelConfig::default())
    }

    /// Creates a connected loopback pair with explicit tunables.
    pub fn pair_with(config: TunnelConfig) -> Result<(TcpTunnel, TcpTunnel)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let client = TcpStream::connect(addr)?;
        let (server, _) = listener.accept()?;
        Ok((
            Self::from_stream_with(client, config)?,
            Self::from_stream_with(server, config)?,
        ))
    }

    /// Connects to a peer host's tunnel listener.
    pub fn connect(addr: std::net::SocketAddr) -> Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// This endpoint's `net.tunnel.*` counters.
    pub fn stats(&self) -> &TunnelStats {
        &self.shared.stats
    }

    /// The cause that poisoned this tunnel, if any.
    pub fn broken_cause(&self) -> Option<TeardownCause> {
        self.shared.broken.get()
    }

    fn reader_loop(mut stream: TcpStream, tx: Sender<Frame>, shared: Arc<TunnelShared>) {
        let mut len_buf = [0u8; 4];
        loop {
            if let Err(e) = stream.read_exact(&mut len_buf) {
                shared.teardown(read_error_cause(&e));
                return;
            }
            let len = u32::from_be_bytes(len_buf) as usize;
            if len > MAX_TUNNEL_FRAME {
                // Corrupt/misframed stream: poison, and shut the socket
                // down so the peer fails fast too instead of writing into
                // a stream nobody is framing correctly anymore.
                shared.teardown(TeardownCause::CorruptLength);
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
            let mut body = vec![0u8; len];
            if let Err(e) = stream.read_exact(&mut body) {
                shared.teardown(read_error_cause(&e));
                return;
            }
            match Frame::decode(Bytes::from(body)) {
                Ok(frame) => {
                    shared.stats.received.fetch_add(1, Ordering::Relaxed);
                    if tx.send(frame).is_err() {
                        return; // our own endpoint dropped; not a fault
                    }
                }
                Err(_) => {
                    shared.teardown(TeardownCause::DecodeError);
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
        }
    }

    /// Maps the poisoned state to the error `try_recv`/`send` surface.
    /// A clean peer close keeps the legacy `Disconnected` shape; every
    /// other cause is a typed `Broken`.
    fn broken_error(cause: TeardownCause) -> NetError {
        match cause {
            TeardownCause::PeerClosed => NetError::Disconnected,
            other => NetError::Broken(other),
        }
    }
}

fn read_error_cause(e: &std::io::Error) -> TeardownCause {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        TeardownCause::PeerClosed
    } else {
        TeardownCause::Io
    }
}

impl Tunnel for TcpTunnel {
    fn send(&self, frame: &Frame) -> Result<()> {
        if let Some(cause) = self.shared.broken.get() {
            self.shared
                .stats
                .rejected_sends
                .fetch_add(1, Ordering::Relaxed);
            return Err(Self::broken_error(cause));
        }
        let encoded = frame.encode();
        let mut w = self.writer.lock();
        // Re-check under the lock: a concurrent sender may have poisoned
        // the tunnel while we waited (its partial write already misframed
        // the stream, so ours must not go out).
        if let Some(cause) = self.shared.broken.get() {
            self.shared
                .stats
                .rejected_sends
                .fetch_add(1, Ordering::Relaxed);
            return Err(Self::broken_error(cause));
        }
        let result = w
            .write_all(&(encoded.len() as u32).to_be_bytes())
            .and_then(|()| w.write_all(&encoded));
        match result {
            Ok(()) => {
                self.shared.stats.sent.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                // The prefix (or part of the body) may already be on the
                // wire: the stream is misframed for good. Poison and shut
                // the socket down so both sides fail fast.
                let cause = match e.kind() {
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                        TeardownCause::WriteTimeout
                    }
                    _ => TeardownCause::Io,
                };
                self.shared.teardown(cause);
                let _ = w.shutdown(std::net::Shutdown::Both);
                Err(NetError::Broken(cause))
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Frame>> {
        // Buffered frames stay deliverable after any teardown; the typed
        // error only surfaces once the queue is drained.
        match self.rx.try_recv() {
            Ok(f) => Ok(Some(f)),
            Err(TryRecvError::Empty) => match self.shared.broken.get() {
                None => Ok(None),
                Some(cause) => Err(Self::broken_error(cause)),
            },
            Err(TryRecvError::Disconnected) => match self.shared.broken.get() {
                None | Some(TeardownCause::PeerClosed) => Err(NetError::Disconnected),
                Some(cause) => Err(Self::broken_error(cause)),
            },
        }
    }
}

impl Drop for TcpTunnel {
    fn drop(&mut self) {
        // Shut the socket down so the peer's reader sees EOF promptly and
        // our own reader thread unblocks and exits.
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
    }
}

impl std::fmt::Debug for TcpTunnel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TcpTunnel(pending={})", self.rx.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MacAddr;
    use std::time::{Duration, Instant};
    use typhoon_tuple::tuple::TaskId;

    fn frame(n: u8, len: usize) -> Frame {
        Frame::typhoon(
            MacAddr::worker(1, TaskId(n as u32)),
            MacAddr::worker(1, TaskId(100)),
            Bytes::from(vec![n; len]),
        )
    }

    fn recv_blocking(t: &dyn Tunnel) -> Frame {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(f) = t.try_recv().unwrap() {
                return f;
            }
            assert!(Instant::now() < deadline, "timed out waiting for frame");
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    #[test]
    fn in_memory_roundtrip_both_directions() {
        let (a, b) = InMemoryTunnel::pair();
        a.send(&frame(1, 10)).unwrap();
        b.send(&frame(2, 10)).unwrap();
        assert_eq!(recv_blocking(&b).payload[0], 1);
        assert_eq!(recv_blocking(&a).payload[0], 2);
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn in_memory_disconnect_detected() {
        let (a, b) = InMemoryTunnel::pair();
        drop(b);
        assert_eq!(a.try_recv().unwrap_err(), NetError::Disconnected);
        assert_eq!(a.send(&frame(0, 1)).unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn tcp_roundtrip_preserves_order_and_content() {
        let (a, b) = TcpTunnel::pair().unwrap();
        for i in 0..50u8 {
            a.send(&frame(i, 100 + i as usize)).unwrap();
        }
        for i in 0..50u8 {
            let f = recv_blocking(&b);
            assert_eq!(f.payload.len(), 100 + i as usize);
            assert_eq!(f.payload[0], i);
            assert_eq!(f.src.task(), TaskId(i as u32));
        }
    }

    #[test]
    fn tcp_large_frame_roundtrip() {
        let (a, b) = TcpTunnel::pair().unwrap();
        let big = frame(9, 1 << 20); // 1 MiB
        a.send(&big).unwrap();
        let got = recv_blocking(&b);
        assert_eq!(got.payload.len(), 1 << 20);
        assert_eq!(got, big);
    }

    #[test]
    fn tcp_recv_batch_drains_pending() {
        let (a, b) = TcpTunnel::pair().unwrap();
        for i in 0..10u8 {
            a.send(&frame(i, 8)).unwrap();
        }
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while out.len() < 10 && Instant::now() < deadline {
            b.recv_batch(&mut out, 64).unwrap();
            std::thread::sleep(Duration::from_micros(50));
        }
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn tcp_peer_close_disconnects_receiver() {
        let (a, b) = TcpTunnel::pair().unwrap();
        drop(a);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match b.try_recv() {
                Err(NetError::Disconnected) => break,
                Ok(None) => {
                    assert!(Instant::now() < deadline, "never saw disconnect");
                    std::thread::sleep(Duration::from_millis(1));
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn tunnels_are_usable_through_the_trait_object() {
        let (a, b) = InMemoryTunnel::pair();
        let tunnels: Vec<Box<dyn Tunnel>> = vec![Box::new(a), Box::new(b)];
        tunnels[0].send(&frame(5, 5)).unwrap();
        assert_eq!(recv_blocking(tunnels[1].as_ref()).payload[0], 5);
    }
}
