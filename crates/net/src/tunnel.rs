//! Host-level tunnels carrying frames between compute hosts.
//!
//! "Typhoon leverages host-level TCP tunnels which interconnect different
//! compute hosts … used to reliably carry data tuples exchanged across
//! hosts over the network, and to hide Typhoon's custom transport protocol
//! format from the underlying physical network" (§3.3.1).
//!
//! Two implementations sit behind the [`Tunnel`] trait:
//!
//! * [`TcpTunnel`] — a real TCP connection (loopback in experiments) with
//!   4-byte length-prefixed framing and a background reader thread. This is
//!   the REMOTE configuration of Fig. 8.
//! * [`InMemoryTunnel`] — a channel-backed pipe with identical semantics,
//!   used for deterministic tests and as a faster LOCAL-style transport.

use crate::frame::Frame;
use crate::{NetError, Result};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use typhoon_diag::{rank, DiagMutex as Mutex};

/// Upper bound on a tunnelled frame, to stop a corrupt length prefix from
/// allocating gigabytes.
const MAX_TUNNEL_FRAME: usize = 64 * 1024 * 1024;

/// A reliable, ordered, bidirectional frame pipe between two hosts.
pub trait Tunnel: Send {
    /// Sends one frame to the peer host.
    fn send(&self, frame: &Frame) -> Result<()>;

    /// Receives one frame if available; `Ok(None)` when none is pending.
    fn try_recv(&self) -> Result<Option<Frame>>;

    /// Drains up to `max` pending frames into `out`; returns the count.
    fn recv_batch(&self, out: &mut Vec<Frame>, max: usize) -> Result<usize> {
        let mut n = 0;
        while n < max {
            match self.try_recv()? {
                Some(f) => {
                    out.push(f);
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }
}

// ------------------------------------------------------------- in-memory

/// One endpoint of an in-memory tunnel.
#[derive(Debug)]
pub struct InMemoryTunnel {
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
}

impl InMemoryTunnel {
    /// Creates a connected endpoint pair.
    pub fn pair() -> (InMemoryTunnel, InMemoryTunnel) {
        let (a_tx, a_rx) = unbounded(); // LINT: allow-unbounded(in-memory tunnel mirrors TCP socket buffering; rings bound in-flight tuples upstream)
        let (b_tx, b_rx) = unbounded(); // LINT: allow-unbounded(in-memory tunnel mirrors TCP socket buffering; rings bound in-flight tuples upstream)
        (
            InMemoryTunnel { tx: a_tx, rx: b_rx },
            InMemoryTunnel { tx: b_tx, rx: a_rx },
        )
    }
}

impl Tunnel for InMemoryTunnel {
    fn send(&self, frame: &Frame) -> Result<()> {
        self.tx
            .send(frame.clone())
            .map_err(|_| NetError::Disconnected)
    }

    fn try_recv(&self) -> Result<Option<Frame>> {
        match self.rx.try_recv() {
            Ok(f) => Ok(Some(f)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

// ------------------------------------------------------------------ TCP

/// One endpoint of a TCP tunnel. Writes are length-prefixed and mutex-
/// serialized; reads happen on a background thread that decodes frames and
/// queues them for [`Tunnel::try_recv`].
pub struct TcpTunnel {
    writer: Arc<Mutex<TcpStream>>,
    rx: Receiver<Frame>,
}

impl TcpTunnel {
    /// Wraps an established stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self> {
        stream.set_nodelay(true)?;
        let reader_stream = stream.try_clone()?;
        let (tx, rx) = unbounded(); // LINT: allow-unbounded(reader thread decouples socket reads; rings bound in-flight tuples upstream)
        std::thread::Builder::new()
            .name("tcp-tunnel-reader".into())
            .spawn(move || Self::reader_loop(reader_stream, tx))
            .expect("spawn tunnel reader");
        Ok(TcpTunnel {
            writer: Arc::new(Mutex::with_rank(rank::TUNNEL, "net.tunnel.writer", stream)),
            rx,
        })
    }

    /// Creates a connected loopback pair (convenience for tests/benches).
    pub fn pair() -> Result<(TcpTunnel, TcpTunnel)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let client = TcpStream::connect(addr)?;
        let (server, _) = listener.accept()?;
        Ok((Self::from_stream(client)?, Self::from_stream(server)?))
    }

    /// Connects to a peer host's tunnel listener.
    pub fn connect(addr: std::net::SocketAddr) -> Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    fn reader_loop(mut stream: TcpStream, tx: Sender<Frame>) {
        let mut len_buf = [0u8; 4];
        loop {
            if stream.read_exact(&mut len_buf).is_err() {
                return; // peer closed; receiver sees Disconnected
            }
            let len = u32::from_be_bytes(len_buf) as usize;
            if len > MAX_TUNNEL_FRAME {
                return; // corrupt stream; tear the tunnel down
            }
            let mut body = vec![0u8; len];
            if stream.read_exact(&mut body).is_err() {
                return;
            }
            match Frame::decode(Bytes::from(body)) {
                Ok(frame) => {
                    if tx.send(frame).is_err() {
                        return; // endpoint dropped
                    }
                }
                Err(_) => return,
            }
        }
    }
}

impl Tunnel for TcpTunnel {
    fn send(&self, frame: &Frame) -> Result<()> {
        let encoded = frame.encode();
        let mut w = self.writer.lock();
        w.write_all(&(encoded.len() as u32).to_be_bytes())?;
        w.write_all(&encoded)?;
        Ok(())
    }

    fn try_recv(&self) -> Result<Option<Frame>> {
        match self.rx.try_recv() {
            Ok(f) => Ok(Some(f)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

impl Drop for TcpTunnel {
    fn drop(&mut self) {
        // Shut the socket down so the peer's reader sees EOF promptly and
        // our own reader thread unblocks and exits.
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
    }
}

impl std::fmt::Debug for TcpTunnel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TcpTunnel(pending={})", self.rx.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MacAddr;
    use std::time::{Duration, Instant};
    use typhoon_tuple::tuple::TaskId;

    fn frame(n: u8, len: usize) -> Frame {
        Frame::typhoon(
            MacAddr::worker(1, TaskId(n as u32)),
            MacAddr::worker(1, TaskId(100)),
            Bytes::from(vec![n; len]),
        )
    }

    fn recv_blocking(t: &dyn Tunnel) -> Frame {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(f) = t.try_recv().unwrap() {
                return f;
            }
            assert!(Instant::now() < deadline, "timed out waiting for frame");
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    #[test]
    fn in_memory_roundtrip_both_directions() {
        let (a, b) = InMemoryTunnel::pair();
        a.send(&frame(1, 10)).unwrap();
        b.send(&frame(2, 10)).unwrap();
        assert_eq!(recv_blocking(&b).payload[0], 1);
        assert_eq!(recv_blocking(&a).payload[0], 2);
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn in_memory_disconnect_detected() {
        let (a, b) = InMemoryTunnel::pair();
        drop(b);
        assert_eq!(a.try_recv().unwrap_err(), NetError::Disconnected);
        assert_eq!(a.send(&frame(0, 1)).unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn tcp_roundtrip_preserves_order_and_content() {
        let (a, b) = TcpTunnel::pair().unwrap();
        for i in 0..50u8 {
            a.send(&frame(i, 100 + i as usize)).unwrap();
        }
        for i in 0..50u8 {
            let f = recv_blocking(&b);
            assert_eq!(f.payload.len(), 100 + i as usize);
            assert_eq!(f.payload[0], i);
            assert_eq!(f.src.task(), TaskId(i as u32));
        }
    }

    #[test]
    fn tcp_large_frame_roundtrip() {
        let (a, b) = TcpTunnel::pair().unwrap();
        let big = frame(9, 1 << 20); // 1 MiB
        a.send(&big).unwrap();
        let got = recv_blocking(&b);
        assert_eq!(got.payload.len(), 1 << 20);
        assert_eq!(got, big);
    }

    #[test]
    fn tcp_recv_batch_drains_pending() {
        let (a, b) = TcpTunnel::pair().unwrap();
        for i in 0..10u8 {
            a.send(&frame(i, 8)).unwrap();
        }
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while out.len() < 10 && Instant::now() < deadline {
            b.recv_batch(&mut out, 64).unwrap();
            std::thread::sleep(Duration::from_micros(50));
        }
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn tcp_peer_close_disconnects_receiver() {
        let (a, b) = TcpTunnel::pair().unwrap();
        drop(a);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match b.try_recv() {
                Err(NetError::Disconnected) => break,
                Ok(None) => {
                    assert!(Instant::now() < deadline, "never saw disconnect");
                    std::thread::sleep(Duration::from_millis(1));
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn tunnels_are_usable_through_the_trait_object() {
        let (a, b) = InMemoryTunnel::pair();
        let tunnels: Vec<Box<dyn Tunnel>> = vec![Box::new(a), Box::new(b)];
        tunnels[0].send(&frame(5, 5)).unwrap();
        assert_eq!(recv_blocking(tunnels[1].as_ref()).payload[0], 5);
    }
}
