//! Deterministic fault injection for tunnels — the chaos layer.
//!
//! The paper's headline robustness claim (Fig. 10: recovery within ~1 s of
//! a worker fault) is only credible if the transport underneath survives
//! *induced* faults, not just the one scripted crash. Karimov et al.
//! (*Benchmarking Distributed Stream Data Processing Systems*) make the
//! same point for throughput: sustainable numbers require measurement
//! under backpressure and failure. [`FaultInjector`] wraps any
//! [`Tunnel`] and perturbs traffic according to a seeded, deterministic
//! [`FaultPlan`]: per-direction drop / delay / duplicate / corrupt-bytes /
//! stall / hard-partition, switchable at runtime through a [`ChaosHandle`]
//! so faults can start and stop mid-run.
//!
//! Injected faults are counted under the `chaos.*` namespace (see
//! docs/OBSERVABILITY.md) and the same seed always produces the same
//! fault sequence for a given call sequence, so failing chaos runs replay
//! deterministically.

use crate::frame::Frame;
use crate::tunnel::Tunnel;
use crate::{NetError, Result, TeardownCause};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_diag::{rank, DiagMutex as Mutex};

/// One direction's fault configuration. All probabilities are in `0..=1`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame's payload bytes are corrupted in flight.
    pub corrupt: f64,
    /// Added per-frame latency (applies to every frame when set).
    pub delay: Option<Duration>,
    /// Hold every frame back (neither delivered nor dropped) until the
    /// spec is switched off — a live-lock style stall.
    pub stall: bool,
    /// Hard partition: every operation fails fast with
    /// [`NetError::Broken`]`(`[`TeardownCause::Partitioned`]`)`.
    pub partition: bool,
}

impl FaultSpec {
    /// No faults.
    pub const CLEAN: FaultSpec = FaultSpec {
        drop: 0.0,
        duplicate: 0.0,
        corrupt: 0.0,
        delay: None,
        stall: false,
        partition: false,
    };

    /// Builder: drop frames with probability `p`.
    pub fn dropping(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Builder: duplicate frames with probability `p`.
    pub fn duplicating(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Builder: corrupt frame payloads with probability `p`.
    pub fn corrupting(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Builder: delay every frame by `d`.
    pub fn delaying(mut self, d: Duration) -> Self {
        self.delay = Some(d);
        self
    }

    /// Builder: stall (hold back) every frame.
    pub fn stalled(mut self) -> Self {
        self.stall = true;
        self
    }

    /// Builder: hard-partition the direction.
    pub fn partitioned(mut self) -> Self {
        self.partition = true;
        self
    }
}

/// What a process-level kill fault takes down (§4's crash experiments):
/// one worker thread, or a whole simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillClass {
    /// Kill one worker thread (`kill -9` on a single worker process).
    Worker,
    /// Kill every worker on one host and mark the host dead for
    /// placement. The host's switch stays up as SDN substrate — that is
    /// what lets port-status detection outrun heartbeats (Fig. 10).
    Host,
    /// Kill one controller replica (the leader when one exists). The
    /// data plane must keep forwarding headless on installed rules while
    /// the surviving replicas elect a new leader and re-sync.
    Controller,
}

/// A seeded, one-shot process-kill fault. Unlike the per-frame tunnel
/// faults, kills are executed by the cluster runtime (which owns the
/// agents); the chaos layer carries the spec so one seed reproduces the
/// whole fault sequence, kills included. Victim selection derives from
/// the plan seed, so a fixed `CHAOS_SEED` replays the same kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// What dies.
    pub class: KillClass,
    /// How long after topology submission the kill fires.
    pub after: Duration,
}

impl KillSpec {
    /// Kill one seeded-choice worker `after` the topology starts.
    pub fn worker(after: Duration) -> Self {
        KillSpec {
            class: KillClass::Worker,
            after,
        }
    }

    /// Kill one seeded-choice host `after` the topology starts.
    pub fn host(after: Duration) -> Self {
        KillSpec {
            class: KillClass::Host,
            after,
        }
    }

    /// Kill one controller replica `after` the topology starts (the
    /// leader when one exists; otherwise a seeded choice of replica).
    pub fn controller(after: Duration) -> Self {
        KillSpec {
            class: KillClass::Controller,
            after,
        }
    }
}

/// A seeded, per-direction fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// PRNG seed: identical seeds + identical call sequences reproduce
    /// identical fault sequences.
    pub seed: u64,
    /// Faults applied to outbound frames (`send`).
    pub tx: FaultSpec,
    /// Faults applied to inbound frames (`try_recv`).
    pub rx: FaultSpec,
    /// Optional one-shot process kill (executed by the cluster runtime).
    pub kill: Option<KillSpec>,
}

impl FaultPlan {
    /// A fault-free plan (useful as a baseline that can be switched to a
    /// faulty spec mid-run).
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            seed,
            tx: FaultSpec::CLEAN,
            rx: FaultSpec::CLEAN,
            kill: None,
        }
    }

    /// The same spec in both directions.
    pub fn symmetric(seed: u64, spec: FaultSpec) -> Self {
        FaultPlan {
            seed,
            tx: spec,
            rx: spec,
            kill: None,
        }
    }

    /// Faults on the send direction only.
    pub fn tx_only(seed: u64, spec: FaultSpec) -> Self {
        FaultPlan {
            seed,
            tx: spec,
            rx: FaultSpec::CLEAN,
            kill: None,
        }
    }

    /// Faults on the receive direction only.
    pub fn rx_only(seed: u64, spec: FaultSpec) -> Self {
        FaultPlan {
            seed,
            tx: FaultSpec::CLEAN,
            rx: spec,
            kill: None,
        }
    }

    /// Builder: arm a one-shot process kill.
    pub fn with_kill(mut self, kill: KillSpec) -> Self {
        self.kill = Some(kill);
        self
    }
}

/// `chaos.*` counters: what the injector actually did.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Frames forwarded unmodified (`chaos.forwarded`).
    pub forwarded: AtomicU64,
    /// Frames silently dropped (`chaos.dropped`).
    pub dropped: AtomicU64,
    /// Extra copies delivered (`chaos.duplicated`).
    pub duplicated: AtomicU64,
    /// Frames with corrupted payloads (`chaos.corrupted`).
    pub corrupted: AtomicU64,
    /// Frames held for added latency (`chaos.delayed`).
    pub delayed: AtomicU64,
    /// Frames held by an active stall (`chaos.stalled`).
    pub stalled: AtomicU64,
    /// Operations refused by a hard partition (`chaos.partitioned`).
    pub partitioned: AtomicU64,
    /// Worker threads killed by the chaos runtime (`chaos.killed_workers`).
    pub killed_workers: AtomicU64,
    /// Hosts killed by the chaos runtime (`chaos.killed_hosts`).
    pub killed_hosts: AtomicU64,
    /// Controller replicas killed by the chaos runtime
    /// (`chaos.killed_controllers`).
    pub killed_controllers: AtomicU64,
}

impl ChaosStats {
    /// Snapshot as `(metric name, value)` pairs under the `chaos.*`
    /// namespace.
    pub fn named(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("chaos.forwarded", self.forwarded.load(Ordering::Relaxed)),
            ("chaos.dropped", self.dropped.load(Ordering::Relaxed)),
            ("chaos.duplicated", self.duplicated.load(Ordering::Relaxed)),
            ("chaos.corrupted", self.corrupted.load(Ordering::Relaxed)),
            ("chaos.delayed", self.delayed.load(Ordering::Relaxed)),
            ("chaos.stalled", self.stalled.load(Ordering::Relaxed)),
            (
                "chaos.partitioned",
                self.partitioned.load(Ordering::Relaxed),
            ),
            (
                "chaos.killed_workers",
                self.killed_workers.load(Ordering::Relaxed),
            ),
            (
                "chaos.killed_hosts",
                self.killed_hosts.load(Ordering::Relaxed),
            ),
            (
                "chaos.killed_controllers",
                self.killed_controllers.load(Ordering::Relaxed),
            ),
        ]
    }

    /// Records an executed kill under the matching counter.
    pub fn record_kill(&self, class: KillClass) {
        match class {
            KillClass::Worker => self.killed_workers.fetch_add(1, Ordering::Relaxed),
            KillClass::Host => self.killed_hosts.fetch_add(1, Ordering::Relaxed),
            KillClass::Controller => self.killed_controllers.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// A frame held back by a delay or stall. `due == None` means "until the
/// stall is switched off".
struct HeldFrame {
    due: Option<Instant>,
    frame: Frame,
}

struct ChaosState {
    plan: FaultPlan,
    rng: SmallRng,
    tx_held: VecDeque<HeldFrame>,
    rx_held: VecDeque<HeldFrame>,
}

struct ChaosShared {
    state: Mutex<ChaosState>,
    stats: ChaosStats,
}

/// Runtime control over a [`FaultInjector`]: switch the plan, heal the
/// link, read the injected-fault counters. Cheap to clone.
#[derive(Clone)]
pub struct ChaosHandle {
    shared: Arc<ChaosShared>,
}

impl ChaosHandle {
    /// A handle not backed by any tunnel injector: the cluster runtime
    /// uses one as its process-kill control and `chaos.killed_*` counter
    /// surface, so kill faults are driven through the same `ChaosHandle`
    /// API as link faults.
    pub fn standalone(plan: FaultPlan) -> ChaosHandle {
        ChaosHandle {
            shared: Arc::new(ChaosShared {
                state: Mutex::with_rank(
                    rank::CHAOS_STATE,
                    "net.fault.state",
                    ChaosState {
                        rng: SmallRng::seed_from_u64(plan.seed),
                        plan,
                        tx_held: VecDeque::new(),
                        rx_held: VecDeque::new(),
                    },
                ),
                stats: ChaosStats::default(),
            }),
        }
    }

    /// The current plan.
    pub fn plan(&self) -> FaultPlan {
        self.shared.state.lock().plan
    }

    /// The armed process-kill spec, if any.
    pub fn kill_spec(&self) -> Option<KillSpec> {
        self.shared.state.lock().plan.kill
    }

    /// Arms (or disarms, with `None`) the process-kill spec.
    pub fn set_kill(&self, kill: Option<KillSpec>) {
        self.shared.state.lock().plan.kill = kill;
    }

    /// Replaces the whole plan (reseeding the PRNG from `plan.seed`).
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut st = self.shared.state.lock();
        st.rng = SmallRng::seed_from_u64(plan.seed);
        st.plan = plan;
    }

    /// Replaces the outbound spec only (seed and PRNG state are kept, so
    /// mid-run switches stay deterministic).
    pub fn set_tx(&self, spec: FaultSpec) {
        self.shared.state.lock().plan.tx = spec;
    }

    /// Replaces the inbound spec only.
    pub fn set_rx(&self, spec: FaultSpec) {
        self.shared.state.lock().plan.rx = spec;
    }

    /// Clears both directions to [`FaultSpec::CLEAN`]; stalled frames are
    /// released on the next `send`/`try_recv`.
    pub fn heal(&self) {
        let mut st = self.shared.state.lock();
        st.plan.tx = FaultSpec::CLEAN;
        st.plan.rx = FaultSpec::CLEAN;
    }

    /// The injector's `chaos.*` counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.shared.stats
    }
}

impl std::fmt::Debug for ChaosHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChaosHandle({:?})", self.plan())
    }
}

/// A [`Tunnel`] wrapper that injects faults per its [`FaultPlan`].
///
/// Delayed and stalled frames are released lazily by later `send`/
/// `try_recv` calls (the datapath polls its tunnels every round, so in
/// practice release latency is one poll interval).
pub struct FaultInjector {
    inner: Box<dyn Tunnel + Send>,
    shared: Arc<ChaosShared>,
}

impl FaultInjector {
    /// Wraps `inner`, returning the injector and its control handle.
    pub fn wrap(inner: Box<dyn Tunnel + Send>, plan: FaultPlan) -> (FaultInjector, ChaosHandle) {
        let shared = Arc::new(ChaosShared {
            state: Mutex::with_rank(
                rank::CHAOS_STATE,
                "net.fault.state",
                ChaosState {
                    rng: SmallRng::seed_from_u64(plan.seed),
                    plan,
                    tx_held: VecDeque::new(),
                    rx_held: VecDeque::new(),
                },
            ),
            stats: ChaosStats::default(),
        });
        let handle = ChaosHandle {
            shared: shared.clone(),
        };
        (FaultInjector { inner, shared }, handle)
    }

    /// A control handle for this injector.
    pub fn handle(&self) -> ChaosHandle {
        ChaosHandle {
            shared: self.shared.clone(),
        }
    }

    fn stats(&self) -> &ChaosStats {
        &self.shared.stats
    }

    /// Flips two payload bytes — enough to break tuple deserialization
    /// downstream without touching the frame header (the switch still
    /// routes it, like real in-flight corruption below the checksum).
    fn corrupt_frame(frame: &Frame) -> Frame {
        let mut corrupted = frame.clone();
        let mut payload = corrupted.payload.to_vec();
        if payload.is_empty() {
            payload.push(0xa5);
        } else {
            let mid = payload.len() / 2;
            payload[0] ^= 0xa5;
            payload[mid] ^= 0x5a;
        }
        corrupted.payload = bytes::Bytes::from(payload);
        corrupted
    }

    /// Releases outbound frames whose hold expired (delay elapsed, or the
    /// stall was switched off). Caller must NOT hold the state lock.
    fn flush_tx_held(&self) -> Result<()> {
        loop {
            let frame = {
                let mut st = self.shared.state.lock();
                let stalled = st.plan.tx.stall;
                let now = Instant::now();
                match st.tx_held.front() {
                    Some(h) => {
                        let release = match h.due {
                            Some(due) => due <= now,
                            None => !stalled,
                        };
                        if !release {
                            return Ok(());
                        }
                    }
                    None => return Ok(()),
                }
                st.tx_held.pop_front().map(|h| h.frame)
            };
            match frame {
                Some(f) => {
                    self.inner.send(&f)?;
                    self.stats().forwarded.fetch_add(1, Ordering::Relaxed);
                }
                None => return Ok(()),
            }
        }
    }

    /// Pops an inbound held frame whose hold expired, if any.
    fn pop_rx_held(&self) -> Option<Frame> {
        let mut st = self.shared.state.lock();
        let stalled = st.plan.rx.stall;
        let now = Instant::now();
        let release = match st.rx_held.front() {
            Some(h) => match h.due {
                Some(due) => due <= now,
                None => !stalled,
            },
            None => false,
        };
        if release {
            st.rx_held.pop_front().map(|h| h.frame)
        } else {
            None
        }
    }
}

impl Tunnel for FaultInjector {
    fn send(&self, frame: &Frame) -> Result<()> {
        let (spec, drop, dup, corrupt) = {
            let mut st = self.shared.state.lock();
            let spec = st.plan.tx;
            let drop = spec.drop > 0.0 && st.rng.gen_bool(spec.drop);
            let dup = spec.duplicate > 0.0 && st.rng.gen_bool(spec.duplicate);
            let corrupt = spec.corrupt > 0.0 && st.rng.gen_bool(spec.corrupt);
            (spec, drop, dup, corrupt)
        };
        if spec.partition {
            self.stats().partitioned.fetch_add(1, Ordering::Relaxed);
            return Err(NetError::Broken(TeardownCause::Partitioned));
        }
        self.flush_tx_held()?;
        if drop {
            self.stats().dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let frame = if corrupt {
            self.stats().corrupted.fetch_add(1, Ordering::Relaxed);
            Self::corrupt_frame(frame)
        } else {
            frame.clone()
        };
        if spec.stall {
            self.stats().stalled.fetch_add(1, Ordering::Relaxed);
            self.shared
                .state
                .lock()
                .tx_held
                .push_back(HeldFrame { due: None, frame });
            return Ok(());
        }
        if let Some(d) = spec.delay {
            self.stats().delayed.fetch_add(1, Ordering::Relaxed);
            self.shared.state.lock().tx_held.push_back(HeldFrame {
                due: Some(Instant::now() + d),
                frame,
            });
            return Ok(());
        }
        self.inner.send(&frame)?;
        self.stats().forwarded.fetch_add(1, Ordering::Relaxed);
        if dup {
            self.inner.send(&frame)?;
            self.stats().duplicated.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn try_recv(&self) -> Result<Option<Frame>> {
        let rx_spec = {
            let st = self.shared.state.lock();
            st.plan.rx
        };
        if rx_spec.partition {
            self.stats().partitioned.fetch_add(1, Ordering::Relaxed);
            return Err(NetError::Broken(TeardownCause::Partitioned));
        }
        // Keep the outbound side moving even when the local worker only
        // polls: release due delayed/stalled TX frames opportunistically.
        self.flush_tx_held()?;
        if let Some(frame) = self.pop_rx_held() {
            return Ok(Some(frame));
        }
        loop {
            let frame = match self.inner.try_recv()? {
                Some(f) => f,
                None => return Ok(None),
            };
            let (drop, dup, corrupt) = {
                let mut st = self.shared.state.lock();
                let spec = st.plan.rx;
                (
                    spec.drop > 0.0 && st.rng.gen_bool(spec.drop),
                    spec.duplicate > 0.0 && st.rng.gen_bool(spec.duplicate),
                    spec.corrupt > 0.0 && st.rng.gen_bool(spec.corrupt),
                )
            };
            if drop {
                self.stats().dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let frame = if corrupt {
                self.stats().corrupted.fetch_add(1, Ordering::Relaxed);
                Self::corrupt_frame(&frame)
            } else {
                frame
            };
            if rx_spec.stall {
                self.stats().stalled.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .state
                    .lock()
                    .rx_held
                    .push_back(HeldFrame { due: None, frame });
                continue;
            }
            if let Some(d) = rx_spec.delay {
                self.stats().delayed.fetch_add(1, Ordering::Relaxed);
                self.shared.state.lock().rx_held.push_back(HeldFrame {
                    due: Some(Instant::now() + d),
                    frame,
                });
                continue;
            }
            if dup {
                self.shared.state.lock().rx_held.push_back(HeldFrame {
                    due: Some(Instant::now()),
                    frame: frame.clone(),
                });
                self.stats().duplicated.fetch_add(1, Ordering::Relaxed);
            }
            self.stats().forwarded.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(frame));
        }
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.state.lock();
        write!(
            f,
            "FaultInjector(plan={:?}, tx_held={}, rx_held={})",
            st.plan,
            st.tx_held.len(),
            st.rx_held.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MacAddr;
    use crate::tunnel::InMemoryTunnel;
    use bytes::Bytes;
    use typhoon_tuple::tuple::TaskId;

    fn frame(n: u8) -> Frame {
        Frame::typhoon(
            MacAddr::worker(1, TaskId(n as u32)),
            MacAddr::worker(1, TaskId(100)),
            Bytes::from(vec![n; 16]),
        )
    }

    fn wrapped(plan: FaultPlan) -> (FaultInjector, ChaosHandle, InMemoryTunnel) {
        let (a, b) = InMemoryTunnel::pair();
        let (inj, handle) = FaultInjector::wrap(Box::new(a), plan);
        (inj, handle, b)
    }

    fn drain(t: &dyn Tunnel) -> Vec<Frame> {
        let mut out = Vec::new();
        while let Ok(Some(f)) = t.try_recv() {
            out.push(f);
        }
        out
    }

    #[test]
    fn clean_plan_is_transparent() {
        let (inj, handle, peer) = wrapped(FaultPlan::clean(1));
        for i in 0..10 {
            inj.send(&frame(i)).unwrap();
        }
        assert_eq!(drain(&peer).len(), 10);
        assert_eq!(handle.stats().forwarded.load(Ordering::Relaxed), 10);
        assert_eq!(handle.stats().dropped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn drop_ratio_is_deterministic_for_a_seed() {
        let survivors = |seed: u64| {
            let (inj, _h, peer) = wrapped(FaultPlan::tx_only(seed, FaultSpec::CLEAN.dropping(0.5)));
            for i in 0..100 {
                inj.send(&frame(i)).unwrap();
            }
            drain(&peer)
                .iter()
                .map(|f| f.payload[0])
                .collect::<Vec<_>>()
        };
        let a = survivors(7);
        let b = survivors(7);
        assert_eq!(a, b, "same seed, same drop pattern");
        assert!(a.len() < 100 && !a.is_empty(), "some but not all dropped");
        assert_ne!(a, survivors(8), "different seed, different pattern");
    }

    #[test]
    fn duplicate_delivers_extra_copies() {
        let (inj, h, peer) = wrapped(FaultPlan::tx_only(3, FaultSpec::CLEAN.duplicating(1.0)));
        for i in 0..5 {
            inj.send(&frame(i)).unwrap();
        }
        assert_eq!(drain(&peer).len(), 10);
        assert_eq!(h.stats().duplicated.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn corrupt_mangles_payload_but_not_headers() {
        let (inj, h, peer) = wrapped(FaultPlan::tx_only(3, FaultSpec::CLEAN.corrupting(1.0)));
        let original = frame(9);
        inj.send(&original).unwrap();
        let got = drain(&peer).pop().expect("delivered");
        assert_eq!(got.src, original.src);
        assert_eq!(got.dst, original.dst);
        assert_ne!(got.payload, original.payload);
        assert_eq!(h.stats().corrupted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn delay_holds_then_releases_frames() {
        let (inj, _h, peer) = wrapped(FaultPlan::tx_only(
            3,
            FaultSpec::CLEAN.delaying(Duration::from_millis(30)),
        ));
        inj.send(&frame(1)).unwrap();
        assert!(drain(&peer).is_empty(), "withheld during the delay");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            // Release happens lazily on the next tunnel operation.
            let _ = inj.try_recv();
            if !drain(&peer).is_empty() {
                break;
            }
            assert!(Instant::now() < deadline, "delayed frame never released");
            std::thread::yield_now();
        }
    }

    #[test]
    fn stall_holds_until_healed_losing_nothing() {
        let (inj, handle, peer) = wrapped(FaultPlan::tx_only(3, FaultSpec::CLEAN.stalled()));
        for i in 0..20 {
            inj.send(&frame(i)).unwrap();
        }
        assert!(drain(&peer).is_empty(), "stall holds everything");
        assert_eq!(handle.stats().stalled.load(Ordering::Relaxed), 20);
        handle.heal();
        let _ = inj.try_recv(); // release hook
        let released = drain(&peer);
        assert_eq!(released.len(), 20, "heal releases all held frames");
        let order: Vec<u8> = released.iter().map(|f| f.payload[0]).collect();
        assert_eq!(order, (0..20).collect::<Vec<u8>>(), "FIFO preserved");
    }

    #[test]
    fn partition_fails_fast_with_typed_error_both_directions() {
        let (inj, handle, peer) = wrapped(FaultPlan::symmetric(3, FaultSpec::CLEAN.partitioned()));
        assert_eq!(
            inj.send(&frame(0)).unwrap_err(),
            NetError::Broken(TeardownCause::Partitioned)
        );
        peer.send(&frame(1)).unwrap();
        assert_eq!(
            inj.try_recv().unwrap_err(),
            NetError::Broken(TeardownCause::Partitioned)
        );
        assert!(handle.stats().partitioned.load(Ordering::Relaxed) >= 2);
        // Heal: the link works again (the frame sent during the partition
        // by the peer is still buffered in the underlying tunnel).
        handle.heal();
        inj.send(&frame(2)).unwrap();
        assert_eq!(drain(&peer).pop().unwrap().payload[0], 2);
        assert_eq!(inj.try_recv().unwrap().unwrap().payload[0], 1);
    }

    #[test]
    fn rx_faults_apply_to_inbound_frames() {
        let (inj, h, peer) = wrapped(FaultPlan::rx_only(11, FaultSpec::CLEAN.dropping(1.0)));
        for i in 0..5 {
            peer.send(&frame(i)).unwrap();
        }
        assert!(inj.try_recv().unwrap().is_none(), "all inbound dropped");
        assert_eq!(h.stats().dropped.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn plan_switch_mid_run_takes_effect() {
        let (inj, handle, peer) = wrapped(FaultPlan::clean(5));
        inj.send(&frame(0)).unwrap();
        handle.set_tx(FaultSpec::CLEAN.dropping(1.0));
        inj.send(&frame(1)).unwrap();
        handle.set_tx(FaultSpec::CLEAN);
        inj.send(&frame(2)).unwrap();
        let got: Vec<u8> = drain(&peer).iter().map(|f| f.payload[0]).collect();
        assert_eq!(got, vec![0, 2], "only the frame sent under drop=1 lost");
    }

    #[test]
    fn kill_spec_rides_the_plan_and_counts_executions() {
        let plan = FaultPlan::clean(9).with_kill(KillSpec::worker(Duration::from_millis(250)));
        let handle = ChaosHandle::standalone(plan);
        assert_eq!(
            handle.kill_spec(),
            Some(KillSpec {
                class: KillClass::Worker,
                after: Duration::from_millis(250),
            })
        );
        handle.stats().record_kill(KillClass::Worker);
        handle.stats().record_kill(KillClass::Host);
        let named = handle.stats().named();
        assert!(named.contains(&("chaos.killed_workers", 1)));
        assert!(named.contains(&("chaos.killed_hosts", 1)));
        handle.set_kill(None);
        assert_eq!(handle.kill_spec(), None, "disarmed");
        // A kill spec never perturbs the per-frame fault path.
        let (inj, _h, peer) = wrapped(plan);
        inj.send(&frame(1)).unwrap();
        assert_eq!(drain(&peer).len(), 1);
    }

    #[test]
    fn disconnect_propagates_through_the_injector() {
        let (inj, _h, peer) = wrapped(FaultPlan::clean(5));
        drop(peer);
        assert_eq!(inj.send(&frame(0)).unwrap_err(), NetError::Disconnected);
        assert_eq!(inj.try_recv().unwrap_err(), NetError::Disconnected);
    }
}
