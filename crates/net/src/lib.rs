//! # typhoon-net — frames, packetization, rings and host tunnels
//!
//! The network substrate under the Typhoon data plane (Fig. 5 and Fig. 7 of
//! the paper):
//!
//! * [`frame`] — the custom Ethernet-format transport packet: worker IDs
//!   (application ID prefix + task ID) as MAC addresses, a custom EtherType
//!   `0xffff`, and a [`bytes::Bytes`] payload so that switch-level
//!   replication is a reference-count bump rather than a copy — the
//!   mechanism behind serialization-free one-to-many delivery.
//! * [`packetize`] — the southbound transport library's payload format:
//!   multiplexing several small tuples into one packet, segmenting large
//!   tuples across packets, and the matching reassembler.
//! * [`mod@ring`] — DPDK-style bounded ring ports connecting workers to their
//!   host's software switch. Overflow drops are counted, not hidden,
//!   modelling the TX/RX overflow discussion of §8.
//! * [`tunnel`] — host-level tunnels that carry frames between compute
//!   hosts: a real TCP implementation (loopback in experiments) and an
//!   in-memory implementation behind one trait.
//! * [`batch`] — the configurable batching used throughout the I/O layer
//!   for the latency/throughput trade-off studied in Figs. 8(c)/(d).

#![warn(missing_docs)]

pub mod batch;
pub mod frame;
pub mod packetize;
pub mod ring;
pub mod tunnel;

pub use batch::Batcher;
pub use frame::{Frame, MacAddr, TYPHOON_ETHERTYPE};
pub use packetize::{Depacketizer, Packetizer};
pub use ring::{ring, RingConsumer, RingProducer, RingStats};
pub use tunnel::{InMemoryTunnel, TcpTunnel, Tunnel};

/// Errors from the network substrate.
#[derive(Debug)]
pub enum NetError {
    /// A frame was shorter than the Ethernet header or declared lengths
    /// exceeded the payload.
    Malformed(&'static str),
    /// A ring was full and the frame was dropped.
    RingFull,
    /// The peer end of a tunnel or ring is gone.
    Disconnected,
    /// Underlying socket error (TCP tunnels).
    Io(std::io::Error),
}

impl PartialEq for NetError {
    fn eq(&self, other: &Self) -> bool {
        matches!(
            (self, other),
            (NetError::Malformed(_), NetError::Malformed(_))
                | (NetError::RingFull, NetError::RingFull)
                | (NetError::Disconnected, NetError::Disconnected)
                | (NetError::Io(_), NetError::Io(_))
        )
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Malformed(what) => write!(f, "malformed frame: {what}"),
            NetError::RingFull => write!(f, "ring full, frame dropped"),
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NetError>;
