//! # typhoon-net — frames, packetization, rings and host tunnels
//!
//! The network substrate under the Typhoon data plane (Fig. 5 and Fig. 7 of
//! the paper):
//!
//! * [`frame`] — the custom Ethernet-format transport packet: worker IDs
//!   (application ID prefix + task ID) as MAC addresses, a custom EtherType
//!   `0xffff`, and a [`bytes::Bytes`] payload so that switch-level
//!   replication is a reference-count bump rather than a copy — the
//!   mechanism behind serialization-free one-to-many delivery.
//! * [`packetize`] — the southbound transport library's payload format:
//!   multiplexing several small tuples into one packet, segmenting large
//!   tuples across packets, and the matching reassembler.
//! * [`mod@ring`] — DPDK-style bounded ring ports connecting workers to their
//!   host's software switch. Overflow drops are counted, not hidden,
//!   modelling the TX/RX overflow discussion of §8.
//! * [`tunnel`] — host-level tunnels that carry frames between compute
//!   hosts: a real TCP implementation (loopback in experiments) and an
//!   in-memory implementation behind one trait.
//! * [`batch`] — the configurable batching used throughout the I/O layer
//!   for the latency/throughput trade-off studied in Figs. 8(c)/(d).
//! * [`fault`] — the chaos layer: a [`FaultInjector`] tunnel wrapper with
//!   a seeded, deterministic, runtime-switchable [`FaultPlan`] (drop /
//!   delay / duplicate / corrupt / stall / hard-partition per direction)
//!   used to prove the Fig. 10 recovery path under induced faults.

#![warn(missing_docs)]

pub mod backoff;
pub mod batch;
pub mod fault;
pub mod frame;
pub mod packetize;
pub mod ring;
pub mod tunnel;

pub use backoff::{retry, BackoffPolicy, RetryError};
pub use batch::Batcher;
pub use fault::{
    ChaosHandle, ChaosStats, FaultInjector, FaultPlan, FaultSpec, KillClass, KillSpec,
};
pub use frame::{Frame, MacAddr, TYPHOON_ETHERTYPE};
pub use packetize::{Depacketizer, Packetizer};
pub use ring::{ring, RingConsumer, RingProducer, RingStats};
pub use tunnel::{InMemoryTunnel, TcpTunnel, Tunnel, TunnelConfig, TunnelStats};

/// Why a tunnel entered its broken (fail-fast) state.
///
/// Recorded once, by whichever side of the tunnel first observed the
/// fault; every later `send`/`try_recv` echoes it back so operators can
/// distinguish a clean peer close from stream corruption or a stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeardownCause {
    /// The peer closed the connection (EOF on the reader).
    PeerClosed,
    /// A length prefix exceeded the frame bound — the stream is misframed
    /// or corrupt.
    CorruptLength,
    /// A frame body failed to decode — the stream is misframed or corrupt.
    DecodeError,
    /// A socket read/write error (including a partial write that left the
    /// stream misframed).
    Io,
    /// A write did not complete within the configured write timeout (a
    /// stalled peer must not block `send` forever).
    WriteTimeout,
    /// An injected hard partition ([`fault::FaultInjector`]).
    Partitioned,
}

impl TeardownCause {
    /// Stable metric-name suffix: `net.tunnel.teardown.<label>`.
    pub fn label(self) -> &'static str {
        match self {
            TeardownCause::PeerClosed => "peer_closed",
            TeardownCause::CorruptLength => "corrupt_len",
            TeardownCause::DecodeError => "decode_error",
            TeardownCause::Io => "io_error",
            TeardownCause::WriteTimeout => "write_timeout",
            TeardownCause::Partitioned => "partitioned",
        }
    }
}

impl std::fmt::Display for TeardownCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Errors from the network substrate.
#[derive(Debug)]
pub enum NetError {
    /// A frame was shorter than the Ethernet header or declared lengths
    /// exceeded the payload.
    Malformed(&'static str),
    /// A ring was full and the frame was dropped.
    RingFull,
    /// The peer end of a tunnel or ring is gone.
    Disconnected,
    /// The tunnel is poisoned: an earlier fault made its stream unusable
    /// and every operation now fails fast instead of misframing or
    /// hanging.
    Broken(TeardownCause),
    /// Underlying socket error (TCP tunnels).
    Io(std::io::Error),
}

impl PartialEq for NetError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (NetError::Broken(a), NetError::Broken(b)) => a == b,
            _ => matches!(
                (self, other),
                (NetError::Malformed(_), NetError::Malformed(_))
                    | (NetError::RingFull, NetError::RingFull)
                    | (NetError::Disconnected, NetError::Disconnected)
                    | (NetError::Io(_), NetError::Io(_))
            ),
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Malformed(what) => write!(f, "malformed frame: {what}"),
            NetError::RingFull => write!(f, "ring full, frame dropped"),
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Broken(cause) => write!(f, "tunnel broken: {cause}"),
            NetError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NetError>;
