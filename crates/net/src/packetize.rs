//! Packetization: tuples ↔ packet payloads.
//!
//! Implements the southbound transport library's payload handling (§5,
//! "egress/ingress workflow"): *multiplexing* — "multiple small tuples with
//! the same source/destination IDs are packed into one packet" — and
//! *segmentation* — "one large tuple is segmented into multiple packets".
//!
//! ## Payload record format
//!
//! A packet payload is a sequence of records, each a chunk of one encoded
//! tuple:
//!
//! ```text
//! record := total_len:u32 offset:u32 chunk_len:u32 chunk_bytes
//! ```
//!
//! `offset == 0 && chunk_len == total_len` is the common unsegmented case.
//! Reassembly relies on in-order delivery per source, which both rings and
//! TCP tunnels guarantee.

use crate::frame::{Frame, MacAddr, HEADER_LEN};
use crate::{NetError, Result};
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::HashMap;

/// Per-record header length.
const RECORD_HEADER: usize = 12;

/// Packs encoded tuples into MTU-bounded frames.
#[derive(Debug, Clone)]
pub struct Packetizer {
    mtu: usize,
}

impl Packetizer {
    /// Creates a packetizer for a given MTU (total frame length bound).
    ///
    /// # Panics
    /// Panics when the MTU cannot hold the Ethernet header plus one record
    /// header plus at least one payload byte.
    pub fn new(mtu: usize) -> Self {
        assert!(
            mtu > HEADER_LEN + RECORD_HEADER,
            "mtu {mtu} cannot carry any payload"
        );
        Packetizer { mtu }
    }

    /// The configured MTU.
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// Packs `tuples` (already-serialized tuple byte blobs) addressed
    /// `src → dst` into as few frames as possible.
    pub fn pack(&self, src: MacAddr, dst: MacAddr, tuples: &[Bytes]) -> Vec<Frame> {
        let capacity = self.mtu - HEADER_LEN;
        let mut frames = Vec::new();
        let mut payload = BytesMut::with_capacity(capacity.min(4096));

        let flush = |payload: &mut BytesMut, frames: &mut Vec<Frame>| {
            if !payload.is_empty() {
                frames.push(Frame::typhoon(src, dst, payload.split().freeze()));
            }
        };

        for tuple in tuples {
            let total = tuple.len();
            let mut offset = 0usize;
            loop {
                let room = capacity - payload.len();
                if room <= RECORD_HEADER {
                    flush(&mut payload, &mut frames);
                    continue;
                }
                let chunk = (total - offset).min(room - RECORD_HEADER);
                payload.put_u32(total as u32);
                payload.put_u32(offset as u32);
                payload.put_u32(chunk as u32);
                payload.put_slice(&tuple[offset..offset + chunk]);
                offset += chunk;
                if offset == total {
                    break;
                }
                // Tuple continues in the next frame.
                flush(&mut payload, &mut frames);
            }
        }
        flush(&mut payload, &mut frames);
        frames
    }
}

impl Default for Packetizer {
    /// Jumbo-frame MTU, matching the DPDK OVS deployment of the prototype.
    fn default() -> Self {
        Packetizer::new(9000)
    }
}

#[derive(Debug, Default)]
struct Partial {
    total: usize,
    buf: BytesMut,
}

/// Reassembles tuple byte blobs from packet payloads.
///
/// Keeps one partial-tuple buffer per source worker; interleaved sources
/// are fine, interleaved tuples from *one* source are a protocol violation
/// (the packetizer never produces them).
#[derive(Debug, Default)]
pub struct Depacketizer {
    partial: HashMap<MacAddr, Partial>,
}

impl Depacketizer {
    /// A fresh reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one frame, returning every tuple blob it completed, tagged
    /// with the source address.
    pub fn push(&mut self, frame: &Frame) -> Result<Vec<(MacAddr, Bytes)>> {
        let mut out = Vec::new();
        let mut payload = frame.payload.clone();
        while !payload.is_empty() {
            if payload.len() < RECORD_HEADER {
                return Err(NetError::Malformed("record header truncated"));
            }
            let total = u32::from_be_bytes(payload[0..4].try_into().unwrap()) as usize;
            let offset = u32::from_be_bytes(payload[4..8].try_into().unwrap()) as usize;
            let chunk_len = u32::from_be_bytes(payload[8..12].try_into().unwrap()) as usize;
            payload.advance_checked(RECORD_HEADER)?;
            if chunk_len > payload.len() {
                return Err(NetError::Malformed("record chunk exceeds payload"));
            }
            if offset + chunk_len > total {
                return Err(NetError::Malformed("record chunk exceeds tuple length"));
            }
            let chunk = payload.split_to(chunk_len);
            if offset == 0 && chunk_len == total {
                // Fast path: unsegmented tuple, zero-copy slice.
                out.push((frame.src, chunk));
                continue;
            }
            let partial = self.partial.entry(frame.src).or_default();
            if offset == 0 {
                partial.total = total;
                partial.buf.clear();
            } else if partial.total != total || partial.buf.len() != offset {
                self.partial.remove(&frame.src);
                return Err(NetError::Malformed("out-of-order segment"));
            }
            partial.buf.extend_from_slice(&chunk);
            if partial.buf.len() == total {
                let complete = self.partial.remove(&frame.src).expect("present").buf;
                out.push((frame.src, complete.freeze()));
            }
        }
        Ok(out)
    }

    /// Number of sources with an incomplete tuple (observability hook).
    pub fn pending_sources(&self) -> usize {
        self.partial.len()
    }
}

/// Small helper: `Bytes::advance` with a bounds check instead of a panic.
trait AdvanceChecked {
    fn advance_checked(&mut self, n: usize) -> Result<()>;
}

impl AdvanceChecked for Bytes {
    fn advance_checked(&mut self, n: usize) -> Result<()> {
        if n > self.len() {
            return Err(NetError::Malformed("truncated payload"));
        }
        let _ = self.split_to(n);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_tuple::tuple::TaskId;

    fn src() -> MacAddr {
        MacAddr::worker(1, TaskId(10))
    }

    fn dst() -> MacAddr {
        MacAddr::worker(1, TaskId(20))
    }

    fn roundtrip(mtu: usize, tuples: Vec<Bytes>) -> Vec<Bytes> {
        let p = Packetizer::new(mtu);
        let frames = p.pack(src(), dst(), &tuples);
        for f in &frames {
            assert!(f.wire_len() <= mtu, "frame exceeds MTU");
            assert_eq!(f.src, src());
            assert_eq!(f.dst, dst());
        }
        let mut d = Depacketizer::new();
        let mut out = Vec::new();
        for f in &frames {
            for (from, blob) in d.push(f).unwrap() {
                assert_eq!(from, src());
                out.push(blob);
            }
        }
        assert_eq!(d.pending_sources(), 0, "nothing left half-assembled");
        out
    }

    #[test]
    fn small_tuples_multiplex_into_one_frame() {
        let tuples: Vec<Bytes> = (0..10).map(|i| Bytes::from(vec![i as u8; 20])).collect();
        let p = Packetizer::new(1500);
        let frames = p.pack(src(), dst(), &tuples);
        assert_eq!(frames.len(), 1, "10×32B fits one 1500B frame");
        assert_eq!(roundtrip(1500, tuples.clone()), tuples);
    }

    #[test]
    fn large_tuple_segments_across_frames() {
        let big = Bytes::from(vec![0xabu8; 5000]);
        let p = Packetizer::new(1500);
        let frames = p.pack(src(), dst(), std::slice::from_ref(&big));
        assert!(frames.len() >= 4, "5000B over 1500B MTU needs ≥4 frames");
        assert_eq!(roundtrip(1500, vec![big.clone()]), vec![big]);
    }

    #[test]
    fn mixed_sizes_roundtrip_in_order() {
        let tuples = vec![
            Bytes::from(vec![1u8; 10]),
            Bytes::from(vec![2u8; 3000]),
            Bytes::from(vec![3u8; 1]),
            Bytes::from(vec![4u8; 1486]), // exactly fills a 1500 frame less headers
            Bytes::new(),
        ];
        assert_eq!(roundtrip(1500, tuples.clone()), tuples);
    }

    #[test]
    fn interleaved_sources_reassemble_independently() {
        let p = Packetizer::new(100);
        let a = Bytes::from(vec![0xaau8; 200]);
        let b = Bytes::from(vec![0xbbu8; 200]);
        let src_a = MacAddr::worker(1, TaskId(1));
        let src_b = MacAddr::worker(1, TaskId(2));
        let frames_a = p.pack(src_a, dst(), std::slice::from_ref(&a));
        let frames_b = p.pack(src_b, dst(), std::slice::from_ref(&b));
        let mut d = Depacketizer::new();
        let mut done = Vec::new();
        // Interleave the two segment streams.
        for (fa, fb) in frames_a.iter().zip(frames_b.iter()) {
            done.extend(d.push(fa).unwrap());
            done.extend(d.push(fb).unwrap());
        }
        for f in frames_a.iter().skip(frames_b.len()) {
            done.extend(d.push(f).unwrap());
        }
        for f in frames_b.iter().skip(frames_a.len()) {
            done.extend(d.push(f).unwrap());
        }
        assert_eq!(done.len(), 2);
        let got_a = done.iter().find(|(s, _)| *s == src_a).unwrap();
        assert_eq!(got_a.1, a);
        let got_b = done.iter().find(|(s, _)| *s == src_b).unwrap();
        assert_eq!(got_b.1, b);
    }

    #[test]
    fn out_of_order_segment_is_rejected_and_state_cleared() {
        let p = Packetizer::new(100);
        let big = Bytes::from(vec![7u8; 300]);
        let frames = p.pack(src(), dst(), std::slice::from_ref(&big));
        assert!(frames.len() >= 3);
        let mut d = Depacketizer::new();
        d.push(&frames[0]).unwrap();
        // Skip frame 1 → frame 2's offset won't match the partial buffer.
        let err = d.push(&frames[2]).unwrap_err();
        assert_eq!(err, NetError::Malformed("out-of-order segment"));
        assert_eq!(d.pending_sources(), 0);
    }

    #[test]
    fn corrupt_record_headers_are_rejected() {
        let mut d = Depacketizer::new();
        // Truncated header.
        let f = Frame::typhoon(src(), dst(), Bytes::from_static(&[0, 0, 1]));
        assert!(d.push(&f).is_err());
        // Declared chunk bigger than payload.
        let mut payload = BytesMut::new();
        payload.put_u32(100);
        payload.put_u32(0);
        payload.put_u32(100);
        payload.put_slice(&[0u8; 10]);
        let f = Frame::typhoon(src(), dst(), payload.freeze());
        assert!(d.push(&f).is_err());
        // chunk beyond declared total.
        let mut payload = BytesMut::new();
        payload.put_u32(4);
        payload.put_u32(2);
        payload.put_u32(8);
        payload.put_slice(&[0u8; 8]);
        let f = Frame::typhoon(src(), dst(), payload.freeze());
        assert!(d.push(&f).is_err());
    }

    #[test]
    #[should_panic(expected = "cannot carry any payload")]
    fn tiny_mtu_rejected() {
        let _ = Packetizer::new(20);
    }

    #[test]
    fn unsegmented_fast_path_is_zero_copy() {
        let tuple = Bytes::from(vec![9u8; 64]);
        let p = Packetizer::default();
        let frames = p.pack(src(), dst(), std::slice::from_ref(&tuple));
        let mut d = Depacketizer::new();
        let out = d.push(&frames[0]).unwrap();
        // The output blob points into the frame payload's buffer.
        let payload_range = frames[0].payload.as_ptr() as usize
            ..frames[0].payload.as_ptr() as usize + frames[0].payload.len();
        assert!(payload_range.contains(&(out[0].1.as_ptr() as usize)));
    }
}
