//! Disconnect/drain semantics pinned across every `Tunnel` implementation,
//! plus the TCP fail-fast teardown regressions.
//!
//! The contract all three implementations must share:
//!
//! 1. frames buffered before the peer went away are still deliverable;
//! 2. the receiver sees a terminal error only once that buffer is drained;
//! 3. after the first terminal error, every operation keeps failing fast —
//!    no hangs, no misframed writes.

use bytes::Bytes;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};
use typhoon_net::{
    FaultInjector, FaultPlan, Frame, InMemoryTunnel, MacAddr, NetError, TcpTunnel, TeardownCause,
    Tunnel, TunnelConfig,
};
use typhoon_tuple::tuple::TaskId;

fn frame(n: u8) -> Frame {
    Frame::typhoon(
        MacAddr::worker(1, TaskId(n as u32)),
        MacAddr::worker(1, TaskId(99)),
        Bytes::from(vec![n; 64]),
    )
}

/// Receives `want` frames, then asserts the next receive is a terminal
/// error — all within `deadline`. Panics on a hang.
fn drain_then_expect_error(t: &dyn Tunnel, want: usize, deadline: Duration) -> NetError {
    let end = Instant::now() + deadline;
    let mut got = 0;
    loop {
        assert!(
            Instant::now() < end,
            "hang: drained {got}/{want} frames without a terminal error"
        );
        match t.try_recv() {
            Ok(Some(_)) => got += 1,
            Ok(None) => std::thread::yield_now(),
            Err(e) => {
                assert_eq!(got, want, "terminal error before the buffer drained");
                return e;
            }
        }
    }
}

/// The shared contract, parameterized over how the pair is built.
fn buffered_frames_survive_peer_drop(make: impl FnOnce() -> (Box<dyn Tunnel>, Box<dyn Tunnel>)) {
    let (a, b) = make();
    for i in 0..3 {
        a.send(&frame(i)).expect("send while peer alive");
    }
    // For TCP the reader thread needs to pull the frames off the socket
    // before the close lands; wait until they are locally buffered.
    let end = Instant::now() + Duration::from_secs(10);
    let mut buffered = Vec::new();
    while buffered.is_empty() {
        assert!(Instant::now() < end, "first frame never arrived");
        if let Ok(Some(f)) = b.try_recv() {
            buffered.push(f);
        }
    }
    drop(a);
    let err = drain_then_expect_error(&*b, 2, Duration::from_secs(10));
    assert_eq!(
        err,
        NetError::Disconnected,
        "clean peer drop maps to Disconnected"
    );
    // And it stays terminal.
    assert!(b.try_recv().is_err(), "error must persist after drain");
}

#[test]
fn in_memory_buffers_survive_peer_drop() {
    buffered_frames_survive_peer_drop(|| {
        let (a, b) = InMemoryTunnel::pair();
        (Box::new(a), Box::new(b))
    });
}

#[test]
fn tcp_buffers_survive_peer_drop() {
    buffered_frames_survive_peer_drop(|| {
        let (a, b) = TcpTunnel::pair().expect("loopback pair");
        (Box::new(a), Box::new(b))
    });
}

#[test]
fn fault_injector_buffers_survive_peer_drop() {
    buffered_frames_survive_peer_drop(|| {
        let (a, b) = InMemoryTunnel::pair();
        let (ia, _ha) = FaultInjector::wrap(Box::new(a), FaultPlan::clean(1));
        let (ib, _hb) = FaultInjector::wrap(Box::new(b), FaultPlan::clean(2));
        (Box::new(ia), Box::new(ib))
    });
}

// ----------------------------------------------------- TCP regressions

/// Regression (partial-write desync): once a send fails mid-stream the
/// tunnel must poison itself — a later send must fail fast instead of
/// writing a frame the peer would misframe.
#[test]
fn tcp_send_to_shut_down_peer_poisons_the_tunnel() {
    let (a, b) = TcpTunnel::pair().expect("loopback pair");
    drop(b);
    let end = Instant::now() + Duration::from_secs(10);
    // Socket buffering can absorb a few sends; keep pushing until the
    // failure surfaces. It must surface — never hang, never succeed
    // forever.
    loop {
        assert!(Instant::now() < end, "send to a dead peer never failed");
        if a.send(&frame(1)).is_err() {
            break;
        }
    }
    // Poisoned: every further operation fails immediately with the same
    // terminal class, and rejected sends are counted.
    assert!(a.send(&frame(2)).is_err());
    assert!(a.send(&frame(3)).is_err());
    assert!(a.broken_cause().is_some(), "cause recorded");
    let named = a.stats().named();
    let rejected = named
        .iter()
        .find(|(k, _)| *k == "net.tunnel.rejected_sends")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(rejected >= 2, "rejected_sends={rejected}");
}

/// Regression (stalled peer): a peer that stops reading must not block
/// `send` forever holding the writer lock — the write timeout poisons the
/// tunnel instead.
#[test]
fn tcp_stalled_peer_trips_write_timeout_not_a_hang() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    // The peer is a raw socket nobody ever reads — a genuinely stalled
    // consumer (a tunnel peer would drain the socket from its reader
    // thread and the write would never block).
    let _stalled_peer = TcpStream::connect(addr).expect("connect");
    let (server, _) = listener.accept().expect("accept");
    let a = TcpTunnel::from_stream_with(
        server,
        TunnelConfig {
            write_timeout: Duration::from_millis(200),
        },
    )
    .expect("tunnel");
    // Big frames fill both kernel socket buffers quickly.
    let big = Frame::typhoon(
        MacAddr::worker(1, TaskId(1)),
        MacAddr::worker(1, TaskId(2)),
        Bytes::from(vec![0u8; 1 << 20]),
    );
    let end = Instant::now() + Duration::from_secs(30);
    let err = loop {
        assert!(
            Instant::now() < end,
            "send never failed against a stalled peer"
        );
        if let Err(e) = a.send(&big) {
            break e;
        }
    };
    match err {
        NetError::Broken(TeardownCause::WriteTimeout) | NetError::Broken(TeardownCause::Io) => {}
        other => panic!("expected a write-timeout/io teardown, got {other:?}"),
    }
    // Fail-fast from here on.
    let t0 = Instant::now();
    assert!(a.send(&big).is_err());
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "poisoned send must not touch the socket"
    );
}

/// Regression (silent reader teardown): a corrupt length prefix must
/// surface as a typed error with its teardown counted, not a silent stop.
#[test]
fn tcp_corrupt_length_prefix_is_a_typed_teardown() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let raw = TcpStream::connect(addr).expect("connect");
    let (server, _) = listener.accept().expect("accept");
    let tunnel = TcpTunnel::from_stream(server).expect("tunnel");
    // A length prefix far beyond the frame bound: the stream is garbage.
    use std::io::Write;
    (&raw).write_all(&u32::MAX.to_be_bytes()).expect("write");
    let err = drain_then_expect_error(&tunnel, 0, Duration::from_secs(10));
    assert_eq!(err, NetError::Broken(TeardownCause::CorruptLength));
    let named = tunnel.stats().named();
    let count = named
        .iter()
        .find(|(k, _)| *k == "net.tunnel.teardown.corrupt_len")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert_eq!(count, 1);
}

/// Regression (silent reader teardown): an undecodable frame body must
/// surface as a typed error too.
#[test]
fn tcp_undecodable_body_is_a_typed_teardown() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let raw = TcpStream::connect(addr).expect("connect");
    let (server, _) = listener.accept().expect("accept");
    let tunnel = TcpTunnel::from_stream(server).expect("tunnel");
    use std::io::Write;
    // Plausible length, garbage body (shorter than an Ethernet header).
    (&raw).write_all(&10u32.to_be_bytes()).expect("len");
    (&raw).write_all(&[0xab; 10]).expect("body");
    let err = drain_then_expect_error(&tunnel, 0, Duration::from_secs(10));
    assert_eq!(err, NetError::Broken(TeardownCause::DecodeError));
    let named = tunnel.stats().named();
    let count = named
        .iter()
        .find(|(k, _)| *k == "net.tunnel.teardown.decode_error")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert_eq!(count, 1);
}

/// Frames that arrived before a mid-stream fault stay deliverable; the
/// typed error surfaces only after the drain (the contract, on TCP, with
/// a *dirty* teardown).
#[test]
fn tcp_good_frames_before_corruption_still_deliver() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let raw = TcpStream::connect(addr).expect("connect");
    let (server, _) = listener.accept().expect("accept");
    let tunnel = TcpTunnel::from_stream(server).expect("tunnel");
    use std::io::Write;
    let good = frame(7).encode();
    (&raw)
        .write_all(&(good.len() as u32).to_be_bytes())
        .expect("len");
    (&raw).write_all(&good).expect("body");
    (&raw)
        .write_all(&u32::MAX.to_be_bytes())
        .expect("corrupt len");
    let err = drain_then_expect_error(&tunnel, 1, Duration::from_secs(10));
    assert_eq!(err, NetError::Broken(TeardownCause::CorruptLength));
}

// ----------------------------------------- batched ring ops vs. close

/// The PR-3 contract, batch edition: every frame `push_batch` reported
/// enqueued before the producer dropped is delivered by `pop_batch`
/// before `Disconnected` — partial drains included, nothing lost from a
/// half-consumed batch.
#[test]
fn ring_batched_producer_drop_loses_nothing() {
    const N: usize = 500;
    let (tx, rx) = typhoon_net::ring(2 * N);
    let sender = std::thread::spawn(move || {
        let mut sent = 0usize;
        while sent < N {
            let chunk = (N - sent).min(8);
            let mut batch: Vec<Frame> = (0..chunk)
                .map(|i| frame(((sent + i) % 251) as u8))
                .collect();
            let res = tx.push_batch(&mut batch);
            assert!(!res.disconnected, "receiver never closes in this test");
            assert_eq!(res.dropped, 0, "ring sized to avoid overflow");
            sent += res.enqueued;
        }
        // tx drops here: peer-close while the receiver is mid-drain.
    });
    let end = Instant::now() + Duration::from_secs(30);
    let mut got = 0usize;
    let mut out: Vec<Frame> = Vec::new();
    loop {
        assert!(Instant::now() < end, "receiver hung at {got}/{N}");
        out.clear();
        match rx.pop_batch(&mut out, 7) {
            Ok(0) => std::thread::yield_now(),
            Ok(n) => got += n,
            Err(e) => {
                assert_eq!(e, NetError::Disconnected);
                break;
            }
        }
    }
    sender.join().expect("sender");
    assert_eq!(got, N, "frames lost around the close");
    // And it stays terminal.
    assert!(rx.pop_batch(&mut out, 7).is_err());
}

/// A `push_batch` racing the consumer's close must account for every
/// frame: enqueued, dropped-on-overflow, or left in the caller's vector —
/// none silently vanish, and the disconnect stays sticky.
#[test]
fn ring_push_batch_vs_concurrent_close_keeps_exact_accounting() {
    let (tx, rx) = typhoon_net::ring(64);
    let producer = std::thread::spawn(move || {
        let mut enqueued = 0usize;
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            assert!(Instant::now() < deadline, "producer never saw the close");
            let mut batch: Vec<Frame> = (0..8).map(|i| frame(i as u8)).collect();
            let res = tx.push_batch(&mut batch);
            enqueued += res.enqueued;
            if res.disconnected {
                assert_eq!(
                    res.enqueued + res.dropped + batch.len(),
                    8,
                    "a frame was neither enqueued, dropped, nor returned"
                );
                // Sticky: a later batch is refused whole.
                let mut again = vec![frame(0)];
                let res2 = tx.push_batch(&mut again);
                assert!(res2.disconnected);
                assert_eq!(again.len(), 1, "refused frames stay with the caller");
                return enqueued;
            }
            assert!(
                batch.is_empty(),
                "fully consumed batches leave nothing behind"
            );
        }
    });
    // Drain a couple of batches, then close mid-stream.
    let mut out: Vec<Frame> = Vec::new();
    let mut got = 0usize;
    let end = Instant::now() + Duration::from_secs(30);
    while got < 16 {
        assert!(Instant::now() < end, "receiver hung before the close");
        out.clear();
        match rx.pop_batch(&mut out, 8) {
            Ok(n) => got += n,
            Err(_) => break,
        }
    }
    rx.close();
    let enqueued = producer.join().expect("producer");
    // Whatever is still queued is everything enqueued minus what we read.
    assert!(enqueued >= got, "cannot deliver more than was enqueued");
}

/// Multi-thread close/drain stress across the ring + tunnel stack is in
/// `typhoon_net::ring` unit tests; here pin that a tunnel driven from two
/// threads (sender thread + receiving drainer) delivers everything sent
/// before a deliberate drop, on every implementation.
type TunnelPair = (Box<dyn Tunnel + Send>, Box<dyn Tunnel + Send>);
type MakePair = Box<dyn FnOnce() -> TunnelPair>;

#[test]
fn threaded_sender_drop_loses_nothing_across_impls() {
    let make_pairs: Vec<(&str, MakePair)> = vec![
        (
            "in-memory",
            Box::new(|| {
                let (a, b) = InMemoryTunnel::pair();
                (Box::new(a) as _, Box::new(b) as _)
            }),
        ),
        (
            "tcp",
            Box::new(|| {
                let (a, b) = TcpTunnel::pair().expect("pair");
                (Box::new(a) as _, Box::new(b) as _)
            }),
        ),
        (
            "fault-injector",
            Box::new(|| {
                let (a, b) = InMemoryTunnel::pair();
                let (ia, _h) = FaultInjector::wrap(Box::new(a), FaultPlan::clean(3));
                (Box::new(ia) as _, Box::new(b) as _)
            }),
        ),
    ];
    for (name, make) in make_pairs {
        let (a, b) = make();
        const N: usize = 500;
        let sender = std::thread::spawn(move || {
            for i in 0..N {
                a.send(&frame((i % 251) as u8)).expect("send");
            }
            // a drops here: peer-close while the receiver is mid-drain.
        });
        let end = Instant::now() + Duration::from_secs(30);
        let mut got = 0;
        let terminal = loop {
            assert!(Instant::now() < end, "[{name}] receiver hung at {got}/{N}");
            match b.try_recv() {
                Ok(Some(_)) => got += 1,
                Ok(None) => std::thread::yield_now(),
                Err(e) => break e,
            }
        };
        sender.join().expect("sender");
        assert_eq!(got, N, "[{name}] frames lost around the close");
        assert_eq!(terminal, NetError::Disconnected, "[{name}]");
    }
}
