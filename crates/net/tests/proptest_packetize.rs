//! Property tests for the packetization layer: arbitrary tuple blobs over
//! arbitrary MTUs always round-trip in order and within the MTU bound, and
//! the reassembler never panics on hostile frames.

use bytes::Bytes;
use proptest::prelude::*;
use typhoon_net::{Depacketizer, Frame, MacAddr, Packetizer};
use typhoon_tuple::tuple::TaskId;

fn src() -> MacAddr {
    MacAddr::worker(3, TaskId(1))
}

fn dst() -> MacAddr {
    MacAddr::worker(3, TaskId(2))
}

proptest! {
    #[test]
    fn pack_unpack_roundtrips_any_blobs(
        blobs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..4096),
            0..32
        ),
        mtu in 64usize..4096,
    ) {
        let blobs: Vec<Bytes> = blobs.into_iter().map(Bytes::from).collect();
        let p = Packetizer::new(mtu);
        let frames = p.pack(src(), dst(), &blobs);
        for f in &frames {
            prop_assert!(f.wire_len() <= mtu, "frame {} > mtu {mtu}", f.wire_len());
        }
        let mut d = Depacketizer::new();
        let mut out = Vec::new();
        for f in &frames {
            out.extend(d.push(f).expect("well-formed frames reassemble"));
        }
        prop_assert_eq!(d.pending_sources(), 0);
        prop_assert_eq!(out.len(), blobs.len());
        for ((from, got), want) in out.iter().zip(blobs.iter()) {
            prop_assert_eq!(*from, src());
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn depacketizer_never_panics_on_garbage(
        payload in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        let frame = Frame::typhoon(src(), dst(), Bytes::from(payload));
        let mut d = Depacketizer::new();
        let _ = d.push(&frame); // Err is fine; panic is not
    }

    #[test]
    fn frame_codec_roundtrips(
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        src_mac in any::<[u8; 6]>(),
        dst_mac in any::<[u8; 6]>(),
        ethertype in any::<u16>(),
        trace in any::<u64>(),
    ) {
        let f = Frame {
            src: MacAddr(src_mac),
            dst: MacAddr(dst_mac),
            ethertype,
            trace,
            payload: Bytes::from(payload),
        };
        let decoded = Frame::decode(f.encode()).expect("roundtrip");
        prop_assert_eq!(decoded, f);
    }

    #[test]
    fn interleaving_many_sources_reassembles_each(
        a in proptest::collection::vec(any::<u8>(), 200..900),
        b in proptest::collection::vec(any::<u8>(), 200..900),
        c in proptest::collection::vec(any::<u8>(), 200..900),
    ) {
        let p = Packetizer::new(128);
        let sources = [
            (MacAddr::worker(1, TaskId(1)), Bytes::from(a)),
            (MacAddr::worker(1, TaskId(2)), Bytes::from(b)),
            (MacAddr::worker(1, TaskId(3)), Bytes::from(c)),
        ];
        let mut streams: Vec<Vec<Frame>> = sources
            .iter()
            .map(|(mac, blob)| p.pack(*mac, dst(), std::slice::from_ref(blob)))
            .collect();
        // Round-robin interleave the three segment streams.
        let mut d = Depacketizer::new();
        let mut done: Vec<(MacAddr, Bytes)> = Vec::new();
        loop {
            let mut any = false;
            for s in streams.iter_mut() {
                if !s.is_empty() {
                    any = true;
                    done.extend(d.push(&s.remove(0)).expect("segments"));
                }
            }
            if !any {
                break;
            }
        }
        prop_assert_eq!(done.len(), 3);
        for (mac, blob) in &sources {
            let got = done.iter().find(|(m, _)| m == mac).expect("source present");
            prop_assert_eq!(&got.1, blob);
        }
    }
}
