//! Tunnel stress: sustained bidirectional traffic over real TCP, many
//! frames in flight, mixed sizes — the REMOTE transport leg of every
//! cross-host experiment.

use bytes::Bytes;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_net::{Frame, MacAddr, TcpTunnel, Tunnel};
use typhoon_tuple::tuple::TaskId;

fn frame(seq: u32, len: usize) -> Frame {
    let mut payload = vec![(seq % 251) as u8; len.max(4)];
    payload[..4].copy_from_slice(&seq.to_be_bytes());
    Frame::typhoon(
        MacAddr::worker(1, TaskId(seq)),
        MacAddr::worker(1, TaskId(1)),
        Bytes::from(payload),
    )
}

fn seq_of(f: &Frame) -> u32 {
    u32::from_be_bytes(f.payload[..4].try_into().unwrap())
}

#[test]
fn bidirectional_stress_preserves_order_and_content() {
    const N: u32 = 20_000;
    let (a, b) = TcpTunnel::pair().unwrap();
    let a = Arc::new(a);
    let b = Arc::new(b);
    let stop = Arc::new(AtomicBool::new(false));

    // a → b: ascending sizes cycling 16..2048; b → a simultaneously.
    let senders: Vec<_> = [(a.clone(), "a"), (b.clone(), "b")]
        .into_iter()
        .map(|(endpoint, _)| {
            std::thread::spawn(move || {
                for i in 0..N {
                    let len = 16 + (i as usize * 37) % 2048;
                    while endpoint.send(&frame(i, len)).is_err() {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            })
        })
        .collect();

    let receivers: Vec<_> = [a.clone(), b.clone()]
        .into_iter()
        .map(|endpoint| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut expected = 0u32;
                let deadline = Instant::now() + Duration::from_secs(60);
                while expected < N {
                    assert!(Instant::now() < deadline, "stalled at {expected}");
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match endpoint.try_recv() {
                        Ok(Some(f)) => {
                            assert_eq!(seq_of(&f), expected, "order broke");
                            let want_len = (16 + (expected as usize * 37) % 2048).max(4);
                            assert_eq!(f.payload.len(), want_len, "length mangled");
                            expected += 1;
                        }
                        Ok(None) => std::thread::sleep(Duration::from_micros(20)),
                        Err(e) => panic!("tunnel died at {expected}: {e}"),
                    }
                }
                expected
            })
        })
        .collect();

    for s in senders {
        s.join().unwrap();
    }
    for r in receivers {
        assert_eq!(r.join().unwrap(), N);
    }
}
