//! Regression test for the lock-poisoning failure mode the DiagMutex
//! migration removes: a session thread that panics while talking to the
//! store must not wedge every other client of the shared tree.

use std::sync::Arc;
use std::time::Duration;
use typhoon_coordinator::{Coordinator, CreateMode};

#[test]
fn panicked_session_thread_does_not_block_store() {
    let coord = Coordinator::new();
    coord.ensure_path("/jobs").expect("setup");

    // A worker thread panics mid-interaction with the store. With a
    // poisoning mutex this would leave the tree unusable for everyone.
    let c = coord.clone();
    let crashed = std::thread::spawn(move || {
        c.create("/jobs/doomed", b"x".to_vec(), CreateMode::Persistent)
            .expect("create");
        panic!("worker dies after touching the store");
    })
    .join();
    assert!(crashed.is_err(), "worker thread must have panicked");

    // Every store operation still works from other threads.
    assert!(coord.exists("/jobs/doomed"));
    coord
        .create("/jobs/alive", b"y".to_vec(), CreateMode::Persistent)
        .expect("store must accept writes after a client panic");
    assert_eq!(coord.get("/jobs/alive").expect("get").0, b"y");
    coord.delete("/jobs/doomed").expect("delete");

    // Sessions and watches keep functioning too.
    let rx = coord.watch("/jobs");
    let sid = coord.create_session();
    coord
        .create("/jobs/eph", vec![], CreateMode::Ephemeral(sid))
        .expect("ephemeral create");
    coord.close_session(sid);
    assert!(!coord.exists("/jobs/eph"));
    let events: Vec<_> = rx.try_iter().collect();
    assert!(
        events.len() >= 2,
        "watches must still deliver after a client panic: {events:?}"
    );

    // And a panic *inside* many concurrent clients leaves the tree sound.
    let coord = Arc::new(coord);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let c = Arc::clone(&coord);
            std::thread::spawn(move || {
                for n in 0..50 {
                    let path = format!("/jobs/t{i}-{n}");
                    c.create(&path, vec![], CreateMode::Persistent).unwrap();
                    if n == 25 && i == 0 {
                        panic!("one client dies halfway");
                    }
                }
            })
        })
        .collect();
    let panics: usize = handles
        .into_iter()
        .map(|h| usize::from(h.join().is_err()))
        .sum();
    assert_eq!(panics, 1, "exactly the injected panic");
    assert!(
        coord.exists("/jobs/t1-49"),
        "other clients ran to completion"
    );
    assert_eq!(coord.session_count(), 0);
    // The store still answers within a bounded time (no deadlock).
    let c = Arc::clone(&coord);
    let probe = std::thread::spawn(move || c.children("/jobs").map(|v| v.len()));
    std::thread::sleep(Duration::from_millis(200)); // LINT: allow-sleep(test gives the probe thread time to complete)
    assert!(probe.is_finished(), "store answered promptly after panics");
    assert!(probe.join().expect("probe thread").expect("children") >= 150);
}
