//! Property tests on the znode store: random operation sequences keep the
//! tree consistent (parents exist, children lists match, versions grow),
//! and the typed codecs round-trip arbitrary topologies.

use proptest::prelude::*;
use typhoon_coordinator::global::{
    decode_logical, decode_physical, encode_logical, encode_physical,
};
use typhoon_coordinator::{CoordError, Coordinator, CreateMode};
use typhoon_model::{
    AppId, Fields, Grouping, HostId, LogicalTopology, PhysicalTopology, TaskAssignment,
};
use typhoon_tuple::tuple::TaskId;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Set(u8),
    Delete(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..12).prop_map(Op::Create),
            (0u8..12).prop_map(Op::Set),
            (0u8..12).prop_map(Op::Delete),
        ],
        0..60,
    )
}

/// A small fixed path universe with nesting: /n0../n3 at the root, each
/// with children /nX/c0../c2.
fn path_for(i: u8) -> String {
    let parent = i % 4;
    if i < 4 {
        format!("/n{parent}")
    } else {
        format!("/n{parent}/c{}", (i - 4) % 3)
    }
}

proptest! {
    #[test]
    fn random_op_sequences_keep_the_tree_consistent(ops in arb_ops()) {
        let c = Coordinator::new();
        let mut model: std::collections::HashMap<String, u64> =
            std::collections::HashMap::new(); // path -> version
        for op in ops {
            match op {
                Op::Create(i) => {
                    let path = path_for(i);
                    let parent_exists = match path.rfind('/') {
                        Some(0) => true,
                        Some(k) => model.contains_key(&path[..k]),
                        None => false,
                    };
                    let result = c.create(&path, vec![i], CreateMode::Persistent);
                    match model.entry(path) {
                        std::collections::hash_map::Entry::Occupied(_) => {
                            prop_assert!(matches!(result, Err(CoordError::NodeExists(_))));
                        }
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            if parent_exists {
                                prop_assert!(result.is_ok());
                                slot.insert(1);
                            } else {
                                prop_assert!(matches!(result, Err(CoordError::NoParent(_))));
                            }
                        }
                    }
                }
                Op::Set(i) => {
                    let path = path_for(i);
                    let result = c.set(&path, vec![i, i], None);
                    match model.get_mut(&path) {
                        Some(v) => {
                            *v += 1;
                            prop_assert_eq!(result.unwrap(), *v);
                        }
                        None => prop_assert!(matches!(result, Err(CoordError::NoNode(_)))),
                    }
                }
                Op::Delete(i) => {
                    let path = path_for(i);
                    let has_children = model
                        .keys()
                        .any(|k| k.starts_with(&format!("{path}/")));
                    let result = c.delete(&path);
                    if !model.contains_key(&path) {
                        prop_assert!(matches!(result, Err(CoordError::NoNode(_))));
                    } else if has_children {
                        prop_assert!(result.is_err(), "non-empty delete must fail");
                    } else {
                        prop_assert!(result.is_ok());
                        model.remove(&path);
                    }
                }
            }
        }
        // Final consistency: the store agrees with the model exactly.
        for (path, version) in &model {
            let (_, stat) = c.get(path).expect("modelled node exists");
            prop_assert_eq!(stat.version, *version);
        }
        for i in 0..12u8 {
            let path = path_for(i);
            prop_assert_eq!(c.exists(&path), model.contains_key(&path));
        }
    }

    #[test]
    fn logical_codec_roundtrips_arbitrary_pipelines(
        layers in proptest::collection::vec((1usize..6, 0u8..5), 1..6),
        stateful_mask in any::<u8>(),
    ) {
        let mut b = LogicalTopology::builder("p")
            .spout("l0", "spout-comp", 1, Fields::new(["a", "b", "c"]));
        let mut prev = "l0".to_owned();
        for (i, (par, gtag)) in layers.into_iter().enumerate() {
            let name = format!("l{}", i + 1);
            let grouping = match gtag {
                0 => Grouping::Shuffle,
                1 => Grouping::Fields(vec!["a".into(), "c".into()]),
                2 => Grouping::Global,
                3 => Grouping::All,
                _ => Grouping::SdnOffloaded,
            };
            b = b
                .bolt_with_state(
                    &name,
                    &format!("comp-{i}"),
                    par,
                    Fields::new(["a", "b", "c"]),
                    stateful_mask & (1 << (i % 8)) != 0,
                )
                .edge(&prev, &name, grouping);
            prev = name;
        }
        let topo = b.build().unwrap();
        let decoded = decode_logical(&encode_logical(&topo)).expect("roundtrip");
        prop_assert_eq!(decoded.name, topo.name);
        prop_assert_eq!(decoded.nodes.len(), topo.nodes.len());
        for (a, b) in decoded.nodes.iter().zip(topo.nodes.iter()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.component, &b.component);
            prop_assert_eq!(a.parallelism, b.parallelism);
            prop_assert_eq!(a.stateful, b.stateful);
        }
        for (a, b) in decoded.edges.iter().zip(topo.edges.iter()) {
            prop_assert_eq!(&a.grouping, &b.grouping);
        }
    }

    #[test]
    fn physical_codec_roundtrips_arbitrary_assignments(
        assignments in proptest::collection::vec(
            (any::<u32>(), ".{0,12}", ".{0,12}", any::<u32>(), any::<u32>()),
            0..32
        ),
        app in any::<u16>(),
        version in any::<u64>(),
        watermark in any::<u32>(),
    ) {
        let phys = PhysicalTopology {
            app: AppId(app),
            name: "arb".into(),
            version,
            task_watermark: watermark,
            assignments: assignments
                .into_iter()
                .map(|(task, node, component, host, port)| TaskAssignment {
                    task: TaskId(task),
                    node,
                    component,
                    host: HostId(host),
                    switch_port: port,
                })
                .collect(),
        };
        let decoded = decode_physical(&encode_physical(&phys)).expect("roundtrip");
        prop_assert_eq!(decoded.app, phys.app);
        prop_assert_eq!(decoded.version, phys.version);
        prop_assert_eq!(decoded.task_watermark, phys.task_watermark);
        prop_assert_eq!(decoded.assignments, phys.assignments);
    }

    #[test]
    fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_logical(&bytes);
        let _ = decode_physical(&bytes);
    }
}
