//! Watch events and subscriptions.
//!
//! Watches are how the coordinator "notifies the worker agents of any new
//! worker assignment by the scheduler" (§2) and how the SDN controller and
//! agents learn about reconfigurations (§3.2 step (iii)). Unlike classic
//! ZooKeeper one-shot watches, subscriptions here are persistent prefix
//! watches — simpler for subscribers and strictly more informative.

use crossbeam::channel::{unbounded, Receiver, Sender};

/// What happened to a znode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchKind {
    /// The node was created.
    Created,
    /// The node's data changed.
    DataChanged,
    /// The node was deleted (explicitly, or by session expiry for
    /// ephemerals).
    Deleted,
}

/// A change notification for one znode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// Full path of the affected node.
    pub path: String,
    /// What happened.
    pub kind: WatchKind,
    /// The node's version after the change (0 for deletions).
    pub version: u64,
}

/// One registered subscription: every event whose path starts with `prefix`
/// is cloned into `tx`. Dead receivers are garbage-collected on delivery.
#[derive(Debug)]
pub(crate) struct Subscription {
    pub(crate) prefix: String,
    pub(crate) tx: Sender<WatchEvent>,
}

/// The subscription table shared by the store.
#[derive(Debug, Default)]
pub(crate) struct WatchTable {
    subs: Vec<Subscription>,
}

impl WatchTable {
    /// Registers a prefix watch and returns its event receiver.
    pub(crate) fn subscribe(&mut self, prefix: &str) -> Receiver<WatchEvent> {
        let (tx, rx) = unbounded(); // LINT: allow-unbounded(watch events are low-rate control-plane traffic; dropping notifications would break session semantics)
        self.subs.push(Subscription {
            prefix: prefix.to_owned(),
            tx,
        });
        rx
    }

    /// Delivers `event` to every live subscriber whose prefix matches.
    pub(crate) fn deliver(&mut self, event: &WatchEvent) {
        self.subs
            .retain(|s| !event.path.starts_with(&s.prefix) || s.tx.send(event.clone()).is_ok());
    }

    /// Number of live subscriptions (test hook).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.subs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(path: &str, kind: WatchKind) -> WatchEvent {
        WatchEvent {
            path: path.to_owned(),
            kind,
            version: 1,
        }
    }

    #[test]
    fn prefix_matching_delivers_only_matching_paths() {
        let mut table = WatchTable::default();
        let rx = table.subscribe("/topologies/");
        table.deliver(&ev("/topologies/wc/logical", WatchKind::Created));
        table.deliver(&ev("/agents/h0", WatchKind::Created));
        let got: Vec<_> = rx.try_iter().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].path, "/topologies/wc/logical");
    }

    #[test]
    fn dropped_receivers_are_garbage_collected() {
        let mut table = WatchTable::default();
        let rx = table.subscribe("/a");
        drop(rx);
        table.deliver(&ev("/a/x", WatchKind::Deleted));
        assert_eq!(table.len(), 0);
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let mut table = WatchTable::default();
        let rx1 = table.subscribe("/");
        let rx2 = table.subscribe("/");
        table.deliver(&ev("/x", WatchKind::DataChanged));
        assert_eq!(rx1.try_iter().count(), 1);
        assert_eq!(rx2.try_iter().count(), 1);
    }

    #[test]
    fn non_matching_subscriber_survives_delivery() {
        let mut table = WatchTable::default();
        let _rx = table.subscribe("/b");
        table.deliver(&ev("/a", WatchKind::Created));
        assert_eq!(table.len(), 1);
    }
}
