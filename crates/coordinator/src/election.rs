//! Leader election for the replicated SDN controller.
//!
//! The ZooKeeper-style recipe: a candidate CAS-increments a persistent
//! *term* counter to reserve a unique term, then races to create one
//! ephemeral *leader* znode carrying `(candidate, term)`. Exactly one
//! create wins; everyone else watches the leader node and re-campaigns
//! when its `Deleted` event arrives (session close or expiry removes the
//! ephemeral). Because a term is reserved by a compare-and-set before the
//! leader node is created, **at most one leader ever exists per term** —
//! the invariant the `typhoon-check` election kernel explores schedules
//! against — and a term read from the store is a fencing token: a switch
//! can reject a reconnect from a stale leader by comparing terms.
//!
//! Watches in this coordinator are *persistent prefix* watches
//! (registered in the coordinator's watch table, independent of any
//! session), so a watch armed before the watching replica's own session
//! hiccup keeps firing afterwards; the tests below pin that down.

use crate::store::{Coordinator, CreateMode};
use crate::wire::{Reader, Writer};
use crate::{CoordError, Result, SessionId, WatchEvent};
use crossbeam::channel::Receiver;

/// Default election prefix under the coordinator root.
pub const ELECTION_PREFIX: &str = "/typhoon/election";

/// The elected leader as recorded in the leader znode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaderInfo {
    /// Candidate name (e.g. `controller-1`).
    pub candidate: String,
    /// The term this leader reserved; strictly increasing across
    /// successive leaders.
    pub term: u64,
}

/// Watch-based leader election over a coordinator prefix.
#[derive(Clone)]
pub struct LeaderElection {
    coord: Coordinator,
    prefix: String,
}

impl LeaderElection {
    /// An election at the default prefix ([`ELECTION_PREFIX`]).
    pub fn new(coord: Coordinator) -> Self {
        Self::with_prefix(coord, ELECTION_PREFIX)
    }

    /// An election at a custom prefix (tests, multiple domains).
    pub fn with_prefix(coord: Coordinator, prefix: &str) -> Self {
        LeaderElection {
            coord,
            prefix: prefix.to_owned(),
        }
    }

    fn leader_path(&self) -> String {
        format!("{}/leader", self.prefix)
    }

    fn term_path(&self) -> String {
        format!("{}/term", self.prefix)
    }

    /// Campaigns once: reserves a fresh term via compare-and-set, then
    /// tries to create the ephemeral leader node. Returns `Ok(Some(term))`
    /// if this candidate became leader, `Ok(None)` if another candidate
    /// holds (or won) the leadership.
    pub fn try_acquire(&self, session: SessionId, candidate: &str) -> Result<Option<u64>> {
        self.coord.ensure_path(&self.prefix)?;
        if self.coord.exists(&self.leader_path()) {
            return Ok(None);
        }
        let term = self.reserve_term()?;
        let mut w = Writer::new();
        w.str(candidate);
        w.u64(term);
        match self
            .coord
            .create(&self.leader_path(), w.buf, CreateMode::Ephemeral(session))
        {
            Ok(()) => Ok(Some(term)),
            // Another candidate created the node between our existence
            // check and our create: we lost; the reserved term is burnt
            // (terms are unique, not dense).
            Err(CoordError::NodeExists(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Reserves the next term with a CAS loop on the term counter. This
    /// read-version/CAS-write dance (instead of read-then-blind-write) is
    /// exactly what makes terms unique under concurrent campaigns — the
    /// pre-fix variant in `typhoon-check`'s election kernel shows the
    /// lost-update race a blind write reintroduces.
    fn reserve_term(&self) -> Result<u64> {
        loop {
            let path = self.term_path();
            if !self.coord.exists(&path) {
                let mut w = Writer::new();
                w.u64(0);
                match self.coord.create(&path, w.buf, CreateMode::Persistent) {
                    Ok(()) | Err(CoordError::NodeExists(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            let (data, stat) = self.coord.get(&path)?;
            let mut r = Reader::new(&data, "election term");
            let current = r.u64()?;
            r.finish()?;
            let next = current + 1;
            let mut w = Writer::new();
            w.u64(next);
            match self.coord.set(&path, w.buf, Some(stat.version)) {
                Ok(_) => return Ok(next),
                Err(CoordError::BadVersion { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The current leader, if any.
    pub fn leader(&self) -> Option<LeaderInfo> {
        let (data, _) = self.coord.get(&self.leader_path()).ok()?;
        let mut r = Reader::new(&data, "election leader");
        let candidate = r.str().ok()?;
        let term = r.u64().ok()?;
        Some(LeaderInfo { candidate, term })
    }

    /// The highest term reserved so far (0 before any campaign).
    pub fn current_term(&self) -> u64 {
        self.coord
            .get(&self.term_path())
            .ok()
            .and_then(|(data, _)| {
                let mut r = Reader::new(&data, "election term");
                r.u64().ok()
            })
            .unwrap_or(0)
    }

    /// A persistent watch on the leader node: `Created` fires when a
    /// leader wins, `Deleted` when leadership is vacated (resign, session
    /// close, session expiry). The watch outlives any session — re-arming
    /// after a reconnect is not required.
    pub fn watch(&self) -> Receiver<WatchEvent> {
        self.coord.watch(&self.leader_path())
    }

    /// Voluntarily gives up leadership by deleting the leader node (the
    /// watch delivers `Deleted` to every follower). No-op if the node is
    /// already gone.
    pub fn resign(&self) {
        let _ = self.coord.delete(&self.leader_path());
    }

    /// The underlying coordinator (e.g. for session management).
    pub fn coordinator(&self) -> &Coordinator {
        &self.coord
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WatchKind;
    use std::time::Duration;

    fn setup() -> (Coordinator, LeaderElection) {
        let coord = Coordinator::new();
        let election = LeaderElection::with_prefix(coord.clone(), "/typhoon/test-election");
        (coord, election)
    }

    #[test]
    fn first_candidate_wins_term_one() {
        let (coord, election) = setup();
        let sid = coord.create_session();
        let term = election.try_acquire(sid, "ctl-0").unwrap();
        assert_eq!(term, Some(1));
        let info = election.leader().unwrap();
        assert_eq!(info.candidate, "ctl-0");
        assert_eq!(info.term, 1);
    }

    #[test]
    fn second_candidate_loses_while_leader_holds() {
        let (coord, election) = setup();
        let sid0 = coord.create_session();
        let sid1 = coord.create_session();
        assert_eq!(election.try_acquire(sid0, "ctl-0").unwrap(), Some(1));
        assert_eq!(election.try_acquire(sid1, "ctl-1").unwrap(), None);
        // The loser's campaign burnt no term (it bailed on the existence
        // check before reserving).
        assert_eq!(election.current_term(), 1);
    }

    #[test]
    fn session_close_vacates_leadership_and_next_term_is_higher() {
        let (coord, election) = setup();
        let sid0 = coord.create_session();
        let sid1 = coord.create_session();
        assert_eq!(election.try_acquire(sid0, "ctl-0").unwrap(), Some(1));
        coord.close_session(sid0);
        assert!(election.leader().is_none());
        let term = election.try_acquire(sid1, "ctl-1").unwrap();
        assert_eq!(term, Some(2));
        assert_eq!(election.leader().unwrap().candidate, "ctl-1");
    }

    #[test]
    fn session_expiry_vacates_leadership() {
        let (coord, election) = setup();
        let sid0 = coord.create_session();
        assert_eq!(election.try_acquire(sid0, "ctl-0").unwrap(), Some(1));
        // Nobody heartbeats sid0; an expiry sweep with a zero timeout
        // reaps it and the ephemeral leader node with it.
        std::thread::sleep(Duration::from_millis(5));
        let expired = coord.expire_stale_sessions(Duration::from_millis(1));
        assert!(expired.contains(&sid0));
        assert!(election.leader().is_none());
    }

    #[test]
    fn watch_fires_created_then_deleted_across_leader_change() {
        let (coord, election) = setup();
        let watch = election.watch();
        let sid0 = coord.create_session();
        assert_eq!(election.try_acquire(sid0, "ctl-0").unwrap(), Some(1));
        let ev = watch.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(ev.kind, WatchKind::Created);
        coord.close_session(sid0);
        let ev = watch.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(ev.kind, WatchKind::Deleted);
    }

    /// Satellite coverage: a watch armed *before* the watching replica's
    /// session drops keeps firing afterwards — coordinator watches are
    /// persistent prefix registrations, not session-scoped one-shots, so
    /// a reconnecting replica does not miss the leadership change that
    /// happened while its own session was being replaced.
    #[test]
    fn watch_survives_watcher_session_drop_and_reconnect() {
        let (coord, election) = setup();
        // Replica B arms its watch, then loses its session.
        let sid_b = coord.create_session();
        let watch_b = election.watch();
        coord.close_session(sid_b);
        let _sid_b2 = coord.create_session(); // reconnect

        // Replica A wins and then dies; B's pre-drop watch must deliver
        // both transitions.
        let sid_a = coord.create_session();
        assert_eq!(election.try_acquire(sid_a, "ctl-a").unwrap(), Some(1));
        let ev = watch_b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(ev.kind, WatchKind::Created);
        coord.close_session(sid_a);
        let ev = watch_b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(ev.kind, WatchKind::Deleted);
    }

    /// Satellite coverage: a freshly re-armed watch after reconnect sees
    /// subsequent leadership changes (the re-registration path a real
    /// ZooKeeper client would take).
    #[test]
    fn rearmed_watch_after_reconnect_sees_next_election() {
        let (coord, election) = setup();
        let sid_b = coord.create_session();
        let watch_old = election.watch();
        coord.close_session(sid_b);
        drop(watch_old); // client discards the old registration
        let _sid_b2 = coord.create_session();
        let watch_new = election.watch(); // re-armed after reconnect

        let sid_a = coord.create_session();
        assert_eq!(election.try_acquire(sid_a, "ctl-a").unwrap(), Some(1));
        let ev = watch_new.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(ev.kind, WatchKind::Created);
        assert_eq!(ev.path, "/typhoon/test-election/leader");
    }

    #[test]
    fn concurrent_campaigns_yield_unique_terms() {
        // Hammer the CAS loop from many threads across repeated
        // vacancies: every successful acquisition must carry a distinct
        // term (the at-most-one-leader-per-term invariant).
        let (coord, election) = setup();
        let mut claimed = Vec::new();
        for _round in 0..8 {
            let mut handles = Vec::new();
            for t in 0..4 {
                let coord = coord.clone();
                let election = election.clone();
                handles.push(std::thread::spawn(move || {
                    let sid = coord.create_session();
                    election.try_acquire(sid, &format!("ctl-{t}")).unwrap()
                }));
            }
            let winners: Vec<u64> = handles
                .into_iter()
                .filter_map(|h| h.join().unwrap())
                .collect();
            assert!(winners.len() <= 1, "two leaders in one round: {winners:?}");
            claimed.extend(winners);
            election.resign();
        }
        let mut dedup = claimed.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), claimed.len(), "terms not unique: {claimed:?}");
    }

    #[test]
    fn resign_allows_recampaign() {
        let (coord, election) = setup();
        let sid = coord.create_session();
        assert_eq!(election.try_acquire(sid, "ctl-0").unwrap(), Some(1));
        election.resign();
        assert_eq!(election.try_acquire(sid, "ctl-0").unwrap(), Some(2));
    }
}
