//! Typed accessors for the Table 1 global states.
//!
//! | state | path |
//! |---|---|
//! | logical topology | `/typhoon/topologies/<name>/logical` |
//! | physical topology | `/typhoon/topologies/<name>/physical` |
//! | worker agents | `/typhoon/agents/<hostname>` (ephemeral) |
//!
//! The writers/readers discipline of Table 1 is enforced socially, not
//! mechanically (as with real ZooKeeper): the streaming manager writes
//! topologies, worker agents write their own registration, and everyone
//! reads via watches.

use crate::store::{Coordinator, CreateMode};
use crate::wire::{Reader, Writer};
use crate::{CoordError, Result, SessionId, WatchEvent};
use crossbeam::channel::Receiver;
use typhoon_model::{
    AppId, EdgeSpec, Grouping, HostId, HostInfo, LogicalTopology, NodeKind, NodeSpec,
    PhysicalTopology, ReconfigOp, ReconfigRequest, TaskAssignment,
};
use typhoon_tuple::tuple::TaskId;
use typhoon_tuple::{Fields, StreamId};

/// Root of all Typhoon coordination state.
pub const ROOT: &str = "/typhoon";
/// Parent of per-topology state.
pub const TOPOLOGIES: &str = "/typhoon/topologies";
/// Parent of worker-agent registrations.
pub const AGENTS: &str = "/typhoon/agents";

/// Path of a topology's logical znode.
pub fn logical_path(name: &str) -> String {
    format!("{TOPOLOGIES}/{name}/logical")
}

/// Path of a topology's physical znode.
pub fn physical_path(name: &str) -> String {
    format!("{TOPOLOGIES}/{name}/physical")
}

/// Path of a worker agent's registration znode.
pub fn agent_path(host: &str) -> String {
    format!("{AGENTS}/{host}")
}

// ---------------------------------------------------------------- codecs

fn encode_grouping(w: &mut Writer, g: &Grouping) {
    match g {
        Grouping::Shuffle => w.u8(0),
        Grouping::Fields(keys) => {
            w.u8(1);
            w.u16(keys.len() as u16);
            for k in keys {
                w.str(k);
            }
        }
        Grouping::Global => w.u8(2),
        Grouping::All => w.u8(3),
        Grouping::SdnOffloaded => w.u8(4),
    }
}

fn decode_grouping(r: &mut Reader<'_>) -> Result<Grouping> {
    Ok(match r.u8()? {
        0 => Grouping::Shuffle,
        1 => {
            let n = r.u16()? as usize;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(r.str()?);
            }
            Grouping::Fields(keys)
        }
        2 => Grouping::Global,
        3 => Grouping::All,
        4 => Grouping::SdnOffloaded,
        _ => return Err(CoordError::Corrupt("grouping tag")),
    })
}

/// Encodes a logical topology to bytes (the stored representation).
pub fn encode_logical(t: &LogicalTopology) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(&t.name);
    w.u16(t.nodes.len() as u16);
    for n in &t.nodes {
        w.str(&n.name);
        w.u8(match n.kind {
            NodeKind::Spout => 0,
            NodeKind::Bolt => 1,
        });
        w.str(&n.component);
        w.u32(n.parallelism as u32);
        w.u16(n.output_fields.len() as u16);
        for f in n.output_fields.iter() {
            w.str(f);
        }
        w.u8(n.stateful as u8);
    }
    w.u16(t.edges.len() as u16);
    for e in &t.edges {
        w.str(&e.from);
        w.str(&e.to);
        w.u16(e.stream.0);
        encode_grouping(&mut w, &e.grouping);
    }
    w.buf
}

/// Decodes a logical topology from bytes.
pub fn decode_logical(bytes: &[u8]) -> Result<LogicalTopology> {
    let mut r = Reader::new(bytes, "logical topology");
    let name = r.str()?;
    let nnodes = r.u16()? as usize;
    let mut nodes = Vec::with_capacity(nnodes);
    for _ in 0..nnodes {
        let node_name = r.str()?;
        let kind = match r.u8()? {
            0 => NodeKind::Spout,
            1 => NodeKind::Bolt,
            _ => return Err(CoordError::Corrupt("node kind")),
        };
        let component = r.str()?;
        let parallelism = r.u32()? as usize;
        let nfields = r.u16()? as usize;
        let mut fields = Vec::with_capacity(nfields);
        for _ in 0..nfields {
            fields.push(r.str()?);
        }
        let stateful = r.u8()? != 0;
        nodes.push(NodeSpec {
            name: node_name,
            kind,
            component,
            parallelism,
            output_fields: Fields::new(fields),
            stateful,
        });
    }
    let nedges = r.u16()? as usize;
    let mut edges = Vec::with_capacity(nedges);
    for _ in 0..nedges {
        let from = r.str()?;
        let to = r.str()?;
        let stream = StreamId(r.u16()?);
        let grouping = decode_grouping(&mut r)?;
        edges.push(EdgeSpec {
            from,
            to,
            stream,
            grouping,
        });
    }
    r.finish()?;
    Ok(LogicalTopology { name, nodes, edges })
}

/// Encodes a physical topology to bytes.
pub fn encode_physical(t: &PhysicalTopology) -> Vec<u8> {
    let mut w = Writer::new();
    w.u16(t.app.0);
    w.str(&t.name);
    w.u64(t.version);
    w.u32(t.task_watermark);
    w.u32(t.assignments.len() as u32);
    for a in &t.assignments {
        w.u32(a.task.0);
        w.str(&a.node);
        w.str(&a.component);
        w.u32(a.host.0);
        w.u32(a.switch_port);
    }
    w.buf
}

/// Decodes a physical topology from bytes.
pub fn decode_physical(bytes: &[u8]) -> Result<PhysicalTopology> {
    let mut r = Reader::new(bytes, "physical topology");
    let app = AppId(r.u16()?);
    let name = r.str()?;
    let version = r.u64()?;
    let task_watermark = r.u32()?;
    let n = r.u32()? as usize;
    let mut assignments = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        assignments.push(TaskAssignment {
            task: TaskId(r.u32()?),
            node: r.str()?,
            component: r.str()?,
            host: HostId(r.u32()?),
            switch_port: r.u32()?,
        });
    }
    r.finish()?;
    Ok(PhysicalTopology {
        app,
        name,
        version,
        task_watermark,
        assignments,
    })
}

/// Encodes a worker-agent registration.
pub fn encode_agent(h: &HostInfo) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(h.id.0);
    w.str(&h.name);
    w.u32(h.slots as u32);
    w.buf
}

/// Decodes a worker-agent registration.
pub fn decode_agent(bytes: &[u8]) -> Result<HostInfo> {
    let mut r = Reader::new(bytes, "agent registration");
    let id = HostId(r.u32()?);
    let name = r.str()?;
    let slots = r.u32()? as usize;
    r.finish()?;
    Ok(HostInfo { id, name, slots })
}

// ------------------------------------------------------- typed accessors

/// Typed facade over a [`Coordinator`] for the Table 1 global states.
#[derive(Debug, Clone)]
pub struct GlobalState {
    coord: Coordinator,
}

impl GlobalState {
    /// Wraps a coordinator, creating the standard paths.
    pub fn new(coord: Coordinator) -> Self {
        coord.ensure_path(TOPOLOGIES).expect("root paths");
        coord.ensure_path(AGENTS).expect("root paths");
        GlobalState { coord }
    }

    /// Access to the raw store (for framework-internal paths).
    pub fn coordinator(&self) -> &Coordinator {
        &self.coord
    }

    /// Writes (or replaces) a topology's logical state.
    pub fn set_logical(&self, t: &LogicalTopology) -> Result<()> {
        self.coord
            .ensure_path(&format!("{TOPOLOGIES}/{}", t.name))?;
        self.coord.put(&logical_path(&t.name), encode_logical(t))?;
        Ok(())
    }

    /// Reads a topology's logical state.
    pub fn get_logical(&self, name: &str) -> Result<LogicalTopology> {
        let (bytes, _) = self.coord.get(&logical_path(name))?;
        decode_logical(&bytes)
    }

    /// Writes (or replaces) a topology's physical state.
    pub fn set_physical(&self, t: &PhysicalTopology) -> Result<()> {
        self.coord
            .ensure_path(&format!("{TOPOLOGIES}/{}", t.name))?;
        self.coord
            .put(&physical_path(&t.name), encode_physical(t))?;
        Ok(())
    }

    /// Reads a topology's physical state.
    pub fn get_physical(&self, name: &str) -> Result<PhysicalTopology> {
        let (bytes, _) = self.coord.get(&physical_path(name))?;
        decode_physical(&bytes)
    }

    /// Names of all registered topologies.
    pub fn list_topologies(&self) -> Result<Vec<String>> {
        self.coord.children(TOPOLOGIES)
    }

    /// Removes every znode of a topology (on kill).
    pub fn remove_topology(&self, name: &str) -> Result<()> {
        self.coord.delete_recursive(&format!("{TOPOLOGIES}/{name}"))
    }

    /// Registers a worker agent under an ephemeral node tied to `session`.
    pub fn register_agent(&self, info: &HostInfo, session: SessionId) -> Result<()> {
        self.coord.create(
            &agent_path(&info.name),
            encode_agent(info),
            CreateMode::Ephemeral(session),
        )
    }

    /// All currently registered worker agents.
    pub fn list_agents(&self) -> Result<Vec<HostInfo>> {
        let mut out = Vec::new();
        for child in self.coord.children(AGENTS)? {
            let (bytes, _) = self.coord.get(&agent_path(&child))?;
            out.push(decode_agent(&bytes)?);
        }
        Ok(out)
    }

    /// Watch every topology change (the notification channel of §3.2).
    pub fn watch_topologies(&self) -> Receiver<WatchEvent> {
        self.coord.watch(TOPOLOGIES)
    }

    /// Watch agent arrivals/departures.
    pub fn watch_agents(&self) -> Receiver<WatchEvent> {
        self.coord.watch(AGENTS)
    }

    /// Submits a reconfiguration request for the streaming manager to pick
    /// up. This is how SDN control-plane applications (e.g. the auto-scaler,
    /// §4) trigger topology changes without talking to the manager directly:
    /// everything goes through the coordinator, per Table 1's discipline.
    pub fn submit_reconfig(&self, req: &ReconfigRequest) -> Result<()> {
        let dir = format!("{RECONFIG}/{}", req.topology);
        self.coord.ensure_path(&dir)?;
        // Sequence numbers keep requests ordered and uniquely named.
        let seq = self.coord.children(&dir)?.len();
        self.coord.create(
            &format!("{dir}/req-{seq:06}"),
            encode_reconfig(req),
            CreateMode::Persistent,
        )
    }

    /// Removes and returns every pending reconfiguration request for
    /// `topology`, oldest first (the manager drains this on its watch).
    pub fn take_reconfigs(&self, topology: &str) -> Result<Vec<ReconfigRequest>> {
        let dir = format!("{RECONFIG}/{topology}");
        if !self.coord.exists(&dir) {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        for child in self.coord.children(&dir)? {
            let path = format!("{dir}/{child}");
            let (bytes, _) = self.coord.get(&path)?;
            out.push(decode_reconfig(&bytes)?);
            self.coord.delete(&path)?;
        }
        Ok(out)
    }

    /// Watch for newly submitted reconfiguration requests.
    pub fn watch_reconfigs(&self) -> Receiver<WatchEvent> {
        self.coord.watch(RECONFIG)
    }
}

/// Parent of pending reconfiguration requests.
pub const RECONFIG: &str = "/typhoon/reconfig";

/// Encodes a reconfiguration request.
pub fn encode_reconfig(req: &ReconfigRequest) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(&req.topology);
    w.u16(req.ops.len() as u16);
    for op in &req.ops {
        match op {
            ReconfigOp::SetParallelism { node, parallelism } => {
                w.u8(0);
                w.str(node);
                w.u32(*parallelism as u32);
            }
            ReconfigOp::SwapLogic { node, component } => {
                w.u8(1);
                w.str(node);
                w.str(component);
            }
            ReconfigOp::SetGrouping { from, to, grouping } => {
                w.u8(2);
                w.str(from);
                w.str(to);
                encode_grouping(&mut w, grouping);
            }
            ReconfigOp::Relocate { task, target } => {
                w.u8(3);
                w.u32(task.0);
                w.u32(target.0);
            }
        }
    }
    w.buf
}

/// Decodes a reconfiguration request.
pub fn decode_reconfig(bytes: &[u8]) -> Result<ReconfigRequest> {
    let mut r = Reader::new(bytes, "reconfig request");
    let topology = r.str()?;
    let n = r.u16()? as usize;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(match r.u8()? {
            0 => ReconfigOp::SetParallelism {
                node: r.str()?,
                parallelism: r.u32()? as usize,
            },
            1 => ReconfigOp::SwapLogic {
                node: r.str()?,
                component: r.str()?,
            },
            2 => ReconfigOp::SetGrouping {
                from: r.str()?,
                to: r.str()?,
                grouping: decode_grouping(&mut r)?,
            },
            3 => ReconfigOp::Relocate {
                task: TaskId(r.u32()?),
                target: HostId(r.u32()?),
            },
            _ => return Err(CoordError::Corrupt("reconfig op tag")),
        });
    }
    r.finish()?;
    Ok(ReconfigRequest { topology, ops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WatchKind;
    use typhoon_model::logical::word_count_example;
    use typhoon_model::{AppId, RoundRobinScheduler, Scheduler};

    fn hosts() -> Vec<HostInfo> {
        vec![HostInfo::new(0, "h0", 4), HostInfo::new(1, "h1", 4)]
    }

    #[test]
    fn logical_topology_roundtrips_through_bytes() {
        let t = word_count_example();
        let decoded = decode_logical(&encode_logical(&t)).unwrap();
        assert_eq!(decoded.name, t.name);
        assert_eq!(decoded.nodes.len(), t.nodes.len());
        assert_eq!(decoded.edges.len(), t.edges.len());
        assert_eq!(
            decoded.node("count").unwrap().stateful,
            t.node("count").unwrap().stateful
        );
        assert_eq!(
            decoded.edges[1].grouping,
            Grouping::Fields(vec!["word".into()])
        );
        decoded.validate().unwrap();
    }

    #[test]
    fn physical_topology_roundtrips_through_bytes() {
        let logical = word_count_example();
        let phys = RoundRobinScheduler
            .schedule(AppId(7), &logical, &hosts())
            .unwrap();
        let decoded = decode_physical(&encode_physical(&phys)).unwrap();
        assert_eq!(decoded.app, AppId(7));
        assert_eq!(decoded.assignments, phys.assignments);
        assert_eq!(decoded.version, phys.version);
    }

    #[test]
    fn corrupt_bytes_are_rejected() {
        let t = word_count_example();
        let mut bytes = encode_logical(&t);
        bytes.truncate(bytes.len() / 2);
        assert!(decode_logical(&bytes).is_err());
        assert!(decode_physical(&[1, 2, 3]).is_err());
        assert!(decode_agent(&[]).is_err());
    }

    #[test]
    fn global_state_stores_and_lists_topologies() {
        let g = GlobalState::new(Coordinator::new());
        let t = word_count_example();
        g.set_logical(&t).unwrap();
        let phys = RoundRobinScheduler
            .schedule(AppId(1), &t, &hosts())
            .unwrap();
        g.set_physical(&phys).unwrap();
        assert_eq!(g.list_topologies().unwrap(), vec!["word-count"]);
        assert_eq!(g.get_logical("word-count").unwrap().name, "word-count");
        assert_eq!(g.get_physical("word-count").unwrap().assignments.len(), 6);
        g.remove_topology("word-count").unwrap();
        assert!(g.list_topologies().unwrap().is_empty());
    }

    #[test]
    fn agents_register_ephemerally() {
        let g = GlobalState::new(Coordinator::new());
        let sid = g.coordinator().create_session();
        g.register_agent(&HostInfo::new(0, "h0", 8), sid).unwrap();
        assert_eq!(g.list_agents().unwrap().len(), 1);
        g.coordinator().close_session(sid);
        assert!(g.list_agents().unwrap().is_empty(), "ephemeral cleanup");
    }

    #[test]
    fn topology_watch_sees_submission_and_reconfiguration() {
        let g = GlobalState::new(Coordinator::new());
        let rx = g.watch_topologies();
        let mut t = word_count_example();
        g.set_logical(&t).unwrap();
        t.node_mut("split").unwrap().parallelism = 3;
        g.set_logical(&t).unwrap(); // reconfiguration rewrites the znode
        let events: Vec<_> = rx.try_iter().collect();
        let changed = events
            .iter()
            .filter(|e| e.kind == WatchKind::DataChanged && e.path == logical_path("word-count"))
            .count();
        assert_eq!(changed, 1, "second write is a data change");
    }
}

#[cfg(test)]
mod reconfig_tests {
    use super::*;
    use crate::store::Coordinator;
    use typhoon_model::{ReconfigOp, ReconfigRequest};

    fn sample() -> ReconfigRequest {
        ReconfigRequest {
            topology: "wc".into(),
            ops: vec![
                ReconfigOp::SetParallelism {
                    node: "split".into(),
                    parallelism: 3,
                },
                ReconfigOp::SwapLogic {
                    node: "filter".into(),
                    component: "filter-v2".into(),
                },
                ReconfigOp::SetGrouping {
                    from: "a".into(),
                    to: "b".into(),
                    grouping: Grouping::Fields(vec!["k".into()]),
                },
            ],
        }
    }

    #[test]
    fn reconfig_roundtrips_through_bytes() {
        let req = sample();
        assert_eq!(decode_reconfig(&encode_reconfig(&req)).unwrap(), req);
    }

    #[test]
    fn submit_take_preserves_order_and_drains() {
        let g = GlobalState::new(Coordinator::new());
        let mut second = sample();
        second.ops.truncate(1);
        g.submit_reconfig(&sample()).unwrap();
        g.submit_reconfig(&second).unwrap();
        let got = g.take_reconfigs("wc").unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], sample());
        assert_eq!(got[1], second);
        assert!(g.take_reconfigs("wc").unwrap().is_empty(), "drained");
        assert!(g.take_reconfigs("unknown").unwrap().is_empty());
    }

    #[test]
    fn reconfig_watch_fires_on_submit() {
        let g = GlobalState::new(Coordinator::new());
        let rx = g.watch_reconfigs();
        g.submit_reconfig(&sample()).unwrap();
        assert!(rx.try_iter().count() >= 1);
    }

    #[test]
    fn corrupt_reconfig_rejected() {
        assert!(decode_reconfig(&[9, 9]).is_err());
    }
}
