//! # typhoon-coordinator — the central coordination service
//!
//! A from-scratch, in-process reimplementation of the ZooKeeper role the
//! paper's prototype delegates to Apache ZooKeeper (§5 "Central
//! coordinator"): a hierarchical store of versioned *znodes* with watches,
//! sessions and ephemeral nodes.
//!
//! Every Typhoon component is coordinated through this service exactly as in
//! Table 1 of the paper:
//!
//! | state | writers | readers |
//! |---|---|---|
//! | logical topology | streaming manager, SDN controller | streaming manager, SDN controller |
//! | physical topology | streaming manager | SDN controller, worker agents, workers |
//! | worker agents | worker agents | streaming manager, SDN controller |
//!
//! * [`store`] — the znode tree: create/get/set/delete/children with
//!   per-node versions and optimistic compare-and-set.
//! * [`watch`] — prefix watches delivering [`WatchEvent`]s over channels;
//!   this is the "notification" step of the deployment and reconfiguration
//!   workflows (§3.2 steps (ii)/(iii)).
//! * [`session`] — client sessions with heartbeats; ephemeral znodes vanish
//!   when their session expires (how worker liveness is tracked).
//! * [`global`] — typed wrappers storing the Table 1 global states (logical
//!   and physical topologies, worker-agent registrations) with hand-rolled
//!   binary codecs (the paper uses language-agnostic Thrift objects; we use
//!   an explicit wire format for the same reason).

#![warn(missing_docs)]

pub mod election;
pub mod global;
pub mod session;
pub mod store;
pub mod watch;
mod wire;

pub use election::{LeaderElection, LeaderInfo};
pub use session::SessionId;
pub use store::{Coordinator, CreateMode, NodeStat};
pub use watch::{WatchEvent, WatchKind};

/// Errors returned by coordinator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// Create failed: the node already exists.
    NodeExists(String),
    /// The node does not exist.
    NoNode(String),
    /// Compare-and-set failed.
    BadVersion {
        /// Version the caller expected.
        expected: u64,
        /// Version actually stored.
        actual: u64,
    },
    /// The session is unknown or already expired.
    NoSession(SessionId),
    /// A parent path is missing (paths must be created top-down).
    NoParent(String),
    /// Stored bytes failed to decode as the expected typed state.
    Corrupt(&'static str),
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::NodeExists(p) => write!(f, "node already exists: {p}"),
            CoordError::NoNode(p) => write!(f, "no such node: {p}"),
            CoordError::BadVersion { expected, actual } => {
                write!(f, "bad version: expected {expected}, found {actual}")
            }
            CoordError::NoSession(s) => write!(f, "no such session: {s}"),
            CoordError::NoParent(p) => write!(f, "missing parent for: {p}"),
            CoordError::Corrupt(what) => write!(f, "corrupt stored state: {what}"),
        }
    }
}

impl std::error::Error for CoordError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoordError>;
