//! Minimal length-delimited codec helpers for the typed global states.
//!
//! The paper stores logical/physical topologies as language-agnostic Thrift
//! objects in ZooKeeper (§5); this module plays the Thrift role with an
//! explicit little-endian format so stored state is bytes, not shared
//! memory — components could live in separate processes without change.

use crate::CoordError;

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8], what: &'static str) -> Self {
        Reader { buf, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CoordError> {
        if self.pos + n > self.buf.len() {
            return Err(CoordError::Corrupt(self.what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CoordError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, CoordError> {
        Ok(u16::from_le_bytes(
            self.take(2)?
                .try_into()
                .expect("take(2) returns exactly 2 bytes"),
        ))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CoordError> {
        Ok(u32::from_le_bytes(
            self.take(4)?
                .try_into()
                .expect("take(4) returns exactly 4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CoordError> {
        Ok(u64::from_le_bytes(
            self.take(8)?
                .try_into()
                .expect("take(8) returns exactly 8 bytes"),
        ))
    }

    pub(crate) fn str(&mut self) -> Result<String, CoordError> {
        let len = self.u32()? as usize;
        if len > self.buf.len() {
            return Err(CoordError::Corrupt(self.what));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CoordError::Corrupt(self.what))
    }

    pub(crate) fn finish(self) -> Result<(), CoordError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CoordError::Corrupt(self.what))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.str("héllo");
        let mut r = Reader::new(&w.buf, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let mut r = Reader::new(&w.buf, "test");
        let _ = r.u8().unwrap();
        assert_eq!(r.finish(), Err(CoordError::Corrupt("test")));
    }

    #[test]
    fn truncation_is_corruption() {
        let mut w = Writer::new();
        w.str("abcdef");
        let mut r = Reader::new(&w.buf[..3], "test");
        assert!(r.str().is_err());
    }
}
