//! The znode store: a hierarchical, versioned, watched key-value tree.

use crate::session::{SessionId, SessionState};
use crate::watch::{WatchEvent, WatchKind, WatchTable};
use crate::{CoordError, Result};
use crossbeam::channel::Receiver;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_diag::{rank, DiagMutex};

/// Whether a created node outlives its creator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateMode {
    /// The node persists until explicitly deleted.
    Persistent,
    /// The node is deleted automatically when the owning session expires.
    Ephemeral(SessionId),
}

/// Metadata returned alongside node data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStat {
    /// Data version, starting at 1 and bumped by every set.
    pub version: u64,
    /// Owning session for ephemerals.
    pub ephemeral_owner: Option<SessionId>,
}

#[derive(Debug)]
struct Node {
    data: Vec<u8>,
    version: u64,
    ephemeral_owner: Option<SessionId>,
}

#[derive(Debug, Default)]
struct State {
    nodes: BTreeMap<String, Node>,
    watches: WatchTable,
    sessions: HashMap<SessionId, SessionState>,
    next_session: u64,
}

/// The coordination service. Clones share the same tree; it is safe to hand
/// a clone to every thread in the cluster (the paper's components all talk
/// to one ZooKeeper ensemble).
///
/// The tree lock is a [`DiagMutex`]: a session thread that panics while
/// holding it can no longer wedge every other client (non-poisoning), and
/// debug builds enforce the `COORD_STORE` rank from `docs/CONCURRENCY.md`.
#[derive(Debug, Clone)]
pub struct Coordinator {
    state: Arc<DiagMutex<State>>,
}

impl Default for Coordinator {
    fn default() -> Self {
        Coordinator {
            state: Arc::new(DiagMutex::with_rank(
                rank::COORD_STORE,
                "coordinator.store",
                State::default(),
            )),
        }
    }
}

fn validate_path(path: &str) -> &str {
    assert!(
        path.starts_with('/') && (path.len() == 1 || !path.ends_with('/')),
        "znode paths are absolute and have no trailing slash: {path:?}"
    );
    path
}

fn parent_of(path: &str) -> Option<&str> {
    if path == "/" {
        return None;
    }
    match path.rfind('/') {
        Some(0) => Some("/"),
        Some(i) => Some(&path[..i]),
        None => None,
    }
}

impl Coordinator {
    /// A fresh, empty coordinator with a root node.
    pub fn new() -> Self {
        let coord = Coordinator::default();
        coord.state.lock().nodes.insert(
            "/".to_owned(),
            Node {
                data: Vec::new(),
                version: 1,
                ephemeral_owner: None,
            },
        );
        coord
    }

    /// Creates a node. The parent must exist; intermediate nodes are *not*
    /// auto-created (use [`Coordinator::ensure_path`]).
    pub fn create(&self, path: &str, data: Vec<u8>, mode: CreateMode) -> Result<()> {
        validate_path(path);
        let mut st = self.state.lock();
        if st.nodes.contains_key(path) {
            return Err(CoordError::NodeExists(path.to_owned()));
        }
        let parent = parent_of(path).ok_or_else(|| CoordError::NoParent(path.to_owned()))?;
        if !st.nodes.contains_key(parent) {
            return Err(CoordError::NoParent(path.to_owned()));
        }
        let ephemeral_owner = match mode {
            CreateMode::Persistent => None,
            CreateMode::Ephemeral(sid) => {
                let session = st
                    .sessions
                    .get_mut(&sid)
                    .ok_or(CoordError::NoSession(sid))?;
                session.ephemerals.push(path.to_owned());
                Some(sid)
            }
        };
        st.nodes.insert(
            path.to_owned(),
            Node {
                data,
                version: 1,
                ephemeral_owner,
            },
        );
        let event = WatchEvent {
            path: path.to_owned(),
            kind: WatchKind::Created,
            version: 1,
        };
        st.watches.deliver(&event);
        Ok(())
    }

    /// Creates every missing ancestor of `path` (and `path` itself) as an
    /// empty persistent node. Existing nodes are left untouched.
    pub fn ensure_path(&self, path: &str) -> Result<()> {
        validate_path(path);
        let mut prefix = String::new();
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            prefix.push('/');
            prefix.push_str(seg);
            match self.create(&prefix, Vec::new(), CreateMode::Persistent) {
                Ok(()) | Err(CoordError::NodeExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Reads a node's data and stat.
    pub fn get(&self, path: &str) -> Result<(Vec<u8>, NodeStat)> {
        let st = self.state.lock();
        let node = st
            .nodes
            .get(validate_path(path))
            .ok_or_else(|| CoordError::NoNode(path.to_owned()))?;
        Ok((
            node.data.clone(),
            NodeStat {
                version: node.version,
                ephemeral_owner: node.ephemeral_owner,
            },
        ))
    }

    /// True when the node exists.
    pub fn exists(&self, path: &str) -> bool {
        self.state.lock().nodes.contains_key(validate_path(path))
    }

    /// Overwrites a node's data, bumping its version. With
    /// `expected_version = Some(v)` the write is a compare-and-set.
    /// Returns the new version.
    pub fn set(&self, path: &str, data: Vec<u8>, expected_version: Option<u64>) -> Result<u64> {
        let mut st = self.state.lock();
        let node = st
            .nodes
            .get_mut(validate_path(path))
            .ok_or_else(|| CoordError::NoNode(path.to_owned()))?;
        if let Some(expected) = expected_version {
            if node.version != expected {
                return Err(CoordError::BadVersion {
                    expected,
                    actual: node.version,
                });
            }
        }
        node.data = data;
        node.version += 1;
        let event = WatchEvent {
            path: path.to_owned(),
            kind: WatchKind::DataChanged,
            version: node.version,
        };
        st.watches.deliver(&event);
        Ok(event.version)
    }

    /// Creates the node if absent, otherwise overwrites it (persistent only).
    pub fn put(&self, path: &str, data: Vec<u8>) -> Result<u64> {
        match self.create(path, data.clone(), CreateMode::Persistent) {
            Ok(()) => Ok(1),
            Err(CoordError::NodeExists(_)) => self.set(path, data, None),
            Err(e) => Err(e),
        }
    }

    /// Deletes a node. Children must be deleted first.
    pub fn delete(&self, path: &str) -> Result<()> {
        validate_path(path);
        let mut st = self.state.lock();
        if !st.nodes.contains_key(path) {
            return Err(CoordError::NoNode(path.to_owned()));
        }
        let child_prefix = format!("{path}/");
        if st.nodes.keys().any(|k| k.starts_with(&child_prefix)) {
            // Mirror ZooKeeper's NotEmpty by refusing; callers use
            // delete_recursive when they mean it.
            return Err(CoordError::NodeExists(format!("{path}/* (children)")));
        }
        let node = st.nodes.remove(path).expect("checked above");
        if let Some(sid) = node.ephemeral_owner {
            if let Some(session) = st.sessions.get_mut(&sid) {
                session.ephemerals.retain(|p| p != path);
            }
        }
        let event = WatchEvent {
            path: path.to_owned(),
            kind: WatchKind::Deleted,
            version: 0,
        };
        st.watches.deliver(&event);
        Ok(())
    }

    /// Deletes a node and everything under it.
    pub fn delete_recursive(&self, path: &str) -> Result<()> {
        validate_path(path);
        let victims: Vec<String> = {
            let st = self.state.lock();
            let child_prefix = format!("{path}/");
            let mut v: Vec<String> = st
                .nodes
                .keys()
                .filter(|k| k.as_str() == path || k.starts_with(&child_prefix))
                .cloned()
                .collect();
            // Depth-first: longest paths first so children go before parents.
            v.sort_by_key(|p| std::cmp::Reverse(p.len()));
            v
        };
        if victims.is_empty() {
            return Err(CoordError::NoNode(path.to_owned()));
        }
        for p in victims {
            self.delete(&p)?;
        }
        Ok(())
    }

    /// Names of the direct children of `path`, sorted.
    pub fn children(&self, path: &str) -> Result<Vec<String>> {
        validate_path(path);
        let st = self.state.lock();
        if !st.nodes.contains_key(path) {
            return Err(CoordError::NoNode(path.to_owned()));
        }
        let prefix = if path == "/" {
            "/".to_owned()
        } else {
            format!("{path}/")
        };
        Ok(st
            .nodes
            .keys()
            .filter(|k| k.starts_with(&prefix) && *k != path)
            .filter_map(|k| {
                let rest = &k[prefix.len()..];
                (!rest.is_empty() && !rest.contains('/')).then(|| rest.to_owned())
            })
            .collect())
    }

    /// Subscribes to every change under `prefix` (persistent prefix watch).
    pub fn watch(&self, prefix: &str) -> Receiver<WatchEvent> {
        self.state.lock().watches.subscribe(prefix)
    }

    /// Opens a new session.
    pub fn create_session(&self) -> SessionId {
        let mut st = self.state.lock();
        st.next_session += 1;
        let sid = SessionId(st.next_session);
        st.sessions.insert(sid, SessionState::new(Instant::now()));
        sid
    }

    /// Refreshes a session's liveness.
    pub fn heartbeat(&self, sid: SessionId) -> Result<()> {
        let mut st = self.state.lock();
        let session = st
            .sessions
            .get_mut(&sid)
            .ok_or(CoordError::NoSession(sid))?;
        session.last_heartbeat = Instant::now();
        Ok(())
    }

    /// Expires every session silent for longer than `timeout`, deleting its
    /// ephemerals (with watch notifications). Returns the expired sessions.
    /// The streaming manager calls this periodically — the heartbeat-timeout
    /// fault-detection path of the baseline (§6.2, Fig. 10(a)).
    pub fn expire_stale_sessions(&self, timeout: Duration) -> Vec<SessionId> {
        let now = Instant::now();
        let expired: Vec<SessionId> = {
            let st = self.state.lock();
            st.sessions
                .iter()
                .filter(|(_, s)| s.is_expired(now, timeout))
                .map(|(&sid, _)| sid)
                .collect()
        };
        for &sid in &expired {
            self.close_session(sid);
        }
        expired
    }

    /// Closes a session immediately, deleting its ephemerals.
    pub fn close_session(&self, sid: SessionId) {
        let ephemerals = {
            let mut st = self.state.lock();
            match st.sessions.remove(&sid) {
                Some(s) => s.ephemerals,
                None => return,
            }
        };
        for path in ephemerals {
            // The session is gone, so delete bypasses ephemeral bookkeeping.
            let _ = self.delete(&path);
        }
    }

    /// Number of live sessions (observability hook).
    pub fn session_count(&self) -> usize {
        self.state.lock().sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord() -> Coordinator {
        Coordinator::new()
    }

    #[test]
    fn create_get_set_delete_lifecycle() {
        let c = coord();
        c.create("/a", b"one".to_vec(), CreateMode::Persistent)
            .unwrap();
        let (data, stat) = c.get("/a").unwrap();
        assert_eq!(data, b"one");
        assert_eq!(stat.version, 1);
        let v = c.set("/a", b"two".to_vec(), None).unwrap();
        assert_eq!(v, 2);
        c.delete("/a").unwrap();
        assert!(matches!(c.get("/a"), Err(CoordError::NoNode(_))));
    }

    #[test]
    fn create_requires_parent() {
        let c = coord();
        assert!(matches!(
            c.create("/a/b", vec![], CreateMode::Persistent),
            Err(CoordError::NoParent(_))
        ));
        c.ensure_path("/a/b/c").unwrap();
        assert!(c.exists("/a/b/c"));
    }

    #[test]
    fn duplicate_create_rejected() {
        let c = coord();
        c.create("/a", vec![], CreateMode::Persistent).unwrap();
        assert!(matches!(
            c.create("/a", vec![], CreateMode::Persistent),
            Err(CoordError::NodeExists(_))
        ));
    }

    #[test]
    fn compare_and_set_enforces_version() {
        let c = coord();
        c.create("/a", vec![], CreateMode::Persistent).unwrap();
        c.set("/a", b"x".to_vec(), Some(1)).unwrap();
        let err = c.set("/a", b"y".to_vec(), Some(1)).unwrap_err();
        assert_eq!(
            err,
            CoordError::BadVersion {
                expected: 1,
                actual: 2
            }
        );
    }

    #[test]
    fn put_upserts() {
        let c = coord();
        assert_eq!(c.put("/a", b"1".to_vec()).unwrap(), 1);
        assert_eq!(c.put("/a", b"2".to_vec()).unwrap(), 2);
        assert_eq!(c.get("/a").unwrap().0, b"2");
    }

    #[test]
    fn children_lists_direct_descendants_only() {
        let c = coord();
        c.ensure_path("/t/wc/logical").unwrap();
        c.ensure_path("/t/wc/physical").unwrap();
        c.ensure_path("/t/other").unwrap();
        assert_eq!(c.children("/t").unwrap(), vec!["other", "wc"]);
        assert_eq!(c.children("/t/wc").unwrap(), vec!["logical", "physical"]);
    }

    #[test]
    fn delete_refuses_non_empty_then_recursive_works() {
        let c = coord();
        c.ensure_path("/t/a/b").unwrap();
        assert!(c.delete("/t").is_err());
        c.delete_recursive("/t").unwrap();
        assert!(!c.exists("/t"));
        assert!(c.exists("/"), "root survives");
    }

    #[test]
    fn watches_fire_for_create_set_delete_under_prefix() {
        let c = coord();
        let rx = c.watch("/jobs");
        c.ensure_path("/jobs").unwrap();
        c.create("/jobs/wc", b"v1".to_vec(), CreateMode::Persistent)
            .unwrap();
        c.set("/jobs/wc", b"v2".to_vec(), None).unwrap();
        c.delete("/jobs/wc").unwrap();
        let kinds: Vec<WatchKind> = rx.try_iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                WatchKind::Created,     // /jobs
                WatchKind::Created,     // /jobs/wc
                WatchKind::DataChanged, // /jobs/wc v2
                WatchKind::Deleted,     // /jobs/wc
            ]
        );
    }

    #[test]
    fn ephemerals_vanish_on_session_close() {
        let c = coord();
        c.ensure_path("/agents").unwrap();
        let sid = c.create_session();
        c.create("/agents/h0", vec![], CreateMode::Ephemeral(sid))
            .unwrap();
        let rx = c.watch("/agents/h0");
        c.close_session(sid);
        assert!(!c.exists("/agents/h0"));
        assert_eq!(rx.try_iter().next().unwrap().kind, WatchKind::Deleted);
    }

    #[test]
    fn ephemeral_requires_live_session() {
        let c = coord();
        assert!(matches!(
            c.create("/x", vec![], CreateMode::Ephemeral(SessionId(99))),
            Err(CoordError::NoSession(_))
        ));
    }

    #[test]
    fn stale_sessions_expire_and_fresh_survive() {
        let c = coord();
        c.ensure_path("/agents").unwrap();
        let stale = c.create_session();
        let fresh = c.create_session();
        c.create("/agents/stale", vec![], CreateMode::Ephemeral(stale))
            .unwrap();
        c.create("/agents/fresh", vec![], CreateMode::Ephemeral(fresh))
            .unwrap();
        // Force the stale session's heartbeat into the past.
        {
            let mut st = c.state.lock();
            st.sessions.get_mut(&stale).unwrap().last_heartbeat =
                Instant::now() - Duration::from_secs(60);
        }
        c.heartbeat(fresh).unwrap();
        let expired = c.expire_stale_sessions(Duration::from_secs(30));
        assert_eq!(expired, vec![stale]);
        assert!(!c.exists("/agents/stale"));
        assert!(c.exists("/agents/fresh"));
        assert_eq!(c.session_count(), 1);
    }

    #[test]
    fn explicit_delete_of_ephemeral_unregisters_it() {
        let c = coord();
        c.ensure_path("/e").unwrap();
        let sid = c.create_session();
        c.create("/e/x", vec![], CreateMode::Ephemeral(sid))
            .unwrap();
        c.delete("/e/x").unwrap();
        // Closing the session must not panic or double-delete.
        c.close_session(sid);
        assert!(!c.exists("/e/x"));
    }

    #[test]
    #[should_panic(expected = "absolute")]
    fn relative_paths_are_rejected() {
        let c = coord();
        let _ = c.exists("no-slash");
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        let c = coord();
        c.create("/ctr", b"0".to_vec(), CreateMode::Persistent)
            .unwrap();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        loop {
                            let (data, stat) = c.get("/ctr").unwrap();
                            let n: u64 = String::from_utf8(data).unwrap().parse().unwrap();
                            let next = (n + 1).to_string().into_bytes();
                            if c.set("/ctr", next, Some(stat.version)).is_ok() {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let (data, _) = c.get("/ctr").unwrap();
        assert_eq!(String::from_utf8(data).unwrap(), "400");
    }
}
