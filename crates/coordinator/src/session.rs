//! Client sessions and heartbeats.
//!
//! Worker agents (and, in the Storm baseline, workers) hold a session with
//! the coordinator kept alive by periodic heartbeats. Ephemeral znodes are
//! bound to a session and are deleted when it expires — which is exactly how
//! "any worker failure is detected from periodic heartbeats sent by
//! workers" (§2). The Typhoon fault-detector app (§4) improves on this via
//! SDN port events; both paths coexist in this reproduction so Fig. 10 can
//! compare them.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one coordinator session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Book-keeping for one live session.
#[derive(Debug)]
pub(crate) struct SessionState {
    /// Last heartbeat instant.
    pub(crate) last_heartbeat: Instant,
    /// Paths of ephemeral znodes owned by this session.
    pub(crate) ephemerals: Vec<String>,
}

impl SessionState {
    pub(crate) fn new(now: Instant) -> Self {
        SessionState {
            last_heartbeat: now,
            ephemerals: Vec::new(),
        }
    }

    /// True when the session has outlived `timeout` without a heartbeat.
    pub(crate) fn is_expired(&self, now: Instant, timeout: Duration) -> bool {
        now.saturating_duration_since(self.last_heartbeat) > timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_session_is_not_expired() {
        let now = Instant::now();
        let s = SessionState::new(now);
        assert!(!s.is_expired(now, Duration::from_secs(1)));
    }

    #[test]
    fn session_expires_after_timeout() {
        let now = Instant::now();
        let s = SessionState::new(now);
        let later = now + Duration::from_secs(2);
        assert!(s.is_expired(later, Duration::from_secs(1)));
        assert!(!s.is_expired(later, Duration::from_secs(5)));
    }

    #[test]
    fn heartbeat_refreshes_expiry() {
        let now = Instant::now();
        let mut s = SessionState::new(now);
        s.last_heartbeat = now + Duration::from_secs(10);
        assert!(!s.is_expired(now + Duration::from_secs(11), Duration::from_secs(5)));
    }
}
