//! Property tests on the stable-update planner: for arbitrary
//! before/after topology pairs produced by arbitrary reconfiguration ops,
//! the plan is internally consistent — launches/removals partition the
//! task diff, routing updates always point at the new task sets, and
//! signals target exactly the stateful nodes being changed.

use proptest::prelude::*;
use std::collections::HashSet;
use typhoon_core::update::plan_update;
use typhoon_model::{
    AppId, Fields, Grouping, HostId, HostInfo, LocalityScheduler, LogicalTopology, ReconfigOp,
    ReconfigRequest, Scheduler, TaskAssignment, TaskId,
};

fn base_topology(stateful_mid: bool) -> LogicalTopology {
    LogicalTopology::builder("prop")
        .spout("src", "s", 1, Fields::new(["k"]))
        .bolt_with_state("mid", "m", 2, Fields::new(["k"]), stateful_mid)
        .bolt("out", "o", 1, Fields::new(["k"]))
        .edge("src", "mid", Grouping::Shuffle)
        .edge("mid", "out", Grouping::Global)
        .build()
        .unwrap()
}

/// Applies a parallelism change the way the manager's incremental
/// reschedule does: keep survivors, add fresh IDs, drop the tail.
fn reschedule(
    old: &typhoon_model::PhysicalTopology,
    logical: &LogicalTopology,
) -> typhoon_model::PhysicalTopology {
    let mut phys = old.clone();
    phys.version += 1;
    for node in &logical.nodes {
        let existing = phys.tasks_of(&node.name);
        if existing.len() > node.parallelism {
            let drop: HashSet<TaskId> = existing[node.parallelism..].iter().copied().collect();
            phys.assignments.retain(|a| !drop.contains(&a.task));
        } else {
            for i in 0..(node.parallelism - existing.len()) {
                let task = phys.alloc_task_id();
                phys.assignments.push(TaskAssignment {
                    task,
                    node: node.name.clone(),
                    component: node.component.clone(),
                    host: HostId(0),
                    switch_port: 100 + task.0 + i as u32,
                });
            }
        }
    }
    phys
}

proptest! {
    #[test]
    fn plans_are_internally_consistent(
        stateful in any::<bool>(),
        new_mid_par in 1usize..6,
        change_grouping in any::<bool>(),
    ) {
        let old_logical = base_topology(stateful);
        let hosts = [HostInfo::new(0, "h0", 32)];
        let old_phys = LocalityScheduler
            .schedule(AppId(1), &old_logical, &hosts)
            .unwrap();

        let mut ops = vec![ReconfigOp::SetParallelism {
            node: "mid".into(),
            parallelism: new_mid_par,
        }];
        if change_grouping {
            ops.push(ReconfigOp::SetGrouping {
                from: "src".into(),
                to: "mid".into(),
                grouping: Grouping::Fields(vec!["k".into()]),
            });
        }
        let req = ReconfigRequest {
            topology: "prop".into(),
            ops,
        };
        let mut new_logical = old_logical.clone();
        req.apply(&mut new_logical).unwrap();
        let new_phys = reschedule(&old_phys, &new_logical);

        let plan = plan_update(&old_logical, &new_logical, &old_phys, &new_phys);

        // Launches/removals exactly partition the set difference.
        let old_ids: HashSet<TaskId> = old_phys.assignments.iter().map(|a| a.task).collect();
        let new_ids: HashSet<TaskId> = new_phys.assignments.iter().map(|a| a.task).collect();
        let launched: HashSet<TaskId> = plan.launches.iter().map(|a| a.task).collect();
        let removed: HashSet<TaskId> = plan.removals.iter().map(|a| a.task).collect();
        prop_assert_eq!(&launched, &new_ids.difference(&old_ids).copied().collect());
        prop_assert_eq!(&removed, &old_ids.difference(&new_ids).copied().collect());

        // Routing updates: only when the task set changed; hops = the new
        // set; never directed at removed predecessors.
        let mid_changed = old_phys.tasks_of("mid") != new_phys.tasks_of("mid");
        prop_assert_eq!(!plan.routing_updates.is_empty(), mid_changed);
        for (pred, node, hops) in &plan.routing_updates {
            prop_assert!(new_ids.contains(pred), "update to a removed task");
            prop_assert_eq!(node.as_str(), "mid");
            prop_assert_eq!(hops.clone(), new_phys.tasks_of("mid"));
        }

        // Signals iff the changed node is stateful.
        if stateful && mid_changed {
            prop_assert_eq!(plan.signals.clone(), old_phys.tasks_of("mid"));
        } else {
            prop_assert!(plan.signals.is_empty());
        }

        // Grouping change ⇒ policy updates from every src task.
        if change_grouping {
            prop_assert_eq!(plan.policy_updates.len(), new_phys.tasks_of("src").len());
            for (_task, node, grouping, keys) in &plan.policy_updates {
                prop_assert_eq!(node.as_str(), "mid");
                prop_assert_eq!(grouping, &Grouping::Fields(vec!["k".into()]));
                prop_assert_eq!(keys.clone(), vec![0usize]);
            }
        } else {
            prop_assert!(plan.policy_updates.is_empty());
        }

        // No-op reconfigurations need no plan.
        if !mid_changed && !change_grouping {
            prop_assert!(plan.is_empty());
        }
    }
}
