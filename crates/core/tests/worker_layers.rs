//! Focused tests of the three-layer Typhoon worker against a hand-driven
//! switch: data path, control classification, graceful-vs-crash exits, and
//! the framework↔I/O seams that integration tests only exercise indirectly.

use bytes::Bytes;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};
use typhoon_controller::control::{ControlTuple, CONTROLLER_TASK};
use typhoon_core::worker::{self, IoConfig, Role, Route, WorkerConfig, WorkerShared};
use typhoon_model::{AppId, Bolt, Emitter, Grouping, RoutingState, TaskId};
use typhoon_net::{Depacketizer, MacAddr, Packetizer};
use typhoon_openflow::{wire, Action, FlowMatch, FlowMod, OfMessage, PortNo};
use typhoon_switch::{ControlChannel, Switch, SwitchConfig};
use typhoon_tuple::ser::{decode_tuple, encode_tuple_vec, SerStats};
use typhoon_tuple::{StreamId, Tuple, Value};

struct Echo;

impl Bolt for Echo {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        out.emit(input.values);
    }
}

fn send_ctrl(ch: &ControlChannel, msg: OfMessage) {
    ch.to_switch.send(wire::encode(&msg)).unwrap();
}

/// Spawns an Echo bolt worker (task 1) wired: port1 ← test, port2 → test.
/// Returns the switch, control channel, shared handles and the thread.
fn spawn_echo_worker() -> (
    Switch,
    ControlChannel,
    WorkerShared,
    std::thread::JoinHandle<()>,
    typhoon_switch::WorkerPort, // the "downstream" endpoint (port 2)
    typhoon_switch::WorkerPort, // the "upstream" endpoint (port 3)
) {
    let (sw, ch) = Switch::new(SwitchConfig::new(1));
    let worker_port = sw.attach_worker(PortNo(1));
    let downstream = sw.attach_worker(PortNo(2));
    let upstream = sw.attach_worker(PortNo(3));
    // Rules: worker(task 1) → downstream(task 2); upstream(task 3) →
    // worker; controller → worker; worker → controller.
    send_ctrl(
        &ch,
        OfMessage::FlowMod(FlowMod::add(
            50,
            FlowMatch::any().dl_dst(MacAddr::worker(1, TaskId(1))),
            vec![Action::Output(PortNo(1))],
        )),
    );
    send_ctrl(
        &ch,
        OfMessage::FlowMod(FlowMod::add(
            50,
            FlowMatch::any().dl_dst(MacAddr::worker(1, TaskId(2))),
            vec![Action::Output(PortNo(2))],
        )),
    );
    send_ctrl(
        &ch,
        OfMessage::FlowMod(FlowMod::add(
            100,
            FlowMatch::any().dl_dst(MacAddr::CONTROLLER),
            vec![Action::ToController],
        )),
    );
    sw.process_round();

    let shared = WorkerShared::new();
    let shared2 = shared.clone();
    let config = WorkerConfig {
        app: AppId(1),
        task: TaskId(1),
        node: "echo".into(),
        component: "echo".into(),
        io: IoConfig {
            batch_size: 1,
            batch_delay: Duration::from_millis(1),
            mtu: 1500,
        },
        acking: false,
        acker: None,
        ack_timeout: Duration::from_secs(30),
        max_pending: 64,
        start_active: true,
        checkpoint: None,
        restore: false,
    };
    let routes = vec![Route {
        stream: StreamId::DEFAULT,
        downstream: "down".into(),
        state: RoutingState::new(Grouping::Global, vec![TaskId(2)], vec![]),
    }];
    let ser = SerStats::shared();
    let thread = std::thread::spawn(move || {
        worker::run_worker(
            config,
            Role::Bolt(Box::new(Echo)),
            worker_port,
            routes,
            ser,
            shared2,
            typhoon_trace::TraceCtx::disabled(),
        );
    });
    (sw, ch, shared, thread, downstream, upstream)
}

/// Sends one tuple into the worker as if from task 3.
fn inject(upstream: &typhoon_switch::WorkerPort, values: Vec<Value>, stream: StreamId) {
    let ser = SerStats::default();
    let tuple = Tuple::on_stream(TaskId(3), stream, values);
    let blob = Bytes::from(encode_tuple_vec(&tuple, &ser));
    let p = Packetizer::new(1500);
    for f in p.pack(
        MacAddr::worker(1, TaskId(3)),
        MacAddr::worker(1, TaskId(1)),
        std::slice::from_ref(&blob),
    ) {
        upstream.tx.push(f).unwrap();
    }
}

fn recv_tuple(port: &typhoon_switch::WorkerPort, deadline: Duration) -> Option<Tuple> {
    let ser = SerStats::default();
    let mut d = Depacketizer::new();
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if let Ok(Some(frame)) = port.rx.pop() {
            if let Ok(blobs) = d.push(&frame) {
                if let Some((_, blob)) = blobs.into_iter().next() {
                    return decode_tuple(&blob, &ser).ok().map(|(t, _)| t);
                }
            }
        }
        std::thread::sleep(Duration::from_micros(100));
    }
    None
}

#[test]
fn bolt_worker_echoes_through_all_three_layers() {
    let (sw, _ch, shared, thread, downstream, upstream) = spawn_echo_worker();
    let handle = sw.spawn();
    assert!(
        shared.ready.load(Ordering::Acquire) || {
            std::thread::sleep(Duration::from_millis(200));
            shared.ready.load(Ordering::Acquire)
        }
    );
    inject(
        &upstream,
        vec![Value::Int(5), Value::Str("x".into())],
        StreamId::DEFAULT,
    );
    let out = recv_tuple(&downstream, Duration::from_secs(5)).expect("echoed");
    assert_eq!(out.meta.src_task, TaskId(1), "re-emitted by the worker");
    assert_eq!(out.get(0), Some(&Value::Int(5)));
    assert_eq!(shared.registry.snapshot().counter("tuples.received"), 1);
    shared.shutdown.store(true, Ordering::Release);
    thread.join().unwrap();
    handle.stop();
}

#[test]
fn routing_control_tuple_rewires_a_live_worker() {
    let (sw, ch, shared, thread, downstream, upstream) = spawn_echo_worker();
    // Add a second possible destination on port 3 (task 3's own port used
    // as a stand-in sink for the rewired flow).
    send_ctrl(
        &ch,
        OfMessage::FlowMod(FlowMod::add(
            50,
            FlowMatch::any().dl_dst(MacAddr::worker(1, TaskId(3))),
            vec![Action::Output(PortNo(3))],
        )),
    );
    let handle = sw.spawn();
    std::thread::sleep(Duration::from_millis(100));
    // Inject a ROUTING control tuple via PacketOut as the controller would.
    let ct = ControlTuple::Routing {
        downstream: "down".into(),
        next_hops: Some(vec![TaskId(3)]),
        policy: None,
    };
    let ser = SerStats::default();
    let tuple = ct.to_tuple(CONTROLLER_TASK);
    let blob = Bytes::from(encode_tuple_vec(&tuple, &ser));
    let p = Packetizer::new(1500);
    for f in p.pack(
        MacAddr::CONTROLLER,
        MacAddr::worker(1, TaskId(1)),
        std::slice::from_ref(&blob),
    ) {
        send_ctrl(
            &ch,
            OfMessage::PacketOut {
                in_port: PortNo::CONTROLLER,
                frame: f.encode(),
            },
        );
    }
    // The controller→worker rule: dl_dst=worker(1) output port1.
    // (Installed in spawn_echo_worker.)
    let deadline = Instant::now() + Duration::from_secs(5);
    while shared
        .registry
        .snapshot()
        .counter("control.routing_applied")
        == 0
    {
        assert!(Instant::now() < deadline, "ROUTING never applied");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Now the echo goes to task 3 instead of task 2.
    inject(&upstream, vec![Value::Int(9)], StreamId::DEFAULT);
    let rerouted = recv_tuple(&upstream, Duration::from_secs(5)).expect("rerouted");
    assert_eq!(rerouted.get(0), Some(&Value::Int(9)));
    assert!(
        recv_tuple(&downstream, Duration::from_millis(300)).is_none(),
        "old destination still receiving"
    );
    shared.shutdown.store(true, Ordering::Release);
    thread.join().unwrap();
    handle.stop();
}

#[test]
fn crash_flag_exits_without_flushing() {
    let (sw, _ch, shared, thread, _downstream, _upstream) = spawn_echo_worker();
    let handle = sw.spawn();
    std::thread::sleep(Duration::from_millis(100));
    shared.crash.store(true, Ordering::Release);
    let t0 = Instant::now();
    thread.join().unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "crash exit is prompt"
    );
    handle.stop();
}
