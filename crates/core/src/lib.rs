//! # typhoon-core — the SDN-enhanced streaming framework
//!
//! The paper's primary contribution (§3): a real-time stream framework
//! whose data routing and worker control are offloaded to an SDN fabric.
//!
//! * [`worker`] — the three-layer Typhoon worker (Fig. 4): the application
//!   computation layer (unchanged `Spout`/`Bolt` code), the framework layer
//!   (routing state, de/serialization, Table 2 control-tuple handling), and
//!   the I/O layer (tuples ↔ custom Ethernet packets over DPDK-style
//!   rings, with configurable batching — Fig. 7's northbound/southbound
//!   transport split).
//! * [`manager`] — the streaming manager: topology build + locality-aware
//!   scheduling + the **dynamic topology manager** that executes runtime
//!   reconfigurations (parallelism, computation logic, routing policy).
//! * [`agent`] — per-host worker agents: launch/kill workers, attach them
//!   to the host's software switch, register with the coordinator.
//! * [`update`] — the §3.5 stable-update procedures (Fig. 6): add/remove
//!   stateless workers without tuple loss; SIGNAL-flushed updates for
//!   stateful workers.
//! * [`cluster`] — [`TyphoonCluster`]: wires coordinator, controller,
//!   switches, tunnels, agents and manager into one runnable system with
//!   the same submission API as the Storm baseline, so experiments are
//!   apples-to-apples.

#![warn(missing_docs)]

pub mod agent;
pub mod checkpoint;
pub mod cluster;
pub mod manager;
pub mod update;
pub mod worker;

pub use agent::WorkerAgent;
pub use cluster::{TyphoonCluster, TyphoonConfig, TyphoonTopologyHandle};
pub use manager::{RecoveryManager, RecoveryReport, SchedulerKind, StreamingManager};

/// Errors raised by the Typhoon framework.
#[derive(Debug)]
pub enum CoreError {
    /// Topology/scheduling error.
    Model(typhoon_model::ModelError),
    /// Coordinator failure.
    Coord(typhoon_coordinator::CoordError),
    /// Network substrate failure.
    Net(typhoon_net::NetError),
    /// The referenced topology is not running.
    UnknownTopology(String),
    /// A deployment step timed out (e.g. a worker never became ready).
    Timeout(&'static str),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Coord(e) => write!(f, "coordinator error: {e}"),
            CoreError::Net(e) => write!(f, "network error: {e}"),
            CoreError::UnknownTopology(t) => write!(f, "unknown topology {t:?}"),
            CoreError::Timeout(what) => write!(f, "timed out waiting for {what}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<typhoon_model::ModelError> for CoreError {
    fn from(e: typhoon_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<typhoon_coordinator::CoordError> for CoreError {
    fn from(e: typhoon_coordinator::CoordError) -> Self {
        CoreError::Coord(e)
    }
}

impl From<typhoon_net::NetError> for CoreError {
    fn from(e: typhoon_net::NetError) -> Self {
        CoreError::Net(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// The reserved logical-node name of the system acker.
pub const ACKER_NODE: &str = "__acker";
