//! Stable topology update planning (§3.5, Fig. 6).
//!
//! Given the before/after logical and physical topologies of a
//! reconfiguration, [`plan_update`] computes the exact, ordered action
//! sequence that avoids tuple loss and state corruption:
//!
//! * **Stateless add** (Fig. 6(a), scale-up): launch new workers first,
//!   install their rules, *then* update predecessors' routing — so no
//!   tuple is ever sent to a worker that cannot receive it.
//! * **Stateless remove** (scale-down): update predecessors first, let the
//!   victim drain, then kill it; its rules age out via idle timeout.
//! * **Stateful update** (Fig. 6(b)): additionally inject `SIGNAL` tuples
//!   so the stateful workers flush their in-memory caches before the
//!   routing change (and before being killed).
//!
//! The plan itself is a pure value, unit-testable without a running
//! cluster; [`crate::manager::StreamingManager`] executes it.

use typhoon_model::{Grouping, LogicalTopology, PhysicalTopology, TaskAssignment, TaskId};

/// The ordered steps of one stable update.
#[derive(Debug, Default, PartialEq)]
pub struct UpdatePlan {
    /// Step 1: workers to launch (already scheduled in the new physical
    /// topology).
    pub launches: Vec<TaskAssignment>,
    /// Step 2 happens outside the plan: rule installation for the new
    /// topology (the controller derives it from the new global state).
    ///
    /// Step 3a: stateful workers that must receive a `SIGNAL` flush before
    /// any routing changes (Fig. 6(b) step 2).
    pub signals: Vec<TaskId>,
    /// Step 3b: `ROUTING` control-tuple updates — `(predecessor task,
    /// downstream node, new next hops)`.
    pub routing_updates: Vec<(TaskId, String, Vec<TaskId>)>,
    /// Step 3c: routing *policy* updates — `(predecessor task, downstream
    /// node, new grouping, resolved key indices)`.
    pub policy_updates: Vec<(TaskId, String, Grouping, Vec<usize>)>,
    /// Step 4: workers to drain and remove, after predecessors stopped
    /// sending to them.
    pub removals: Vec<TaskAssignment>,
}

impl UpdatePlan {
    /// True when the reconfiguration requires no action.
    pub fn is_empty(&self) -> bool {
        self.launches.is_empty()
            && self.signals.is_empty()
            && self.routing_updates.is_empty()
            && self.policy_updates.is_empty()
            && self.removals.is_empty()
    }
}

/// Computes the stable-update plan between two topology versions.
pub fn plan_update(
    old_logical: &LogicalTopology,
    new_logical: &LogicalTopology,
    old_physical: &PhysicalTopology,
    new_physical: &PhysicalTopology,
) -> UpdatePlan {
    let mut plan = UpdatePlan::default();

    // Task-level diff.
    let old_tasks: std::collections::HashSet<TaskId> =
        old_physical.assignments.iter().map(|a| a.task).collect();
    let new_tasks: std::collections::HashSet<TaskId> =
        new_physical.assignments.iter().map(|a| a.task).collect();
    plan.launches = new_physical
        .assignments
        .iter()
        .filter(|a| !old_tasks.contains(&a.task))
        .cloned()
        .collect();
    plan.removals = old_physical
        .assignments
        .iter()
        .filter(|a| !new_tasks.contains(&a.task))
        .cloned()
        .collect();

    // Nodes whose task set changed need predecessor routing updates.
    let mut changed_nodes: Vec<&str> = Vec::new();
    for node in new_logical.nodes.iter().map(|n| n.name.as_str()) {
        let old_set = old_physical.tasks_of(node);
        let new_set = new_physical.tasks_of(node);
        if old_set != new_set {
            changed_nodes.push(node);
        }
    }

    for node in &changed_nodes {
        // Stateful downstream ⇒ SIGNAL its *current* tasks so cached state
        // is flushed under the old routing (Fig. 6(b)).
        let stateful = new_logical
            .node(node)
            .or_else(|| old_logical.node(node))
            .map(|n| n.stateful)
            .unwrap_or(false);
        if stateful {
            plan.signals.extend(old_physical.tasks_of(node));
        }
        let new_hops = new_physical.tasks_of(node);
        for pred in new_logical.predecessors(node) {
            // Predecessor tasks that survive the update get ROUTING tuples;
            // freshly launched ones are born with the new hops already.
            for pred_task in old_physical.tasks_of(pred) {
                if new_tasks.contains(&pred_task) {
                    plan.routing_updates
                        .push((pred_task, (*node).to_owned(), new_hops.clone()));
                }
            }
        }
    }

    // Grouping (routing-policy) changes on surviving edges.
    for new_edge in &new_logical.edges {
        let old_edge = old_logical.edges.iter().find(|e| {
            e.from == new_edge.from && e.to == new_edge.to && e.stream == new_edge.stream
        });
        if let Some(old_edge) = old_edge {
            if old_edge.grouping != new_edge.grouping {
                let key_indices = match &new_edge.grouping {
                    Grouping::Fields(keys) => new_logical
                        .node(&new_edge.from)
                        .and_then(|n| n.output_fields.resolve(keys).ok())
                        .unwrap_or_default(),
                    _ => Vec::new(),
                };
                for pred_task in new_physical.tasks_of(&new_edge.from) {
                    plan.policy_updates.push((
                        pred_task,
                        new_edge.to.clone(),
                        new_edge.grouping.clone(),
                        key_indices.clone(),
                    ));
                }
            }
        }
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_model::logical::word_count_example;
    use typhoon_model::{
        AppId, HostInfo, LocalityScheduler, ReconfigOp, ReconfigRequest, Scheduler,
    };

    fn hosts() -> Vec<HostInfo> {
        vec![HostInfo::new(0, "h0", 16)]
    }

    fn schedule(logical: &LogicalTopology) -> PhysicalTopology {
        LocalityScheduler
            .schedule(AppId(1), logical, &hosts())
            .unwrap()
    }

    /// Grows `split` from 2 to 3 and recomputes placement, keeping old
    /// task ids stable the way the manager's incremental reschedule does
    /// (here we fake it by scheduling fresh and renaming — sufficient for
    /// plan-shape assertions via the full-reschedule path).
    #[test]
    fn scale_up_launches_then_updates_predecessors() {
        let old_logical = word_count_example();
        let old_physical = schedule(&old_logical);
        let mut new_logical = old_logical.clone();
        ReconfigRequest::single(
            "word-count",
            ReconfigOp::SetParallelism {
                node: "split".into(),
                parallelism: 3,
            },
        )
        .apply(&mut new_logical)
        .unwrap();
        // Incremental physical: copy old, add one split task.
        let mut new_physical = old_physical.clone();
        let new_task = new_physical.next_task_id();
        new_physical.assignments.push(TaskAssignment {
            task: new_task,
            node: "split".into(),
            component: "splitter".into(),
            host: typhoon_model::HostId(0),
            switch_port: 99,
        });
        new_physical.version += 1;

        let plan = plan_update(&old_logical, &new_logical, &old_physical, &new_physical);
        assert_eq!(plan.launches.len(), 1);
        assert_eq!(plan.launches[0].task, new_task);
        assert!(plan.removals.is_empty());
        // split is stateless: no signals.
        assert!(plan.signals.is_empty());
        // The predecessor (input, 1 task) gets a routing update listing
        // all three split tasks.
        assert_eq!(plan.routing_updates.len(), 1);
        let (_pred, node, hops) = &plan.routing_updates[0];
        assert_eq!(node, "split");
        assert_eq!(hops.len(), 3);
        assert!(hops.contains(&new_task));
    }

    #[test]
    fn scale_down_removes_after_rerouting() {
        let old_logical = word_count_example();
        let old_physical = schedule(&old_logical);
        let mut new_logical = old_logical.clone();
        new_logical.node_mut("split").unwrap().parallelism = 1;
        let mut new_physical = old_physical.clone();
        let victims = old_physical.tasks_of("split");
        let victim = victims[1];
        new_physical.assignments.retain(|a| a.task != victim);
        new_physical.version += 1;

        let plan = plan_update(&old_logical, &new_logical, &old_physical, &new_physical);
        assert!(plan.launches.is_empty());
        assert_eq!(plan.removals.len(), 1);
        assert_eq!(plan.removals[0].task, victim);
        let (_pred, node, hops) = &plan.routing_updates[0];
        assert_eq!(node, "split");
        assert_eq!(hops.len(), 1);
        assert!(!hops.contains(&victim), "victim is out of the hop set");
    }

    #[test]
    fn stateful_node_change_emits_signals_to_old_tasks() {
        let old_logical = word_count_example();
        let old_physical = schedule(&old_logical);
        let mut new_logical = old_logical.clone();
        new_logical.node_mut("count").unwrap().parallelism = 3; // count is stateful
        let mut new_physical = old_physical.clone();
        let new_task = new_physical.next_task_id();
        new_physical.assignments.push(TaskAssignment {
            task: new_task,
            node: "count".into(),
            component: "counter".into(),
            host: typhoon_model::HostId(0),
            switch_port: 98,
        });
        let plan = plan_update(&old_logical, &new_logical, &old_physical, &new_physical);
        let old_count_tasks = old_physical.tasks_of("count");
        assert_eq!(plan.signals, old_count_tasks, "Fig. 6(b): flush first");
    }

    #[test]
    fn logic_swap_replaces_all_tasks_of_node() {
        let old_logical = word_count_example();
        let old_physical = schedule(&old_logical);
        let mut new_logical = old_logical.clone();
        new_logical.node_mut("split").unwrap().component = "splitter-v2".into();
        // Manager semantics: logic swap = new tasks with new component,
        // old tasks removed.
        let mut new_physical = old_physical.clone();
        let old_split: Vec<TaskId> = old_physical.tasks_of("split");
        new_physical
            .assignments
            .retain(|a| !old_split.contains(&a.task));
        let base = old_physical.next_task_id().0;
        for (i, _) in old_split.iter().enumerate() {
            new_physical.assignments.push(TaskAssignment {
                task: TaskId(base + i as u32),
                node: "split".into(),
                component: "splitter-v2".into(),
                host: typhoon_model::HostId(0),
                switch_port: 90 + i as u32,
            });
        }
        let plan = plan_update(&old_logical, &new_logical, &old_physical, &new_physical);
        assert_eq!(plan.launches.len(), 2, "new-logic workers launched");
        assert_eq!(plan.removals.len(), 2, "old-logic workers retired");
        assert!(plan.launches.iter().all(|a| a.component == "splitter-v2"));
        // Predecessor rerouted to the new tasks only.
        let (_p, _n, hops) = &plan.routing_updates[0];
        assert!(old_split.iter().all(|t| !hops.contains(t)));
    }

    #[test]
    fn grouping_change_emits_policy_updates_only() {
        let old_logical = word_count_example();
        let old_physical = schedule(&old_logical);
        let mut new_logical = old_logical.clone();
        ReconfigRequest::single(
            "word-count",
            ReconfigOp::SetGrouping {
                from: "split".into(),
                to: "count".into(),
                grouping: Grouping::Shuffle,
            },
        )
        .apply(&mut new_logical)
        .unwrap();
        let plan = plan_update(&old_logical, &new_logical, &old_physical, &old_physical);
        assert!(plan.launches.is_empty() && plan.removals.is_empty());
        assert!(plan.routing_updates.is_empty());
        assert_eq!(plan.policy_updates.len(), 2, "both split tasks retuned");
        let (_t, node, grouping, _keys) = &plan.policy_updates[0];
        assert_eq!(node, "count");
        assert_eq!(*grouping, Grouping::Shuffle);
    }

    #[test]
    fn identical_topologies_need_no_plan() {
        let logical = word_count_example();
        let physical = schedule(&logical);
        let plan = plan_update(&logical, &logical, &physical, &physical);
        assert!(plan.is_empty());
    }
}
