//! `TyphoonCluster` — the whole system, assembled.
//!
//! Builds the operating environment of Fig. 3: per-host software SDN
//! switches joined by host-level tunnels, the SDN controller with its
//! control channels, the central coordinator, per-host worker agents, and
//! the streaming manager. The submission API mirrors the Storm baseline's
//! so every experiment runs the same application code on both systems.

use crate::agent::WorkerAgent;
use crate::checkpoint::CheckpointStore;
use crate::manager::{ManagerConfig, RecoveryManager, SchedulerKind, StreamingManager};
use crate::worker::{IoConfig, WorkerShared};
use crate::{CoreError, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_controller::{ControlPlane, Controller, HaConfig};
use typhoon_coordinator::global::GlobalState;
use typhoon_coordinator::Coordinator;
use typhoon_diag::{rank, DiagMutex, DiagRwLock as RwLock};
use typhoon_kv::KvStore;
use typhoon_model::{
    AppId, ComponentRegistry, HostId, HostInfo, LogicalTopology, NodeKind, PhysicalTopology,
    ReconfigRequest, TaskId,
};
use typhoon_net::{
    ChaosHandle, FaultInjector, FaultPlan, InMemoryTunnel, KillClass, TcpTunnel, Tunnel,
    TunnelConfig,
};
use typhoon_switch::{Switch, SwitchConfig, SwitchHandle};
use typhoon_trace::Tracer;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct TyphoonConfig {
    /// Number of simulated compute hosts (one switch + one agent each).
    pub hosts: usize,
    /// Worker slots per host.
    pub slots_per_host: usize,
    /// Use real loopback-TCP host tunnels (the paper's REMOTE setting)
    /// instead of in-memory pipes.
    pub remote_tcp: bool,
    /// Worker I/O defaults (batch size etc.).
    pub io: IoConfig,
    /// Guaranteed processing.
    pub acking: bool,
    /// Ack replay timeout.
    pub ack_timeout: Duration,
    /// Max in-flight spout roots when acking.
    pub max_pending: usize,
    /// Controller app tick interval.
    pub controller_tick: Duration,
    /// Controller replicas (≥ 1). With more than one, a leader is elected
    /// through the coordinator and the rest stand by; killing the leader
    /// (chaos `KillSpec::controller`) triggers a failover during which
    /// switches keep forwarding headless on their installed rules.
    pub controller_replicas: usize,
    /// Session timeout for controller replica liveness: a leader that
    /// stops heartbeating is deposed after this long (the failover
    /// detection bound).
    pub controller_session_timeout: Duration,
    /// Switch port ring capacity (frames). §8 of the paper recommends
    /// large TX/RX queues to avoid switch-level drops under bursts.
    pub ring_capacity: usize,
    /// Placement strategy (ablation hook: Typhoon ships locality).
    pub scheduler: SchedulerKind,
    /// End-to-end trace sampling: 1 in `trace_sample` spout emissions is
    /// traced across every hop (0 = tracing off, the default — the hot
    /// path then pays a single integer compare per tuple).
    pub trace_sample: u32,
    /// Chaos: wrap every inter-host tunnel in a
    /// [`FaultInjector`] seeded from this plan. Each directed edge gets a
    /// seed derived from `plan.seed` and the host pair, so one cluster
    /// seed reproduces the whole fault sequence. Control it at runtime via
    /// [`TyphoonCluster::chaos_handle`].
    pub chaos: Option<FaultPlan>,
    /// Write timeout on TCP tunnels (a stalled peer must not wedge the
    /// datapath's `send`).
    pub tunnel_write_timeout: Duration,
    /// Epoch interval between stateful-bolt checkpoints; `None` disables
    /// checkpointing. Keep it well below `ack_timeout` (checkpointing
    /// bolts withhold acks until the fold is durable).
    pub checkpoint_interval: Option<Duration>,
    /// How many checkpoint epochs to retain per task.
    pub checkpoint_retention: u64,
    /// Heartbeat timeout for the recovery manager's fallback detection;
    /// `None` disables automatic crash recovery entirely. With the
    /// fault-detector app installed, SDN port-status detection writes
    /// fault records in milliseconds and this timeout never gates
    /// recovery (the Fig. 10 comparison).
    pub recovery_heartbeat: Option<Duration>,
}

impl TyphoonConfig {
    /// Sensible defaults for `hosts` hosts with in-memory tunnels.
    pub fn new(hosts: usize) -> Self {
        TyphoonConfig {
            hosts,
            slots_per_host: 16,
            remote_tcp: false,
            io: IoConfig::default(),
            acking: false,
            ack_timeout: Duration::from_secs(30),
            max_pending: 1024,
            controller_tick: Duration::from_millis(100),
            controller_replicas: 1,
            controller_session_timeout: Duration::from_millis(400),
            ring_capacity: 8192,
            scheduler: SchedulerKind::Locality,
            trace_sample: 0,
            chaos: None,
            tunnel_write_timeout: Duration::from_secs(30),
            checkpoint_interval: None,
            checkpoint_retention: 3,
            recovery_heartbeat: None,
        }
    }

    /// Builder: checkpoint stateful bolts every `interval`.
    pub fn with_checkpoints(mut self, interval: Duration) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// Builder: enable automatic crash recovery with the given heartbeat
    /// timeout for fallback detection.
    pub fn with_recovery(mut self, heartbeat: Duration) -> Self {
        self.recovery_heartbeat = Some(heartbeat);
        self
    }

    /// Builder: inject faults on every inter-host tunnel per `plan`.
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Builder: run `n` controller replicas with leader election.
    pub fn with_controller_replicas(mut self, n: usize) -> Self {
        self.controller_replicas = n.max(1);
        self
    }

    /// Builder: real TCP tunnels between hosts.
    pub fn with_tcp_tunnels(mut self) -> Self {
        self.remote_tcp = true;
        self
    }

    /// Builder: set the I/O batch size (the Fig. 8 sweep parameter).
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.io.batch_size = n;
        self
    }

    /// Builder: enable guaranteed processing.
    pub fn with_acking(mut self, timeout: Duration, max_pending: usize) -> Self {
        self.acking = true;
        self.ack_timeout = timeout;
        self.max_pending = max_pending;
        self
    }

    /// Builder: enable end-to-end tuple tracing, sampling 1 in `rate`
    /// spout emissions (pass [`Tracer::DEFAULT_SAMPLE`] for the default
    /// 1/1024).
    pub fn with_trace(mut self, rate: u32) -> Self {
        self.trace_sample = rate;
        self
    }
}

struct HostRuntime {
    switch: Switch,
    _switch_handle: SwitchHandle,
    agent: Arc<WorkerAgent>,
}

struct ClusterInner {
    ser: Arc<typhoon_tuple::ser::SerStats>,
    global: GlobalState,
    plane: ControlPlane,
    hosts: BTreeMap<HostId, HostRuntime>,
    components: Arc<RwLock<ComponentRegistry>>,
    manager: Arc<StreamingManager>,
    recovery: Option<Arc<RecoveryManager>>,
    manager_shutdown: Arc<AtomicBool>,
    manager_thread: DiagMutex<Option<std::thread::JoinHandle<()>>>,
    tracer: Option<Arc<Tracer>>,
    /// Per-directed-edge chaos controls, keyed `(from, to)`; empty unless
    /// the cluster was built with [`TyphoonConfig::with_chaos`].
    chaos: BTreeMap<(HostId, HostId), ChaosHandle>,
    /// Cluster-level chaos control (process-kill faults + counters);
    /// `None` unless built with [`TyphoonConfig::with_chaos`].
    cluster_chaos: Option<ChaosHandle>,
}

/// A complete, running Typhoon deployment.
#[derive(Clone)]
pub struct TyphoonCluster {
    inner: Arc<ClusterInner>,
}

impl TyphoonCluster {
    /// Boots coordinator, switches, tunnels, controller, agents, manager.
    pub fn new(config: TyphoonConfig, components: ComponentRegistry) -> Result<TyphoonCluster> {
        let coordinator = Coordinator::new();
        let global = GlobalState::new(coordinator);
        // The control plane: N controller replicas sharing one rule
        // ledger; replica 0 wins the first election when the plane starts.
        let plane = ControlPlane::new(
            global.clone(),
            config.controller_replicas,
            HaConfig {
                session_timeout: config.controller_session_timeout,
                seed: config.chaos.map(|p| p.seed).unwrap_or(0x7f4a_7c15),
                ..HaConfig::default()
            },
        );
        let components = Arc::new(RwLock::with_rank(
            rank::CLUSTER,
            "core.cluster.components",
            components,
        ));
        let ser = typhoon_tuple::ser::SerStats::shared();
        let tracer = (config.trace_sample > 0).then(|| Tracer::new(config.trace_sample));

        // Hosts: one switch each, put under control-plane management. The
        // boot channel is dropped — the elected leader connects with its
        // term as the fencing token when the plane starts.
        let mut switches = Vec::new();
        for h in 0..config.hosts {
            let mut sw_config = SwitchConfig::new(h as u64);
            sw_config.ring_capacity = config.ring_capacity;
            let (switch, _boot_channel) = Switch::new(sw_config);
            if let Some(t) = &tracer {
                switch.set_trace(t.ctx());
            }
            plane.manage_switch(HostId(h as u32), switch.clone());
            switches.push(switch);
        }
        // Full-mesh host tunnels (Fig. 3's inter-host fabric), optionally
        // wrapped in fault injectors (one per directed edge, each with a
        // seed derived from the cluster seed and the host pair so a single
        // seed reproduces the whole run).
        let mut chaos_handles = BTreeMap::new();
        for i in 0..config.hosts {
            for j in (i + 1)..config.hosts {
                let (mut a, mut b): (Box<dyn Tunnel + Send>, Box<dyn Tunnel + Send>) =
                    if config.remote_tcp {
                        let (a, b) = TcpTunnel::pair_with(TunnelConfig {
                            write_timeout: config.tunnel_write_timeout,
                        })?;
                        (Box::new(a), Box::new(b))
                    } else {
                        let (a, b) = InMemoryTunnel::pair();
                        (Box::new(a), Box::new(b))
                    };
                if let Some(plan) = config.chaos {
                    let edge_plan = |from: usize, to: usize| FaultPlan {
                        seed: plan
                            .seed
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add(((from as u64) << 32) | to as u64),
                        ..plan
                    };
                    let (ia, ha) = FaultInjector::wrap(a, edge_plan(i, j));
                    let (ib, hb) = FaultInjector::wrap(b, edge_plan(j, i));
                    a = Box::new(ia);
                    b = Box::new(ib);
                    chaos_handles.insert((HostId(i as u32), HostId(j as u32)), ha);
                    chaos_handles.insert((HostId(j as u32), HostId(i as u32)), hb);
                }
                switches[i].add_tunnel(j as u32, a);
                switches[j].add_tunnel(i as u32, b);
            }
        }
        // Agents + datapath threads.
        let mut hosts = BTreeMap::new();
        for (h, switch) in switches.into_iter().enumerate() {
            let host = HostId(h as u32);
            let info = HostInfo::new(h as u32, &format!("host{h}"), config.slots_per_host);
            let agent = WorkerAgent::new(
                info,
                switch.clone(),
                components.clone(),
                ser.clone(),
                &global,
                tracer.clone(),
            )?;
            let handle = switch.spawn();
            hosts.insert(
                host,
                HostRuntime {
                    switch,
                    _switch_handle: handle,
                    agent,
                },
            );
        }
        let agents: BTreeMap<HostId, Arc<WorkerAgent>> =
            hosts.iter().map(|(&h, rt)| (h, rt.agent.clone())).collect();
        let checkpoint_store = config.checkpoint_interval.map(|_| {
            Arc::new(CheckpointStore::new(
                Arc::new(KvStore::new()),
                global.coordinator().clone(),
                ser.clone(),
                config.checkpoint_retention,
            ))
        });
        let manager = Arc::new(StreamingManager::new(
            global.clone(),
            plane.clone(),
            agents.clone(),
            ManagerConfig {
                io: config.io.clone(),
                acking: config.acking,
                ack_timeout: config.ack_timeout,
                max_pending: config.max_pending,
                scheduler: config.scheduler,
                checkpoint_store,
                checkpoint_interval: config
                    .checkpoint_interval
                    .unwrap_or(ManagerConfig::default().checkpoint_interval),
                ..ManagerConfig::default()
            },
        ));
        let recovery = config
            .recovery_heartbeat
            .map(|hb| Arc::new(RecoveryManager::new(manager.clone(), hb)));
        // Switch threads are running: start the plane (spawns each
        // replica's pump, elects the initial leader, connects + fences
        // every switch at term 1, starts the liveness monitor).
        plane.start(config.controller_tick);

        // The dynamic-topology-manager loop: drain reconfiguration
        // requests submitted via the coordinator (REST API, auto-scaler)
        // and run recovery sweeps.
        let manager_shutdown = Arc::new(AtomicBool::new(false));
        let manager2 = manager.clone();
        let recovery2 = recovery.clone();
        let shutdown2 = manager_shutdown.clone();
        let manager_thread = typhoon_diag::spawn_supervised(
            "typhoon-manager",
            |_| {},
            move || {
                while !shutdown2.load(Ordering::Acquire) {
                    manager2.process_pending();
                    if let Some(r) = &recovery2 {
                        r.poll();
                    }
                    std::thread::sleep(Duration::from_millis(20)); // LINT: allow-sleep(manager housekeeping tick on a dedicated thread)
                }
            },
        );

        // Process-kill chaos: a seeded killer thread executes the plan's
        // one-shot kill once a topology is running.
        let cluster_chaos = config.chaos.map(ChaosHandle::standalone);
        if let Some(handle) = cluster_chaos.clone().filter(|h| h.kill_spec().is_some()) {
            let global2 = global.clone();
            let agents2 = agents.clone();
            let plane2 = plane.clone();
            let shutdown3 = manager_shutdown.clone();
            typhoon_diag::spawn_supervised(
                "typhoon-chaos-killer",
                |_| {},
                move || {
                    run_chaos_killer(&global2, &agents2, &plane2, &handle, &shutdown3);
                },
            );
        }

        Ok(TyphoonCluster {
            inner: Arc::new(ClusterInner {
                ser,
                global,
                plane,
                hosts,
                components,
                manager,
                recovery,
                manager_shutdown,
                manager_thread: DiagMutex::with_rank(
                    rank::CLUSTER_MANAGER,
                    "core.cluster.manager_thread",
                    Some(manager_thread),
                ),
                tracer,
                chaos: chaos_handles,
                cluster_chaos,
            }),
        })
    }

    /// The end-to-end tuple tracer (`None` unless the cluster was built
    /// with [`TyphoonConfig::with_trace`]).
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.inner.tracer.as_ref()
    }

    /// Cluster-wide worker serialization counters (the Fig. 9 evidence).
    pub fn ser_stats(&self) -> &Arc<typhoon_tuple::ser::SerStats> {
        &self.inner.ser
    }

    /// The SDN controller — the *current leader* of the (possibly
    /// replicated) control plane. An app registered on the returned
    /// handle lives on that replica only; in replicated setups use
    /// [`TyphoonCluster::add_control_app`] so the app survives failover.
    ///
    /// # Panics
    /// When no leader emerges within the failover bound (the control
    /// plane is wedged — nothing sensible can proceed).
    pub fn controller(&self) -> Controller {
        self.inner
            .plane
            .wait_leader(Duration::from_secs(5))
            .expect("control-plane leader")
    }

    /// The replicated control plane: HA metrics (`controller.ha.*`),
    /// leader identity, and the chaos `crash_leader` hook.
    pub fn control_plane(&self) -> &ControlPlane {
        &self.inner.plane
    }

    /// Registers a control-plane app on *every* controller replica (one
    /// instance each, built by `factory`), so whichever replica leads
    /// after a failover still runs it.
    pub fn add_control_app(
        &self,
        factory: impl Fn() -> Box<dyn typhoon_controller::ControlPlaneApp>,
    ) {
        self.inner.plane.add_app_factory(factory);
    }

    /// The coordinator-backed global state.
    pub fn global(&self) -> &GlobalState {
        &self.inner.global
    }

    /// The streaming manager (direct reconfiguration calls).
    pub fn manager(&self) -> &StreamingManager {
        &self.inner.manager
    }

    /// A host's switch (experiments inspect rule/mis counters).
    pub fn switch(&self, host: HostId) -> Option<&Switch> {
        self.inner.hosts.get(&host).map(|rt| &rt.switch)
    }

    /// A host's agent.
    pub fn agent(&self, host: HostId) -> Option<&Arc<WorkerAgent>> {
        self.inner.hosts.get(&host).map(|rt| &rt.agent)
    }

    /// Cluster-wide flow-cache counters, summed across every host's
    /// switch — the megaflow fast-path evidence (steady state should
    /// resolve ≥ 90% of frames without touching the flow-table lock).
    pub fn cache_stats(&self) -> typhoon_switch::CacheStats {
        let mut total = typhoon_switch::CacheStats::default();
        for rt in self.inner.hosts.values() {
            let s = rt.switch.cache_stats();
            total.hits += s.hits;
            total.negative_hits += s.negative_hits;
            total.misses += s.misses;
            total.insertions += s.insertions;
            total.invalidations += s.invalidations;
        }
        total
    }

    /// The chaos control for the directed tunnel edge `from → to`
    /// (`None` unless built with [`TyphoonConfig::with_chaos`]). The
    /// handle switches fault specs at runtime and exposes `chaos.*`
    /// counters.
    pub fn chaos_handle(&self, from: HostId, to: HostId) -> Option<&ChaosHandle> {
        self.inner.chaos.get(&(from, to))
    }

    /// The cluster-level chaos control: process-kill spec + the
    /// `chaos.killed_*` counters (`None` unless built with
    /// [`TyphoonConfig::with_chaos`]).
    pub fn cluster_chaos(&self) -> Option<&ChaosHandle> {
        self.inner.cluster_chaos.as_ref()
    }

    /// The recovery manager (`None` unless built with
    /// [`TyphoonConfig::with_recovery`]).
    pub fn recovery(&self) -> Option<&Arc<RecoveryManager>> {
        self.inner.recovery.as_ref()
    }

    /// Kills a whole simulated host: every worker on it crashes and the
    /// host is marked dead for placement. Its switch keeps running as SDN
    /// substrate, so port-status detection still fires (Fig. 10); the
    /// recovery manager re-schedules the dead tasks onto surviving hosts.
    pub fn kill_host(&self, host: HostId) {
        if let Some(rt) = self.inner.hosts.get(&host) {
            rt.agent.mark_dead();
            rt.agent.crash_all_detached();
        }
    }

    /// Registers (or replaces) a bolt component at runtime — the
    /// prerequisite for the §6.2 computation-logic swap.
    pub fn register_bolt<F, B>(&self, name: &str, f: F)
    where
        F: Fn() -> B + Send + Sync + 'static,
        B: typhoon_model::Bolt + 'static,
    {
        self.inner.components.write().register_bolt(name, f);
    }

    /// Registers (or replaces) a spout component at runtime.
    pub fn register_spout<F, S>(&self, name: &str, f: F)
    where
        F: Fn() -> S + Send + Sync + 'static,
        S: typhoon_model::Spout + 'static,
    {
        self.inner.components.write().register_spout(name, f);
    }

    /// Submits a topology; returns a handle for experiments.
    pub fn submit(&self, logical: LogicalTopology) -> Result<TyphoonTopologyHandle> {
        let name = logical.name.clone();
        let app = self.inner.manager.submit(logical)?;
        Ok(TyphoonTopologyHandle {
            cluster: self.clone(),
            name,
            app,
        })
    }

    fn find_worker(&self, app: AppId, task: TaskId) -> Option<(HostId, WorkerShared)> {
        for (&host, rt) in &self.inner.hosts {
            if let Some(shared) = rt.agent.worker(app, task) {
                return Some((host, shared));
            }
        }
        None
    }

    /// Stops the manager loop, every worker, every switch.
    pub fn shutdown(&self) {
        self.inner.manager_shutdown.store(true, Ordering::Release);
        if let Some(t) = self.inner.manager_thread.lock().take() {
            let _ = t.join();
        }
        for rt in self.inner.hosts.values() {
            rt.agent.kill_all();
        }
        self.inner.plane.shutdown();
        for rt in self.inner.hosts.values() {
            rt.switch.shutdown();
        }
    }
}

impl std::fmt::Debug for TyphoonCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TyphoonCluster({} hosts)", self.inner.hosts.len())
    }
}

/// The seeded chaos killer: waits for the first topology, sleeps out the
/// armed delay, then executes one kill. The victim derives from the plan
/// seed over a sorted candidate list, so a fixed `CHAOS_SEED` reproduces
/// the exact same kill. Spouts and the acker are never direct victims
/// (killing the source of truth for replay is a different experiment);
/// stateful bolts are preferred — they exercise the checkpoint/restore
/// path, which is what the chaos kill classes exist to stress.
fn run_chaos_killer(
    global: &GlobalState,
    agents: &BTreeMap<HostId, Arc<WorkerAgent>>,
    plane: &ControlPlane,
    handle: &ChaosHandle,
    shutdown: &AtomicBool,
) {
    let spec = match handle.kill_spec() {
        Some(s) => s,
        None => return,
    };
    let seed = handle.plan().seed;
    // Wait for a running topology (the kill delay counts from here).
    let topo = loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        match global.list_topologies() {
            Ok(mut ts) if !ts.is_empty() => {
                ts.sort();
                break ts.remove(0);
            }
            _ => std::thread::sleep(Duration::from_millis(10)), // LINT: allow-sleep(chaos killer waiting for a topology to kill)
        }
    };
    let deadline = Instant::now() + spec.after;
    while Instant::now() < deadline {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5)); // LINT: allow-sleep(chaos killer arming delay, bounded by the deadline)
    }
    // Controller kills need no worker victim: the target is whichever
    // replica currently leads. The armed delay above still counts from
    // the first running topology, so the kill lands mid-deployment-or-
    // recovery exactly as the seed dictates.
    if spec.class == KillClass::Controller {
        if let Some(name) = plane.crash_leader() {
            eprintln!("typhoon-chaos: killing controller leader {name} (seed {seed:#x})");
            handle.stats().record_kill(KillClass::Controller);
        }
        return;
    }
    let (logical, physical) = match (global.get_logical(&topo), global.get_physical(&topo)) {
        (Ok(l), Ok(p)) => (l, p),
        _ => return,
    };
    // Candidates: bolt tasks only, stateful ones preferred.
    let mut bolts: Vec<_> = physical
        .assignments
        .iter()
        .filter(|a| {
            logical
                .node(&a.node)
                .map(|n| n.kind == NodeKind::Bolt)
                .unwrap_or(false)
        })
        .collect();
    bolts.sort_by_key(|a| a.task);
    let stateful: Vec<_> = bolts
        .iter()
        .copied()
        .filter(|a| logical.node(&a.node).map(|n| n.stateful).unwrap_or(false))
        .collect();
    let pool = if stateful.is_empty() {
        &bolts
    } else {
        &stateful
    };
    let victim = match pool.get(seed as usize % pool.len().max(1)) {
        Some(v) => (*v).clone(),
        None => return,
    };
    match spec.class {
        KillClass::Worker => {
            if let Some(agent) = agents.get(&victim.host) {
                eprintln!(
                    "typhoon-chaos: killing worker task-{} ({}) on host {} (seed {seed:#x})",
                    victim.task.0, victim.node, victim.host.0
                );
                agent.crash_detached(physical.app, victim.task);
                handle.stats().record_kill(KillClass::Worker);
            }
        }
        KillClass::Host => {
            // Prefer a host holding a candidate but no spout/acker: hosts
            // that keep the source of truth stay up.
            let hosts_spout: std::collections::BTreeSet<HostId> = physical
                .assignments
                .iter()
                .filter(|a| {
                    logical
                        .node(&a.node)
                        .map(|n| n.kind == NodeKind::Spout)
                        .unwrap_or(a.node == crate::ACKER_NODE)
                })
                .map(|a| a.host)
                .collect();
            let mut candidate_hosts: Vec<HostId> = pool
                .iter()
                .map(|a| a.host)
                .filter(|h| !hosts_spout.contains(h))
                .collect();
            candidate_hosts.sort_unstable();
            candidate_hosts.dedup();
            let host = candidate_hosts
                .get(seed as usize % candidate_hosts.len().max(1))
                .copied()
                .unwrap_or(victim.host);
            if let Some(agent) = agents.get(&host) {
                eprintln!("typhoon-chaos: killing host {} (seed {seed:#x})", host.0);
                agent.mark_dead();
                agent.crash_all_detached();
                handle.stats().record_kill(KillClass::Host);
            }
        }
        KillClass::Controller => {
            // Handled above, before victim selection.
        }
    }
}

/// Handle to one running Typhoon topology.
#[derive(Clone)]
pub struct TyphoonTopologyHandle {
    cluster: TyphoonCluster,
    name: String,
    app: AppId,
}

impl TyphoonTopologyHandle {
    /// Topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Application ID.
    pub fn app(&self) -> AppId {
        self.app
    }

    /// The latest physical topology from the coordinator.
    pub fn physical(&self) -> Result<PhysicalTopology> {
        Ok(self.cluster.inner.global.get_physical(&self.name)?)
    }

    /// Current tasks of one node.
    pub fn tasks_of(&self, node: &str) -> Vec<TaskId> {
        self.physical()
            .map(|p| p.tasks_of(node))
            .unwrap_or_default()
    }

    /// The shared handles (meter, registry) of one worker.
    pub fn worker(&self, task: TaskId) -> Option<WorkerShared> {
        self.cluster.find_worker(self.app, task).map(|(_, w)| w)
    }

    /// Reconfigures the topology synchronously.
    pub fn reconfigure(&self, req: ReconfigRequest) -> Result<()> {
        self.cluster.inner.manager.reconfigure(&req)
    }

    /// Submits a reconfiguration asynchronously through the coordinator
    /// (the REST-API path; the manager loop picks it up).
    pub fn reconfigure_async(&self, req: ReconfigRequest) -> Result<()> {
        Ok(self.cluster.inner.global.submit_reconfig(&req)?)
    }

    /// Crashes one worker abruptly (fault injection for Fig. 10): the
    /// switch discovers the dead port and the fault-detector app reacts.
    pub fn crash_task(&self, task: TaskId) -> Result<()> {
        let (host, _) = self
            .cluster
            .find_worker(self.app, task)
            .ok_or(CoreError::Timeout("worker to crash"))?;
        self.cluster
            .agent(host)
            .ok_or(CoreError::Timeout("agent"))?
            .crash(self.app, task);
        Ok(())
    }

    /// Kills the topology.
    pub fn kill(&self) -> Result<()> {
        self.cluster.inner.manager.kill(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;
    use std::time::Instant;
    use typhoon_model::{Bolt, Emitter, Fields, Grouping, ReconfigOp, Spout};
    use typhoon_tuple::{Tuple, Value};

    struct NumberSpout {
        next: i64,
        limit: i64,
    }

    impl Spout for NumberSpout {
        fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
            if self.next >= self.limit {
                return false;
            }
            out.emit(vec![Value::Int(self.next)]);
            self.next += 1;
            true
        }
    }

    struct DoubleBolt;

    impl Bolt for DoubleBolt {
        fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
            let v = input.get(0).and_then(Value::as_int).unwrap_or(0);
            out.emit(vec![Value::Int(v * 2)]);
        }
    }

    #[derive(Clone, Default)]
    struct SinkState {
        seen: Arc<PMutex<Vec<i64>>>,
    }

    struct SinkBolt {
        state: SinkState,
    }

    impl Bolt for SinkBolt {
        fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
            if let Some(v) = input.get(0).and_then(Value::as_int) {
                self.state.seen.lock().push(v);
            }
        }
    }

    fn registry(limit: i64) -> (ComponentRegistry, SinkState) {
        let mut reg = ComponentRegistry::new();
        let sink = SinkState::default();
        reg.register_spout("numbers", move || NumberSpout { next: 0, limit });
        reg.register_bolt("double", || DoubleBolt);
        let s = sink.clone();
        reg.register_bolt("sink", move || SinkBolt { state: s.clone() });
        (reg, sink)
    }

    fn pipeline() -> LogicalTopology {
        LogicalTopology::builder("pipeline")
            .spout("src", "numbers", 1, Fields::new(["n"]))
            .bolt("mid", "double", 2, Fields::new(["n2"]))
            .bolt("out", "sink", 1, Fields::new(["n2"]))
            .edge("src", "mid", Grouping::Shuffle)
            .edge("mid", "out", Grouping::Global)
            .build()
            .unwrap()
    }

    fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let end = Instant::now() + timeout;
        while Instant::now() < end {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn pipeline_processes_all_tuples_one_host() {
        let (reg, sink) = registry(400);
        let cluster = TyphoonCluster::new(TyphoonConfig::new(1).with_batch_size(10), reg).unwrap();
        let _h = cluster.submit(pipeline()).unwrap();
        assert!(
            wait_until(Duration::from_secs(15), || sink.seen.lock().len() == 400),
            "saw {} of 400",
            sink.seen.lock().len()
        );
        let mut seen = sink.seen.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..400).map(|n| n * 2).collect::<Vec<_>>());
        cluster.shutdown();
    }

    #[test]
    fn pipeline_spans_hosts_via_tunnels() {
        let (reg, sink) = registry(300);
        // 3 hosts with 2 slots each force cross-host edges even under the
        // locality scheduler.
        let mut config = TyphoonConfig::new(3).with_batch_size(10);
        config.slots_per_host = 2;
        let cluster = TyphoonCluster::new(config, reg).unwrap();
        let _h = cluster.submit(pipeline()).unwrap();
        assert!(
            wait_until(Duration::from_secs(15), || sink.seen.lock().len() == 300),
            "saw {} of 300",
            sink.seen.lock().len()
        );
        cluster.shutdown();
    }

    #[test]
    fn acking_completes_roots_end_to_end() {
        let (reg, sink) = registry(200);
        let cluster = TyphoonCluster::new(
            TyphoonConfig::new(1)
                .with_batch_size(5)
                .with_acking(Duration::from_secs(10), 64),
            reg,
        )
        .unwrap();
        let h = cluster.submit(pipeline()).unwrap();
        let spout = h.tasks_of("src")[0];
        assert!(
            wait_until(Duration::from_secs(20), || {
                h.worker(spout)
                    .map(|w| w.registry.snapshot().counter("acks.completed"))
                    .unwrap_or(0)
                    == 200
            }),
            "completed {:?} of 200",
            h.worker(spout)
                .map(|w| w.registry.snapshot().counter("acks.completed"))
        );
        assert_eq!(sink.seen.lock().len(), 200);
        cluster.shutdown();
    }

    #[test]
    fn scale_up_reconfigures_live_topology() {
        let (reg, sink) = registry(i64::MAX);
        let cluster = TyphoonCluster::new(TyphoonConfig::new(1).with_batch_size(10), reg).unwrap();
        let h = cluster.submit(pipeline()).unwrap();
        assert!(wait_until(Duration::from_secs(10), || !sink
            .seen
            .lock()
            .is_empty()));
        assert_eq!(h.tasks_of("mid").len(), 2);
        h.reconfigure(ReconfigRequest::single(
            "pipeline",
            ReconfigOp::SetParallelism {
                node: "mid".into(),
                parallelism: 3,
            },
        ))
        .unwrap();
        assert_eq!(h.tasks_of("mid").len(), 3);
        // The new worker actually receives traffic.
        let new_task = *h.tasks_of("mid").last().unwrap();
        assert!(
            wait_until(Duration::from_secs(10), || {
                h.worker(new_task)
                    .map(|w| w.registry.snapshot().counter("tuples.received") > 0)
                    .unwrap_or(false)
            }),
            "scaled-up worker never received tuples"
        );
        cluster.shutdown();
    }

    #[test]
    fn logic_swap_changes_output_at_runtime() {
        let (reg, sink) = registry(i64::MAX);
        let cluster = TyphoonCluster::new(TyphoonConfig::new(1).with_batch_size(10), reg).unwrap();
        let h = cluster.submit(pipeline()).unwrap();
        assert!(wait_until(Duration::from_secs(10), || sink
            .seen
            .lock()
            .len()
            > 100));
        // Register new logic and swap it in: now values are negated, not
        // doubled.
        struct NegateBolt;
        impl Bolt for NegateBolt {
            fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
                let v = input.get(0).and_then(Value::as_int).unwrap_or(0);
                out.emit(vec![Value::Int(-v)]);
            }
        }
        cluster.register_bolt("negate", || NegateBolt);
        h.reconfigure(ReconfigRequest::single(
            "pipeline",
            ReconfigOp::SwapLogic {
                node: "mid".into(),
                component: "negate".into(),
            },
        ))
        .unwrap();
        // Negative values start appearing; doubled values stop.
        assert!(
            wait_until(Duration::from_secs(10), || sink
                .seen
                .lock()
                .iter()
                .any(|&v| v < 0)),
            "new logic never took effect"
        );
        cluster.shutdown();
    }

    #[test]
    fn sequential_reconfigs_then_logic_swap() {
        let (reg, sink) = registry(i64::MAX);
        let cluster = TyphoonCluster::new(TyphoonConfig::new(2).with_batch_size(10), reg).unwrap();
        struct TimesTen;
        impl Bolt for TimesTen {
            fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
                let v = input.get(0).and_then(Value::as_int).unwrap_or(0);
                out.emit(vec![Value::Int(v * 10)]);
            }
        }
        cluster.register_bolt("times-ten", || TimesTen);
        let h = cluster.submit(pipeline()).unwrap();
        assert!(wait_until(Duration::from_secs(10), || !sink
            .seen
            .lock()
            .is_empty()));
        h.reconfigure_async(ReconfigRequest::single(
            "pipeline",
            ReconfigOp::SetParallelism {
                node: "mid".into(),
                parallelism: 3,
            },
        ))
        .expect("parallelism");
        std::thread::sleep(Duration::from_secs(2));
        h.reconfigure_async(ReconfigRequest::single(
            "pipeline",
            ReconfigOp::SetGrouping {
                from: "src".into(),
                to: "mid".into(),
                grouping: Grouping::Fields(vec!["n".into()]),
            },
        ))
        .expect("grouping");
        std::thread::sleep(Duration::from_secs(2));
        h.reconfigure_async(ReconfigRequest::single(
            "pipeline",
            ReconfigOp::SwapLogic {
                node: "mid".into(),
                component: "times-ten".into(),
            },
        ))
        .expect("logic swap");
        assert!(
            wait_until(Duration::from_secs(10), || {
                sink.seen
                    .lock()
                    .iter()
                    .rev()
                    .take(50)
                    .any(|&v| v != 0 && v % 10 == 0)
            }),
            "x10 logic never took effect"
        );
        cluster.shutdown();
    }

    #[test]
    fn async_reconfigure_via_coordinator_path() {
        let (reg, sink) = registry(i64::MAX);
        let cluster = TyphoonCluster::new(TyphoonConfig::new(1).with_batch_size(10), reg).unwrap();
        let h = cluster.submit(pipeline()).unwrap();
        assert!(wait_until(Duration::from_secs(10), || !sink
            .seen
            .lock()
            .is_empty()));
        h.reconfigure_async(ReconfigRequest::single(
            "pipeline",
            ReconfigOp::SetParallelism {
                node: "mid".into(),
                parallelism: 4,
            },
        ))
        .unwrap();
        assert!(
            wait_until(Duration::from_secs(10), || h.tasks_of("mid").len() == 4),
            "manager loop never applied the request"
        );
        cluster.shutdown();
    }
}
