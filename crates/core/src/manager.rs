//! The streaming manager (Nimbus's Typhoon counterpart, §5) and the
//! dynamic topology manager (§3.2).
//!
//! Submission executes the five-step deployment workflow of §3.2:
//! (i) build + schedule (locality-aware), (ii) notification (coordinator
//! writes), (iii) network setup (controller installs Table 3 rules),
//! (iv) application setup (agents launch workers attached to switches),
//! (v) data flows.
//!
//! Reconfiguration executes the four-step workflow: request → topology
//! reschedule → notification → network/application reconfiguration, using
//! the §3.5 stable-update ordering computed by [`crate::update`].

use crate::agent::WorkerAgent;
use crate::checkpoint::CheckpointStore;
use crate::update::{plan_update, UpdatePlan};
use crate::worker::{CheckpointSpec, IoConfig, Route};
use crate::{CoreError, Result, ACKER_NODE};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_controller::apps::FAULTS;
use typhoon_controller::{rules, ControlPlane, ControlTuple, Controller};
use typhoon_coordinator::global::GlobalState;
use typhoon_coordinator::CreateMode;
use typhoon_diag::{rank, DiagMutex as Mutex};
use typhoon_metrics::Registry;
use typhoon_model::{
    AppId, Grouping, HostId, LocalityScheduler, LogicalTopology, NodeKind, PhysicalTopology,
    ReconfigRequest, RoundRobinScheduler, RoutingState, Scheduler, TaskAssignment, TaskId,
};
use typhoon_net::MacAddr;
use typhoon_openflow::{FlowMatch, FlowMod};

/// Which placement strategy the manager schedules with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Typhoon's locality scheduler (§5): co-locate topological neighbours.
    #[default]
    Locality,
    /// Storm's default round-robin spread (the ablation baseline).
    RoundRobin,
}

impl SchedulerKind {
    fn as_scheduler(self) -> &'static dyn Scheduler {
        match self {
            SchedulerKind::Locality => &LocalityScheduler,
            SchedulerKind::RoundRobin => &RoundRobinScheduler,
        }
    }
}

/// Manager-level configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Default I/O layer settings for launched workers.
    pub io: IoConfig,
    /// Guaranteed-processing mode for submitted topologies.
    pub acking: bool,
    /// Ack replay timeout.
    pub ack_timeout: Duration,
    /// Max in-flight spout roots.
    pub max_pending: usize,
    /// Wait for launched workers to become ready.
    pub ready_timeout: Duration,
    /// Settling time after `SIGNAL` flushes before routing updates.
    pub signal_wait: Duration,
    /// Drain time between rerouting and killing removed workers.
    pub drain_wait: Duration,
    /// Placement strategy (ablation hook; Typhoon defaults to locality).
    pub scheduler: SchedulerKind,
    /// Checkpoint store for stateful-bolt snapshots; `None` disables
    /// checkpointing (and therefore checkpoint-based crash recovery).
    pub checkpoint_store: Option<Arc<CheckpointStore>>,
    /// Epoch interval between stateful-bolt checkpoints. Must be well
    /// below `ack_timeout`: a checkpointing bolt withholds acks until the
    /// fold is durable, so an interval near the ack timeout would make the
    /// spout replay tuples that are merely awaiting their next checkpoint.
    pub checkpoint_interval: Duration,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            io: IoConfig::default(),
            acking: false,
            ack_timeout: Duration::from_secs(30),
            max_pending: 1024,
            ready_timeout: Duration::from_secs(10),
            signal_wait: Duration::from_millis(50),
            drain_wait: Duration::from_millis(100),
            scheduler: SchedulerKind::default(),
            checkpoint_store: None,
            checkpoint_interval: Duration::from_millis(200),
        }
    }
}

/// How long the manager waits for a control-plane leader before a call
/// fails with a typed timeout. Comfortably longer than a failover window
/// (session timeout + re-sync), far shorter than any test bound.
const LEADER_WAIT: Duration = Duration::from_secs(5);

/// The streaming manager.
pub struct StreamingManager {
    global: GlobalState,
    plane: ControlPlane,
    agents: BTreeMap<HostId, std::sync::Arc<WorkerAgent>>,
    config: ManagerConfig,
    next_app: Mutex<u16>,
}

impl StreamingManager {
    /// Creates a manager over the cluster's agents. The manager talks to
    /// whichever controller replica currently leads `plane`.
    pub fn new(
        global: GlobalState,
        plane: ControlPlane,
        agents: BTreeMap<HostId, std::sync::Arc<WorkerAgent>>,
        config: ManagerConfig,
    ) -> Self {
        StreamingManager {
            global,
            plane,
            agents,
            config,
            next_app: Mutex::with_rank(rank::CORE_APP_IDS, "core.manager.next_app", 1),
        }
    }

    /// The cluster's global state handle.
    pub fn global(&self) -> &GlobalState {
        &self.global
    }

    /// The current control-plane leader. Blocks (with backoff) across a
    /// failover window; surfaces a typed timeout when no leader emerges —
    /// callers leave their work records in place and retry later.
    fn ctl(&self) -> Result<Controller> {
        self.plane
            .wait_leader(LEADER_WAIT)
            .ok_or(CoreError::Timeout("control-plane leader"))
    }

    fn agent(&self, host: HostId) -> Result<&std::sync::Arc<WorkerAgent>> {
        self.agents
            .get(&host)
            .ok_or(CoreError::Timeout("agent for host"))
    }

    /// Builds the outgoing routes for one node from topology state.
    fn build_routes(
        logical: &LogicalTopology,
        physical: &PhysicalTopology,
        node: &str,
    ) -> Vec<Route> {
        let mut routes = Vec::new();
        for edge in logical.edges_from(node) {
            let hops = physical.tasks_of(&edge.to);
            let key_indices = match &edge.grouping {
                Grouping::Fields(keys) => logical
                    .node(node)
                    .and_then(|n| n.output_fields.resolve(keys).ok())
                    .unwrap_or_default(),
                _ => Vec::new(),
            };
            routes.push(Route {
                stream: edge.stream,
                downstream: edge.to.clone(),
                state: RoutingState::new(edge.grouping.clone(), hops, key_indices),
            });
        }
        routes
    }

    fn launch_assignment(
        &self,
        logical: &LogicalTopology,
        physical: &PhysicalTopology,
        assignment: &TaskAssignment,
        acker: Option<TaskId>,
        restore: bool,
    ) -> Result<()> {
        let agent = self.agent(assignment.host)?;
        let is_acker = assignment.node == ACKER_NODE;
        let kind = if is_acker {
            NodeKind::Bolt
        } else {
            logical
                .node(&assignment.node)
                .map(|n| n.kind)
                .ok_or_else(|| CoreError::UnknownTopology(assignment.node.clone()))?
        };
        let routes = if is_acker {
            Vec::new()
        } else {
            Self::build_routes(logical, physical, &assignment.node)
        };
        let config = crate::worker::WorkerConfig {
            app: physical.app,
            task: assignment.task,
            node: assignment.node.clone(),
            component: assignment.component.clone(),
            io: self.config.io.clone(),
            acking: self.config.acking,
            acker: acker.filter(|&a| a != assignment.task),
            ack_timeout: self.config.ack_timeout,
            max_pending: self.config.max_pending,
            // Spouts start deactivated; the manager sends ACTIVATE once the
            // whole topology is deployed (Table 2, step (v) of §3.2).
            start_active: false,
            checkpoint: self
                .config
                .checkpoint_store
                .as_ref()
                .map(|store| CheckpointSpec {
                    store: store.clone(),
                    topology: logical.name.clone(),
                    interval: self.config.checkpoint_interval,
                }),
            restore,
        };
        agent.launch(
            kind,
            is_acker,
            typhoon_openflow::PortNo(assignment.switch_port),
            config,
            routes,
        )?;
        agent.wait_ready(physical.app, assignment.task, self.config.ready_timeout)?;
        Ok(())
    }

    /// Submits a topology (the §3.2 deployment workflow). Returns the
    /// assigned application ID.
    pub fn submit(&self, logical: LogicalTopology) -> Result<AppId> {
        logical.validate()?;
        let app = {
            let mut next = self.next_app.lock();
            let id = AppId(*next);
            *next += 1;
            id
        };
        // (i) Schedule with the Typhoon locality scheduler over the
        // currently registered agents, then let each agent assign the
        // actual switch ports it owns.
        let host_infos: Vec<typhoon_model::HostInfo> = self
            .agents
            .values()
            .map(|a| {
                let mut info = a.info().clone();
                info.slots = info.slots.saturating_sub(a.used_slots());
                info
            })
            .collect();
        let mut physical =
            self.config
                .scheduler
                .as_scheduler()
                .schedule(app, &logical, &host_infos)?;
        for a in &mut physical.assignments {
            a.switch_port = self.agent(a.host)?.alloc_port().0;
        }
        // Guaranteed processing: append the system acker.
        let acker = if self.config.acking {
            let host = physical.assignments[0].host;
            let task = physical.alloc_task_id();
            let port = self.agent(host)?.alloc_port().0;
            physical.assignments.push(TaskAssignment {
                task,
                node: ACKER_NODE.into(),
                component: ACKER_NODE.into(),
                host,
                switch_port: port,
            });
            Some(task)
        } else {
            None
        };
        // (ii) Notification: write the global states.
        self.global.set_logical(&logical)?;
        self.global.set_physical(&physical)?;
        // (iii) Network setup: Table 3 rules (+ acker channels).
        if !self.ctl()?.install_topology(&logical, &physical) {
            return Err(CoreError::Timeout("topology install barrier"));
        }
        if let Some(acker) = acker {
            self.install_ack_rules(&physical, acker);
        }
        // (iv) Application setup: launch workers.
        for assignment in &physical.assignments {
            self.launch_assignment(&logical, &physical, assignment, acker, false)?;
        }
        // (v) Activate the topology: unthrottle the first workers.
        self.activate_spouts(app, &logical, &physical);
        Ok(app)
    }

    fn activate_spouts(&self, app: AppId, logical: &LogicalTopology, physical: &PhysicalTopology) {
        let Ok(ctl) = self.ctl() else { return };
        for node in logical.nodes.iter().filter(|n| n.kind == NodeKind::Spout) {
            for task in physical.tasks_of(&node.name) {
                ctl.send_control(app, task, &ControlTuple::Activate);
            }
        }
    }

    /// Pauses the topology by throttling its first workers (`DEACTIVATE`,
    /// Table 2) — the "pause" half of the §8 pause-and-resume relocation.
    fn deactivate_spouts(
        &self,
        app: AppId,
        logical: &LogicalTopology,
        physical: &PhysicalTopology,
    ) {
        let Ok(ctl) = self.ctl() else { return };
        for node in logical.nodes.iter().filter(|n| n.kind == NodeKind::Spout) {
            for task in physical.tasks_of(&node.name) {
                ctl.send_control(app, task, &ControlTuple::Deactivate);
            }
        }
    }

    /// Returns `false` when any send or barrier fails (e.g. the leader
    /// died mid-install) — callers on retried paths propagate the failure.
    fn install_ack_rules(&self, physical: &PhysicalTopology, acker: TaskId) -> bool {
        let Ok(ctl) = self.ctl() else { return false };
        let mut ok = true;
        for a in &physical.assignments {
            if a.task == acker {
                continue;
            }
            for (host, fm) in rules::unicast_rules(physical, a.task, acker) {
                ok &= ctl.send_flow_mod(host, fm);
            }
            for (host, fm) in rules::unicast_rules(physical, acker, a.task) {
                ok &= ctl.send_flow_mod(host, fm);
            }
        }
        for host in ctl.hosts() {
            ok &= ctl.sync_switch(host, Duration::from_secs(5));
        }
        ok
    }

    /// Incremental reschedule: preserve every surviving task's placement,
    /// add tasks for grown/ re-logic'd nodes, drop tasks for shrunk nodes.
    fn reschedule(
        &self,
        old_physical: &PhysicalTopology,
        new_logical: &LogicalTopology,
    ) -> Result<PhysicalTopology> {
        let mut physical = old_physical.clone();
        physical.version += 1;
        for node in &new_logical.nodes {
            let existing: Vec<TaskAssignment> = physical
                .assignments
                .iter()
                .filter(|a| a.node == node.name)
                .cloned()
                .collect();
            let logic_changed = existing.iter().any(|a| a.component != node.component);
            let keep: Vec<TaskAssignment> = if logic_changed {
                // §6.2: deploy new-logic workers, kill old ones.
                physical.assignments.retain(|a| a.node != node.name);
                Vec::new()
            } else if existing.len() > node.parallelism {
                // Shrink: retire the highest task IDs.
                let mut sorted = existing.clone();
                sorted.sort_by_key(|a| a.task);
                let keep: Vec<TaskAssignment> = sorted[..node.parallelism].to_vec();
                let keep_ids: Vec<TaskId> = keep.iter().map(|a| a.task).collect();
                physical
                    .assignments
                    .retain(|a| a.node != node.name || keep_ids.contains(&a.task));
                keep
            } else {
                existing
            };
            // Grow to the target parallelism.
            let mut need = node.parallelism.saturating_sub(keep.len());
            while need > 0 {
                let host = self.pick_host(&physical)?;
                let task = physical.alloc_task_id();
                let port = self.agent(host)?.alloc_port().0;
                physical.assignments.push(TaskAssignment {
                    task,
                    node: node.name.clone(),
                    component: node.component.clone(),
                    host,
                    switch_port: port,
                });
                need -= 1;
            }
        }
        Ok(physical)
    }

    /// The host with the most free slots (greedy), skipping dead hosts.
    fn pick_host(&self, physical: &PhysicalTopology) -> Result<HostId> {
        let by_host = physical.by_host();
        self.agents
            .values()
            .filter(|agent| agent.is_alive())
            .map(|agent| {
                let planned = by_host.get(&agent.info().id).map_or(0, Vec::len);
                let used = agent.used_slots().max(planned);
                (agent.info().id, agent.info().slots.saturating_sub(used))
            })
            .max_by_key(|&(_, free)| free)
            .filter(|&(_, free)| free > 0)
            .map(|(h, _)| h)
            .ok_or(CoreError::Timeout("free worker slot"))
    }

    /// Executes one reconfiguration request — the dynamic topology manager
    /// (§3.2 reconfiguration workflow + §3.5 stable update).
    pub fn reconfigure(&self, req: &ReconfigRequest) -> Result<()> {
        let name = &req.topology;
        let old_logical = self.global.get_logical(name)?;
        let old_physical = self.global.get_physical(name)?;
        let app = old_physical.app;
        let acker = old_physical
            .assignments
            .iter()
            .find(|a| a.node == ACKER_NODE)
            .map(|a| a.task);

        let mut new_logical = old_logical.clone();
        req.apply(&mut new_logical)?;
        let mut new_physical = self.reschedule(&old_physical, &new_logical)?;
        // §8 relocations: placement-only moves. The relocated worker gets a
        // fresh task ID on the target host (IDs are never reused); the
        // normal stable-update plan then launches/reroutes/retires it, with
        // SIGNAL flushes for stateful nodes.
        let relocating = req
            .ops
            .iter()
            .any(|op| matches!(op, typhoon_model::ReconfigOp::Relocate { .. }));
        for op in &req.ops {
            if let typhoon_model::ReconfigOp::Relocate { task, target } = op {
                let old = new_physical
                    .assignment(*task)
                    .cloned()
                    .ok_or_else(|| CoreError::UnknownTopology(format!("task {task}")))?;
                new_physical.assignments.retain(|a| a.task != *task);
                let new_task = new_physical.alloc_task_id();
                let port = self.agent(*target)?.alloc_port().0;
                new_physical.assignments.push(TaskAssignment {
                    task: new_task,
                    node: old.node,
                    component: old.component,
                    host: *target,
                    switch_port: port,
                });
                new_physical.version += 1;
            }
        }
        let plan = plan_update(&old_logical, &new_logical, &old_physical, &new_physical);

        // 0. Pause the stream for relocations (pause-and-resume, §8).
        if relocating {
            self.deactivate_spouts(app, &old_logical, &old_physical);
            std::thread::sleep(self.config.signal_wait); // LINT: allow-sleep(reconfiguration quiesce wait from the live-migration protocol)
        }
        // 1. Launch the new workers first (Fig. 6(a) step 1) — they are
        //    born with the *new* routing table.
        for assignment in &plan.launches {
            self.launch_assignment(&new_logical, &new_physical, assignment, acker, false)?;
        }
        // 2. Notification + network setup for the new shape.
        self.global.set_logical(&new_logical)?;
        self.global.set_physical(&new_physical)?;
        if !self.ctl()?.install_topology(&new_logical, &new_physical) {
            return Err(CoreError::Timeout("reconfiguration install barrier"));
        }
        if let Some(acker) = acker {
            self.install_ack_rules(&new_physical, acker);
        }
        self.execute_plan(app, &plan)?;
        // Newly launched spout tasks (spout scale-up) need activation.
        self.activate_spouts(app, &new_logical, &new_physical);
        Ok(())
    }

    /// Applies the control-tuple + removal phases of a stable update.
    fn execute_plan(&self, app: AppId, plan: &UpdatePlan) -> Result<()> {
        let ctl = self.ctl()?;
        // 3a. SIGNAL stateful workers so caches flush under old routing.
        for &task in &plan.signals {
            ctl.send_control(app, task, &ControlTuple::Signal);
        }
        if !plan.signals.is_empty() {
            std::thread::sleep(self.config.signal_wait); // LINT: allow-sleep(reconfiguration quiesce wait from the live-migration protocol)
        }
        // 3b/3c. Re-route the predecessors via ROUTING control tuples.
        for (task, downstream, hops) in &plan.routing_updates {
            ctl.send_control(
                app,
                *task,
                &ControlTuple::Routing {
                    downstream: downstream.clone(),
                    next_hops: Some(hops.clone()),
                    policy: None,
                },
            );
        }
        for (task, downstream, grouping, keys) in &plan.policy_updates {
            ctl.send_control(
                app,
                *task,
                &ControlTuple::Routing {
                    downstream: downstream.clone(),
                    next_hops: None,
                    policy: Some((grouping.clone(), keys.clone())),
                },
            );
        }
        // 4. Drain, then retire removed workers and their rules.
        if !plan.removals.is_empty() {
            std::thread::sleep(self.config.drain_wait); // LINT: allow-sleep(drain wait before retiring removed workers)
            for assignment in &plan.removals {
                if let Ok(agent) = self.agent(assignment.host) {
                    agent.kill(app, assignment.task);
                }
                let mac = MacAddr::worker(app.0, assignment.task);
                for host in ctl.hosts() {
                    ctl.send_flow_mod(host, FlowMod::delete(FlowMatch::any().dl_dst(mac)));
                    ctl.send_flow_mod(host, FlowMod::delete(FlowMatch::any().dl_src(mac)));
                }
            }
        }
        Ok(())
    }

    /// Drains and executes every pending reconfiguration request (the
    /// coordinator is the hand-off point from the REST API and the
    /// auto-scaler app). Returns how many were executed.
    pub fn process_pending(&self) -> usize {
        let mut executed = 0;
        let topologies = match self.global.list_topologies() {
            Ok(t) => t,
            Err(_) => return 0,
        };
        for name in topologies {
            if let Ok(requests) = self.global.take_reconfigs(&name) {
                for req in requests {
                    match self.reconfigure(&req) {
                        Ok(()) => executed += 1,
                        Err(e) => {
                            // Failed requests are reported, not retried: the
                            // user resubmits after fixing the cause (e.g.
                            // freeing capacity).
                            eprintln!("typhoon: reconfiguration of {name:?} failed: {e}");
                        }
                    }
                }
            }
        }
        executed
    }

    /// Kills a topology: stop workers, remove rules and global state.
    pub fn kill(&self, name: &str) -> Result<()> {
        let logical = self.global.get_logical(name)?;
        let physical = self.global.get_physical(name)?;
        for assignment in &physical.assignments {
            if let Ok(agent) = self.agent(assignment.host) {
                agent.kill(physical.app, assignment.task);
            }
        }
        self.ctl()?.uninstall_topology(&logical, &physical);
        self.global.remove_topology(name)?;
        Ok(())
    }
}

impl std::fmt::Debug for StreamingManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StreamingManager({} agents)", self.agents.len())
    }
}

/// Phase-by-phase latency breakdown of one completed task recovery
/// (detection is measured by the caller: SDN port-status detection fires
/// in milliseconds, the heartbeat fallback only after the timeout —
/// Fig. 10's comparison).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Topology the recovered task belongs to.
    pub topology: String,
    /// Logical node of the recovered task.
    pub node: String,
    /// The recovered task (the dead task's ID is *reused*: same ID means
    /// same worker MAC, so upstream routing state stays valid and only
    /// the steering flow rules move).
    pub task: TaskId,
    /// The surviving host the task was re-scheduled onto.
    pub host: HostId,
    /// Re-scheduling: pick a surviving slot, bump the physical topology.
    pub reschedule: Duration,
    /// Restart: relaunch the worker and wait for readiness (includes the
    /// checkpoint restore, which runs before the worker signals ready).
    pub restart: Duration,
    /// Checkpoint restore alone, as measured inside the worker.
    pub restore: Duration,
    /// Replay kick-off: un-shrink predecessors + `REPLAY` to the spouts.
    pub replay: Duration,
    /// End-to-end recovery latency (from fault-record consumption).
    pub total: Duration,
}

/// The recovery manager (§4): consumes `/typhoon/faults` records — written
/// in milliseconds by the SDN fault detector, or after a timeout by this
/// manager's own heartbeat fallback — and brings the dead task back:
///
/// 1. **Re-schedule**: reap the dead worker's slot, pick a surviving host
///    with free capacity, re-assign the *same* task ID there.
/// 2. **Network setup**: re-install steering flow rules for the new
///    placement via the controller.
/// 3. **Restart + restore**: relaunch the worker with `restore = true` so
///    it loads its latest checkpoint before signalling ready.
/// 4. **Un-shrink**: predecessors of a stateless dead node had their
///    `nextHops` shrunk by the fault detector; restore the full hop set.
/// 5. **Replay**: tell every spout to fail-and-replay its pending roots
///    now instead of waiting out the ack timeout; the restored dedup
///    ledger drops replays that were already folded into the snapshot.
pub struct RecoveryManager {
    manager: Arc<StreamingManager>,
    registry: Registry,
    heartbeat_timeout: Duration,
    suspects: Mutex<HashMap<(String, TaskId), Instant>>,
    reports: Mutex<Vec<RecoveryReport>>,
}

impl RecoveryManager {
    /// Creates a recovery manager over `manager`'s cluster. The heartbeat
    /// timeout gates the fallback detection path only; SDN port-status
    /// detection (when the fault-detector app is installed) writes fault
    /// records long before it fires.
    pub fn new(manager: Arc<StreamingManager>, heartbeat_timeout: Duration) -> Self {
        RecoveryManager {
            manager,
            registry: Registry::new(),
            heartbeat_timeout,
            suspects: Mutex::with_rank(
                rank::CORE_SUSPECTS,
                "core.manager.suspects",
                HashMap::new(),
            ),
            reports: Mutex::with_rank(rank::CORE_REPORTS, "core.manager.reports", Vec::new()),
        }
    }

    /// Recovery metrics: `recovery.detected`, `recovery.heartbeat_detected`,
    /// `recovery.recovered`, `recovery.failed` and the phase histograms.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Reports of every recovery completed so far.
    pub fn reports(&self) -> Vec<RecoveryReport> {
        self.reports.lock().clone()
    }

    /// One recovery sweep: run heartbeat fallback detection, then drain
    /// and act on recorded faults. Returns how many tasks were recovered.
    pub fn poll(&self) -> usize {
        self.heartbeat_scan();
        self.drain_faults()
    }

    /// The heartbeat fallback (the Fig. 10 baseline): workers whose
    /// threads died — or whose whole host died — while their bookkeeping
    /// entry is still registered are suspects; a suspect that stays dead
    /// past the heartbeat timeout gets a fault record synthesized exactly
    /// as the SDN fault detector would have written it.
    fn heartbeat_scan(&self) {
        let m = &*self.manager;
        let now = Instant::now();
        let topologies = match m.global.list_topologies() {
            Ok(t) => t,
            Err(_) => return,
        };
        let dead_by_host: HashMap<HostId, (bool, HashSet<(AppId, TaskId)>)> = m
            .agents
            .iter()
            .map(|(&host, agent)| {
                let dead_set = agent.dead_workers().into_iter().collect();
                (host, (agent.is_alive(), dead_set))
            })
            .collect();
        let mut suspects = self.suspects.lock();
        let mut currently_dead: HashSet<(String, TaskId)> = HashSet::new();
        for name in topologies {
            let physical = match m.global.get_physical(&name) {
                Ok(p) => p,
                Err(_) => continue,
            };
            for a in &physical.assignments {
                let dead = dead_by_host
                    .get(&a.host)
                    .map(|(alive, dead_set)| !alive || dead_set.contains(&(physical.app, a.task)))
                    .unwrap_or(false);
                if !dead {
                    continue;
                }
                let key = (name.clone(), a.task);
                currently_dead.insert(key.clone());
                let first_seen = *suspects.entry(key).or_insert(now);
                if now.duration_since(first_seen) < self.heartbeat_timeout {
                    continue;
                }
                let coord = m.global.coordinator();
                let path = format!("{FAULTS}/{name}/task-{}", a.task.0);
                if !coord.exists(&path) {
                    let _ = coord.ensure_path(&format!("{FAULTS}/{name}"));
                    if coord
                        .create(&path, a.node.clone().into_bytes(), CreateMode::Persistent)
                        .is_ok()
                    {
                        self.registry.counter("recovery.heartbeat_detected").inc();
                    }
                }
            }
        }
        // Forget suspects that came back (recovered or never really dead).
        suspects.retain(|key, _| currently_dead.contains(key));
    }

    /// Consumes every recorded worker fault, recovering each dead task.
    fn drain_faults(&self) -> usize {
        let m = &*self.manager;
        let coord = m.global.coordinator();
        let mut recovered = 0;
        for topo in coord.children(FAULTS).unwrap_or_default() {
            if topo == "tunnels" {
                continue; // link faults are the tunnel manager's problem
            }
            let base = format!("{FAULTS}/{topo}");
            for child in coord.children(&base).unwrap_or_default() {
                let task = match child
                    .strip_prefix("task-")
                    .and_then(|s| s.parse::<u32>().ok())
                {
                    Some(id) => TaskId(id),
                    None => continue,
                };
                let path = format!("{base}/{child}");
                self.registry.counter("recovery.detected").inc();
                match self.recover_task(&topo, task) {
                    Ok(report) => {
                        let _ = coord.delete(&path);
                        if let Some(report) = report {
                            recovered += 1;
                            self.registry.counter("recovery.recovered").inc();
                            let h = |n: &str, d: Duration| {
                                self.registry.histogram(n).record(d.as_millis() as u64)
                            };
                            h("recovery.reschedule_ms", report.reschedule);
                            h("recovery.restart_ms", report.restart);
                            h("recovery.restore_ms", report.restore);
                            h("recovery.replay_ms", report.replay);
                            h("recovery.total_ms", report.total);
                            self.reports.lock().push(report);
                        }
                    }
                    Err(e) => {
                        // Leave the fault record in place: the next sweep
                        // retries (capacity may have freed up meanwhile).
                        self.registry.counter("recovery.failed").inc();
                        eprintln!("typhoon: recovery of {topo:?}/task-{} failed: {e}", task.0);
                    }
                }
            }
        }
        recovered
    }

    /// Recovers one dead task. Returns `Ok(None)` for stale fault records
    /// (the task is no longer assigned — e.g. its topology was killed).
    fn recover_task(&self, topo: &str, task: TaskId) -> Result<Option<RecoveryReport>> {
        let m = &*self.manager;
        let t0 = Instant::now();
        let logical = m.global.get_logical(topo)?;
        let mut physical = m.global.get_physical(topo)?;
        let dead = match physical.assignment(task).cloned() {
            Some(d) => d,
            None => return Ok(None),
        };
        let app = physical.app;
        let acker = physical
            .assignments
            .iter()
            .find(|a| a.node == ACKER_NODE)
            .map(|a| a.task);
        // (1) Re-schedule onto a surviving slot, reusing the task ID.
        if let Ok(agent) = m.agent(dead.host) {
            agent.reap(app, task);
        }
        physical.assignments.retain(|a| a.task != task);
        let target = m.pick_host(&physical)?;
        let port = m.agent(target)?.alloc_port().0;
        let replacement = TaskAssignment {
            task,
            node: dead.node.clone(),
            component: dead.component.clone(),
            host: target,
            switch_port: port,
        };
        physical.assignments.push(replacement.clone());
        physical.version += 1;
        m.global.set_physical(&physical)?;
        let reschedule = t0.elapsed();
        // (2) Network setup: steer the dead task's MAC to its new port.
        // A failed install (the leader died mid-re-steer) propagates as an
        // error, leaving the fault record in place: the next sweep retries
        // against the successor leader, which has already re-synced the
        // previously installed rules from the ledger.
        let ctl = m.ctl()?;
        if !ctl.install_topology(&logical, &physical) {
            return Err(CoreError::Timeout("recovery re-steer barrier"));
        }
        if let Some(acker) = acker {
            if !m.install_ack_rules(&physical, acker) {
                return Err(CoreError::Timeout("recovery ack-rule barrier"));
            }
        }
        // (3) Restart with restore: the worker loads its latest checkpoint
        // during init, before signalling ready.
        let t1 = Instant::now();
        m.launch_assignment(&logical, &physical, &replacement, acker, true)?;
        let restart = t1.elapsed();
        let restore = m
            .agent(target)
            .ok()
            .and_then(|a| a.worker(app, task))
            .map(|shared| {
                let ms = shared.registry.snapshot().gauge("recovery.restore_ms");
                Duration::from_millis(ms.max(0) as u64)
            })
            .unwrap_or_default();
        let t2 = Instant::now();
        let is_spout = logical
            .node(&dead.node)
            .map(|n| n.kind == NodeKind::Spout)
            .unwrap_or(false);
        if is_spout {
            ctl.send_control(app, task, &ControlTuple::Activate);
        }
        // (4) Un-shrink predecessors back to the full hop set. (The fault
        // detector only shrank stateless nodes' predecessors; re-sending
        // the full set is idempotent for the rest.) From here on, failed
        // control sends mean the leader died mid-re-steer: propagate an
        // error so the fault record stays and the successor retries —
        // every step below is idempotent under replay dedup.
        let mut sends_ok = true;
        let hops = physical.tasks_of(&dead.node);
        for pred in logical.predecessors(&dead.node) {
            for pt in physical.tasks_of(pred) {
                sends_ok &= ctl.send_control(
                    app,
                    pt,
                    &ControlTuple::Routing {
                        downstream: dead.node.clone(),
                        next_hops: Some(hops.clone()),
                        policy: None,
                    },
                );
            }
        }
        // (4b) Surviving stateful tasks re-emit their snapshots: emissions
        // they routed toward the dead task were lost with it, and their
        // dedup ledgers (correctly) refuse to re-fold the replays that
        // would have regenerated them. The unanchored snapshot re-emission
        // re-converges latest-wins consumers downstream.
        for node in logical.nodes.iter().filter(|n| n.stateful) {
            for st in physical.tasks_of(&node.name) {
                if st != task {
                    sends_ok &= ctl.send_control(app, st, &ControlTuple::Restate);
                }
            }
        }
        // (5) Replay: fail-and-replay pending roots immediately. Replays
        // already folded into the restored snapshot are deduped by the
        // ledger; the rest re-fold — counts come out exact.
        for node in logical.nodes.iter().filter(|n| n.kind == NodeKind::Spout) {
            for st in physical.tasks_of(&node.name) {
                sends_ok &= ctl.send_control(app, st, &ControlTuple::Replay);
            }
        }
        if !sends_ok {
            return Err(CoreError::Timeout("recovery re-steer control channel"));
        }
        let replay = t2.elapsed();
        Ok(Some(RecoveryReport {
            topology: topo.to_string(),
            node: dead.node,
            task,
            host: target,
            reschedule,
            restart,
            restore,
            replay,
            total: t0.elapsed(),
        }))
    }
}

impl std::fmt::Debug for RecoveryManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RecoveryManager(timeout {:?})", self.heartbeat_timeout)
    }
}
