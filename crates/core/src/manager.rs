//! The streaming manager (Nimbus's Typhoon counterpart, §5) and the
//! dynamic topology manager (§3.2).
//!
//! Submission executes the five-step deployment workflow of §3.2:
//! (i) build + schedule (locality-aware), (ii) notification (coordinator
//! writes), (iii) network setup (controller installs Table 3 rules),
//! (iv) application setup (agents launch workers attached to switches),
//! (v) data flows.
//!
//! Reconfiguration executes the four-step workflow: request → topology
//! reschedule → notification → network/application reconfiguration, using
//! the §3.5 stable-update ordering computed by [`crate::update`].

use crate::agent::WorkerAgent;
use crate::update::{plan_update, UpdatePlan};
use crate::worker::{IoConfig, Route};
use crate::{CoreError, Result, ACKER_NODE};
use std::collections::BTreeMap;
use std::time::Duration;
use typhoon_controller::{rules, ControlTuple, Controller};
use typhoon_coordinator::global::GlobalState;
use typhoon_diag::DiagMutex as Mutex;
use typhoon_model::{
    AppId, Grouping, HostId, LocalityScheduler, LogicalTopology, NodeKind, PhysicalTopology,
    ReconfigRequest, RoundRobinScheduler, RoutingState, Scheduler, TaskAssignment, TaskId,
};
use typhoon_net::MacAddr;
use typhoon_openflow::{FlowMatch, FlowMod};

/// Which placement strategy the manager schedules with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Typhoon's locality scheduler (§5): co-locate topological neighbours.
    #[default]
    Locality,
    /// Storm's default round-robin spread (the ablation baseline).
    RoundRobin,
}

impl SchedulerKind {
    fn as_scheduler(self) -> &'static dyn Scheduler {
        match self {
            SchedulerKind::Locality => &LocalityScheduler,
            SchedulerKind::RoundRobin => &RoundRobinScheduler,
        }
    }
}

/// Manager-level configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Default I/O layer settings for launched workers.
    pub io: IoConfig,
    /// Guaranteed-processing mode for submitted topologies.
    pub acking: bool,
    /// Ack replay timeout.
    pub ack_timeout: Duration,
    /// Max in-flight spout roots.
    pub max_pending: usize,
    /// Wait for launched workers to become ready.
    pub ready_timeout: Duration,
    /// Settling time after `SIGNAL` flushes before routing updates.
    pub signal_wait: Duration,
    /// Drain time between rerouting and killing removed workers.
    pub drain_wait: Duration,
    /// Placement strategy (ablation hook; Typhoon defaults to locality).
    pub scheduler: SchedulerKind,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            io: IoConfig::default(),
            acking: false,
            ack_timeout: Duration::from_secs(30),
            max_pending: 1024,
            ready_timeout: Duration::from_secs(10),
            signal_wait: Duration::from_millis(50),
            drain_wait: Duration::from_millis(100),
            scheduler: SchedulerKind::default(),
        }
    }
}

/// The streaming manager.
pub struct StreamingManager {
    global: GlobalState,
    controller: Controller,
    agents: BTreeMap<HostId, std::sync::Arc<WorkerAgent>>,
    config: ManagerConfig,
    next_app: Mutex<u16>,
}

impl StreamingManager {
    /// Creates a manager over the cluster's agents.
    pub fn new(
        global: GlobalState,
        controller: Controller,
        agents: BTreeMap<HostId, std::sync::Arc<WorkerAgent>>,
        config: ManagerConfig,
    ) -> Self {
        StreamingManager {
            global,
            controller,
            agents,
            config,
            next_app: Mutex::new(1),
        }
    }

    /// The cluster's global state handle.
    pub fn global(&self) -> &GlobalState {
        &self.global
    }

    fn agent(&self, host: HostId) -> Result<&std::sync::Arc<WorkerAgent>> {
        self.agents
            .get(&host)
            .ok_or(CoreError::Timeout("agent for host"))
    }

    /// Builds the outgoing routes for one node from topology state.
    fn build_routes(
        logical: &LogicalTopology,
        physical: &PhysicalTopology,
        node: &str,
    ) -> Vec<Route> {
        let mut routes = Vec::new();
        for edge in logical.edges_from(node) {
            let hops = physical.tasks_of(&edge.to);
            let key_indices = match &edge.grouping {
                Grouping::Fields(keys) => logical
                    .node(node)
                    .and_then(|n| n.output_fields.resolve(keys).ok())
                    .unwrap_or_default(),
                _ => Vec::new(),
            };
            routes.push(Route {
                stream: edge.stream,
                downstream: edge.to.clone(),
                state: RoutingState::new(edge.grouping.clone(), hops, key_indices),
            });
        }
        routes
    }

    fn launch_assignment(
        &self,
        logical: &LogicalTopology,
        physical: &PhysicalTopology,
        assignment: &TaskAssignment,
        acker: Option<TaskId>,
    ) -> Result<()> {
        let agent = self.agent(assignment.host)?;
        let is_acker = assignment.node == ACKER_NODE;
        let kind = if is_acker {
            NodeKind::Bolt
        } else {
            logical
                .node(&assignment.node)
                .map(|n| n.kind)
                .ok_or_else(|| CoreError::UnknownTopology(assignment.node.clone()))?
        };
        let routes = if is_acker {
            Vec::new()
        } else {
            Self::build_routes(logical, physical, &assignment.node)
        };
        let config = crate::worker::WorkerConfig {
            app: physical.app,
            task: assignment.task,
            node: assignment.node.clone(),
            component: assignment.component.clone(),
            io: self.config.io.clone(),
            acking: self.config.acking,
            acker: acker.filter(|&a| a != assignment.task),
            ack_timeout: self.config.ack_timeout,
            max_pending: self.config.max_pending,
            // Spouts start deactivated; the manager sends ACTIVATE once the
            // whole topology is deployed (Table 2, step (v) of §3.2).
            start_active: false,
        };
        agent.launch(
            kind,
            is_acker,
            typhoon_openflow::PortNo(assignment.switch_port),
            config,
            routes,
        )?;
        agent.wait_ready(physical.app, assignment.task, self.config.ready_timeout)?;
        Ok(())
    }

    /// Submits a topology (the §3.2 deployment workflow). Returns the
    /// assigned application ID.
    pub fn submit(&self, logical: LogicalTopology) -> Result<AppId> {
        logical.validate()?;
        let app = {
            let mut next = self.next_app.lock();
            let id = AppId(*next);
            *next += 1;
            id
        };
        // (i) Schedule with the Typhoon locality scheduler over the
        // currently registered agents, then let each agent assign the
        // actual switch ports it owns.
        let host_infos: Vec<typhoon_model::HostInfo> = self
            .agents
            .values()
            .map(|a| {
                let mut info = a.info().clone();
                info.slots = info.slots.saturating_sub(a.used_slots());
                info
            })
            .collect();
        let mut physical =
            self.config
                .scheduler
                .as_scheduler()
                .schedule(app, &logical, &host_infos)?;
        for a in &mut physical.assignments {
            a.switch_port = self.agent(a.host)?.alloc_port().0;
        }
        // Guaranteed processing: append the system acker.
        let acker = if self.config.acking {
            let host = physical.assignments[0].host;
            let task = physical.alloc_task_id();
            let port = self.agent(host)?.alloc_port().0;
            physical.assignments.push(TaskAssignment {
                task,
                node: ACKER_NODE.into(),
                component: ACKER_NODE.into(),
                host,
                switch_port: port,
            });
            Some(task)
        } else {
            None
        };
        // (ii) Notification: write the global states.
        self.global.set_logical(&logical)?;
        self.global.set_physical(&physical)?;
        // (iii) Network setup: Table 3 rules (+ acker channels).
        self.controller.install_topology(&logical, &physical);
        if let Some(acker) = acker {
            self.install_ack_rules(&physical, acker);
        }
        // (iv) Application setup: launch workers.
        for assignment in &physical.assignments {
            self.launch_assignment(&logical, &physical, assignment, acker)?;
        }
        // (v) Activate the topology: unthrottle the first workers.
        self.activate_spouts(app, &logical, &physical);
        Ok(app)
    }

    fn activate_spouts(&self, app: AppId, logical: &LogicalTopology, physical: &PhysicalTopology) {
        for node in logical.nodes.iter().filter(|n| n.kind == NodeKind::Spout) {
            for task in physical.tasks_of(&node.name) {
                self.controller
                    .send_control(app, task, &ControlTuple::Activate);
            }
        }
    }

    /// Pauses the topology by throttling its first workers (`DEACTIVATE`,
    /// Table 2) — the "pause" half of the §8 pause-and-resume relocation.
    fn deactivate_spouts(
        &self,
        app: AppId,
        logical: &LogicalTopology,
        physical: &PhysicalTopology,
    ) {
        for node in logical.nodes.iter().filter(|n| n.kind == NodeKind::Spout) {
            for task in physical.tasks_of(&node.name) {
                self.controller
                    .send_control(app, task, &ControlTuple::Deactivate);
            }
        }
    }

    fn install_ack_rules(&self, physical: &PhysicalTopology, acker: TaskId) {
        for a in &physical.assignments {
            if a.task == acker {
                continue;
            }
            for (host, fm) in rules::unicast_rules(physical, a.task, acker) {
                self.controller.send_flow_mod(host, fm);
            }
            for (host, fm) in rules::unicast_rules(physical, acker, a.task) {
                self.controller.send_flow_mod(host, fm);
            }
        }
        for host in self.controller.hosts() {
            self.controller.sync_switch(host, Duration::from_secs(5));
        }
    }

    /// Incremental reschedule: preserve every surviving task's placement,
    /// add tasks for grown/ re-logic'd nodes, drop tasks for shrunk nodes.
    fn reschedule(
        &self,
        old_physical: &PhysicalTopology,
        new_logical: &LogicalTopology,
    ) -> Result<PhysicalTopology> {
        let mut physical = old_physical.clone();
        physical.version += 1;
        for node in &new_logical.nodes {
            let existing: Vec<TaskAssignment> = physical
                .assignments
                .iter()
                .filter(|a| a.node == node.name)
                .cloned()
                .collect();
            let logic_changed = existing.iter().any(|a| a.component != node.component);
            let keep: Vec<TaskAssignment> = if logic_changed {
                // §6.2: deploy new-logic workers, kill old ones.
                physical.assignments.retain(|a| a.node != node.name);
                Vec::new()
            } else if existing.len() > node.parallelism {
                // Shrink: retire the highest task IDs.
                let mut sorted = existing.clone();
                sorted.sort_by_key(|a| a.task);
                let keep: Vec<TaskAssignment> = sorted[..node.parallelism].to_vec();
                let keep_ids: Vec<TaskId> = keep.iter().map(|a| a.task).collect();
                physical
                    .assignments
                    .retain(|a| a.node != node.name || keep_ids.contains(&a.task));
                keep
            } else {
                existing
            };
            // Grow to the target parallelism.
            let mut need = node.parallelism.saturating_sub(keep.len());
            while need > 0 {
                let host = self.pick_host(&physical)?;
                let task = physical.alloc_task_id();
                let port = self.agent(host)?.alloc_port().0;
                physical.assignments.push(TaskAssignment {
                    task,
                    node: node.name.clone(),
                    component: node.component.clone(),
                    host,
                    switch_port: port,
                });
                need -= 1;
            }
        }
        Ok(physical)
    }

    /// The host with the most free slots (greedy).
    fn pick_host(&self, physical: &PhysicalTopology) -> Result<HostId> {
        let by_host = physical.by_host();
        self.agents
            .values()
            .map(|agent| {
                let planned = by_host.get(&agent.info().id).map_or(0, Vec::len);
                let used = agent.used_slots().max(planned);
                (agent.info().id, agent.info().slots.saturating_sub(used))
            })
            .max_by_key(|&(_, free)| free)
            .filter(|&(_, free)| free > 0)
            .map(|(h, _)| h)
            .ok_or(CoreError::Timeout("free worker slot"))
    }

    /// Executes one reconfiguration request — the dynamic topology manager
    /// (§3.2 reconfiguration workflow + §3.5 stable update).
    pub fn reconfigure(&self, req: &ReconfigRequest) -> Result<()> {
        let name = &req.topology;
        let old_logical = self.global.get_logical(name)?;
        let old_physical = self.global.get_physical(name)?;
        let app = old_physical.app;
        let acker = old_physical
            .assignments
            .iter()
            .find(|a| a.node == ACKER_NODE)
            .map(|a| a.task);

        let mut new_logical = old_logical.clone();
        req.apply(&mut new_logical)?;
        let mut new_physical = self.reschedule(&old_physical, &new_logical)?;
        // §8 relocations: placement-only moves. The relocated worker gets a
        // fresh task ID on the target host (IDs are never reused); the
        // normal stable-update plan then launches/reroutes/retires it, with
        // SIGNAL flushes for stateful nodes.
        let relocating = req
            .ops
            .iter()
            .any(|op| matches!(op, typhoon_model::ReconfigOp::Relocate { .. }));
        for op in &req.ops {
            if let typhoon_model::ReconfigOp::Relocate { task, target } = op {
                let old = new_physical
                    .assignment(*task)
                    .cloned()
                    .ok_or_else(|| CoreError::UnknownTopology(format!("task {task}")))?;
                new_physical.assignments.retain(|a| a.task != *task);
                let new_task = new_physical.alloc_task_id();
                let port = self.agent(*target)?.alloc_port().0;
                new_physical.assignments.push(TaskAssignment {
                    task: new_task,
                    node: old.node,
                    component: old.component,
                    host: *target,
                    switch_port: port,
                });
                new_physical.version += 1;
            }
        }
        let plan = plan_update(&old_logical, &new_logical, &old_physical, &new_physical);

        // 0. Pause the stream for relocations (pause-and-resume, §8).
        if relocating {
            self.deactivate_spouts(app, &old_logical, &old_physical);
            std::thread::sleep(self.config.signal_wait); // LINT: allow-sleep(reconfiguration quiesce wait from the live-migration protocol)
        }
        // 1. Launch the new workers first (Fig. 6(a) step 1) — they are
        //    born with the *new* routing table.
        for assignment in &plan.launches {
            self.launch_assignment(&new_logical, &new_physical, assignment, acker)?;
        }
        // 2. Notification + network setup for the new shape.
        self.global.set_logical(&new_logical)?;
        self.global.set_physical(&new_physical)?;
        self.controller
            .install_topology(&new_logical, &new_physical);
        if let Some(acker) = acker {
            self.install_ack_rules(&new_physical, acker);
        }
        self.execute_plan(app, &plan)?;
        // Newly launched spout tasks (spout scale-up) need activation.
        self.activate_spouts(app, &new_logical, &new_physical);
        Ok(())
    }

    /// Applies the control-tuple + removal phases of a stable update.
    fn execute_plan(&self, app: AppId, plan: &UpdatePlan) -> Result<()> {
        // 3a. SIGNAL stateful workers so caches flush under old routing.
        for &task in &plan.signals {
            self.controller
                .send_control(app, task, &ControlTuple::Signal);
        }
        if !plan.signals.is_empty() {
            std::thread::sleep(self.config.signal_wait); // LINT: allow-sleep(reconfiguration quiesce wait from the live-migration protocol)
        }
        // 3b/3c. Re-route the predecessors via ROUTING control tuples.
        for (task, downstream, hops) in &plan.routing_updates {
            self.controller.send_control(
                app,
                *task,
                &ControlTuple::Routing {
                    downstream: downstream.clone(),
                    next_hops: Some(hops.clone()),
                    policy: None,
                },
            );
        }
        for (task, downstream, grouping, keys) in &plan.policy_updates {
            self.controller.send_control(
                app,
                *task,
                &ControlTuple::Routing {
                    downstream: downstream.clone(),
                    next_hops: None,
                    policy: Some((grouping.clone(), keys.clone())),
                },
            );
        }
        // 4. Drain, then retire removed workers and their rules.
        if !plan.removals.is_empty() {
            std::thread::sleep(self.config.drain_wait); // LINT: allow-sleep(drain wait before retiring removed workers)
            for assignment in &plan.removals {
                if let Ok(agent) = self.agent(assignment.host) {
                    agent.kill(app, assignment.task);
                }
                let mac = MacAddr::worker(app.0, assignment.task);
                for host in self.controller.hosts() {
                    self.controller
                        .send_flow_mod(host, FlowMod::delete(FlowMatch::any().dl_dst(mac)));
                    self.controller
                        .send_flow_mod(host, FlowMod::delete(FlowMatch::any().dl_src(mac)));
                }
            }
        }
        Ok(())
    }

    /// Drains and executes every pending reconfiguration request (the
    /// coordinator is the hand-off point from the REST API and the
    /// auto-scaler app). Returns how many were executed.
    pub fn process_pending(&self) -> usize {
        let mut executed = 0;
        let topologies = match self.global.list_topologies() {
            Ok(t) => t,
            Err(_) => return 0,
        };
        for name in topologies {
            if let Ok(requests) = self.global.take_reconfigs(&name) {
                for req in requests {
                    match self.reconfigure(&req) {
                        Ok(()) => executed += 1,
                        Err(e) => {
                            // Failed requests are reported, not retried: the
                            // user resubmits after fixing the cause (e.g.
                            // freeing capacity).
                            eprintln!("typhoon: reconfiguration of {name:?} failed: {e}");
                        }
                    }
                }
            }
        }
        executed
    }

    /// Kills a topology: stop workers, remove rules and global state.
    pub fn kill(&self, name: &str) -> Result<()> {
        let logical = self.global.get_logical(name)?;
        let physical = self.global.get_physical(name)?;
        for assignment in &physical.assignments {
            if let Ok(agent) = self.agent(assignment.host) {
                agent.kill(physical.app, assignment.task);
            }
        }
        self.controller.uninstall_topology(&logical, &physical);
        self.global.remove_topology(name)?;
        Ok(())
    }
}

impl std::fmt::Debug for StreamingManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StreamingManager({} agents)", self.agents.len())
    }
}
