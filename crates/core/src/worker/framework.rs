//! The Typhoon framework layer (§3.3.2, Fig. 4).
//!
//! Owns the worker's routing state (Listing 1), performs tuple
//! de/serialization, classifies incoming tuples (data vs Table 2 control
//! streams), and applies SDN-driven reconfigurations: `ROUTING` updates
//! rewrite `nextHops`/policy in place, `INPUT_RATE`/`ACTIVATE`/`DEACTIVATE`
//! gate the spout, `BATCH_SIZE` retunes the I/O layer.
//!
//! The crucial difference from the Storm executor: [`FrameworkLayer::route`]
//! serializes a tuple **once**, even for one-to-many delivery — a broadcast
//! is one blob addressed to `ff:ff:ff:ff:ff:ff`, replicated by the switch.

use bytes::Bytes;
use std::sync::Arc;
use typhoon_controller::ControlTuple;
use typhoon_metrics::Registry;
use typhoon_model::{AppId, Grouping, RouteDecision, RoutingState, TaskId};
use typhoon_net::MacAddr;
use typhoon_trace::{Hop, TraceCtx};
use typhoon_tuple::ser::{encode_tuple_vec, BatchEncoder, SerStats};
use typhoon_tuple::{MessageId, StreamId, Tuple};

/// One outgoing edge of this worker's node.
pub struct Route {
    /// Stream this edge subscribes to.
    pub stream: StreamId,
    /// Downstream logical node.
    pub downstream: String,
    /// Live routing state, reconfigurable via `ROUTING` control tuples.
    pub state: RoutingState,
}

/// A serialized, addressed emission ready for the I/O layer.
#[derive(Debug, Clone)]
pub struct Addressed {
    /// Destination worker (or broadcast) address.
    pub dst: MacAddr,
    /// The serialized tuple.
    pub blob: Bytes,
    /// The anchor XOR contribution of this emission (acking).
    pub anchor_xor: u64,
    /// End-to-end trace id carried by the tuple (0 = untraced).
    pub trace: u64,
}

/// The framework layer.
pub struct FrameworkLayer {
    app: AppId,
    task: TaskId,
    routes: Vec<Route>,
    ser: Arc<SerStats>,
    registry: Registry,
    rng_state: u64,
    trace: TraceCtx,
    // Emission-position scope for anchor stamping: `emission_seq` counts
    // anchors handed out while routing tuples of `seq_root`, and resets
    // when the root changes (= a new input is being processed).
    seq_root: u64,
    emission_seq: u16,
}

impl FrameworkLayer {
    /// Builds the layer for one worker.
    pub fn new(
        app: AppId,
        task: TaskId,
        routes: Vec<Route>,
        ser: Arc<SerStats>,
        registry: Registry,
    ) -> Self {
        FrameworkLayer {
            app,
            task,
            routes,
            ser,
            registry,
            rng_state: (task.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
            trace: TraceCtx::disabled(),
            seq_root: 0,
            emission_seq: 0,
        }
    }

    /// Installs this worker's tracing context (records `Serialize` spans).
    pub fn set_trace(&mut self, trace: TraceCtx) {
        self.trace = trace;
    }

    /// This worker's address on the SDN fabric.
    pub fn mac(&self) -> MacAddr {
        MacAddr::worker(self.app.0, self.task)
    }

    fn next_anchor(&mut self) -> u64 {
        // xorshift64*: deterministic per task, cheap, never zero.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1
    }

    /// An anchor whose low 16 bits carry the *emission position* within
    /// the current input's processing (crash recovery, see
    /// [`MessageId::ANCHOR_POSITION_MASK`]): for a deterministic bolt the
    /// n-th emission of a replayed input is the same logical tuple, so
    /// `(base_root, position)` is a replay-stable dedup key downstream.
    /// The high 48 bits stay random so XOR-lineage tracking is unaffected.
    fn scoped_anchor(&mut self, root: u64) -> u64 {
        if root != self.seq_root {
            self.seq_root = root;
            self.emission_seq = 0;
        }
        let pos = self.emission_seq as u64;
        self.emission_seq = self.emission_seq.wrapping_add(1);
        loop {
            let high = self.next_anchor() & !MessageId::ANCHOR_POSITION_MASK;
            if high != 0 {
                return high | pos;
            }
        }
    }

    /// Routes one outgoing tuple, returning serialized, addressed blobs.
    ///
    /// * Unicast decision → one serialization, one blob.
    /// * Broadcast decision → **one serialization**, one blob addressed to
    ///   broadcast; the SDN data plane replicates it (§3.3.1). When the
    ///   tuple is anchored (acking), broadcast falls back to
    ///   per-destination blobs because each copy needs a distinct anchor —
    ///   the paper never combines broadcast and guaranteed processing.
    pub fn route(&mut self, mut tuple: Tuple, acking: bool) -> Vec<Addressed> {
        let anchored = acking && tuple.meta.message_id.root != 0;
        let root = tuple.meta.message_id.root;
        let trace = tuple.meta.trace;
        self.trace.record(trace, Hop::Serialize);
        // Collect decisions first: routing mutates per-route state.
        let mut unicasts: Vec<TaskId> = Vec::new();
        let mut broadcast_hops: Option<Vec<TaskId>> = None;
        for route in &mut self.routes {
            if route.stream != tuple.meta.stream {
                continue;
            }
            match route.state.route(&tuple) {
                RouteDecision::One(dst) => unicasts.push(dst),
                RouteDecision::Broadcast => {
                    broadcast_hops
                        .get_or_insert_with(Vec::new)
                        .extend_from_slice(route.state.next_hops());
                }
                RouteDecision::Drop => {
                    self.registry.counter("tuples.unroutable").inc();
                }
            }
        }
        // The dominant case — one unicast emission, nothing to broadcast —
        // skips the batch encoder's bookkeeping entirely: one encode, one
        // buffer, straight to the I/O layer.
        if unicasts.len() == 1 && broadcast_hops.is_none() {
            let dst = unicasts[0];
            let anchor = if anchored {
                let anchor = self.scoped_anchor(root);
                tuple.meta.message_id = MessageId { root, anchor };
                anchor
            } else {
                0
            };
            return vec![Addressed {
                dst: MacAddr::worker(self.app.0, dst),
                blob: Bytes::from(encode_tuple_vec(&tuple, &self.ser)),
                anchor_xor: anchor,
                trace,
            }];
        }
        // Every emission of this call encodes into one shared buffer; the
        // blobs handed to the I/O layer are refcounted slices of it, so a
        // multi-destination emission costs one allocation end to end.
        let mut enc = BatchEncoder::new();
        let mut addressed: Vec<(MacAddr, u64)> = Vec::new();
        for dst in unicasts {
            let anchor = if anchored {
                let anchor = self.scoped_anchor(root);
                tuple.meta.message_id = MessageId { root, anchor };
                anchor
            } else {
                0
            };
            addressed.push((MacAddr::worker(self.app.0, dst), anchor));
            enc.push(&tuple, &self.ser);
        }
        if let Some(hops) = broadcast_hops {
            if anchored {
                // Per-destination anchors require per-destination blobs.
                for dst in hops {
                    let anchor = self.scoped_anchor(root);
                    tuple.meta.message_id = MessageId { root, anchor };
                    addressed.push((MacAddr::worker(self.app.0, dst), anchor));
                    enc.push(&tuple, &self.ser);
                }
            } else if !hops.is_empty() {
                // The Typhoon fast path: serialize once, broadcast address,
                // network-layer replication.
                tuple.meta.message_id = MessageId::NONE;
                addressed.push((MacAddr::BROADCAST, 0));
                enc.push(&tuple, &self.ser);
            }
        }
        addressed
            .into_iter()
            .zip(enc.finish())
            .map(|((dst, anchor_xor), blob)| Addressed {
                dst,
                blob,
                anchor_xor,
                trace,
            })
            .collect()
    }

    /// Serializes a tuple addressed to one explicit task (framework
    /// messages: acks, metric responses).
    pub fn direct(&mut self, tuple: &Tuple, dst: TaskId) -> Addressed {
        Addressed {
            dst: MacAddr::worker(self.app.0, dst),
            blob: Bytes::from(encode_tuple_vec(tuple, &self.ser)),
            anchor_xor: 0,
            trace: 0,
        }
    }

    /// Serializes a tuple addressed to the SDN controller (`METRIC_RESP`).
    pub fn to_controller(&mut self, tuple: &Tuple) -> Addressed {
        Addressed {
            dst: MacAddr::CONTROLLER,
            blob: Bytes::from(encode_tuple_vec(tuple, &self.ser)),
            anchor_xor: 0,
            trace: 0,
        }
    }

    /// Applies a `ROUTING` control tuple: replace `nextHops` and/or the
    /// routing policy for the edge toward `downstream` (§3.3.2).
    pub fn apply_routing(
        &mut self,
        downstream: &str,
        next_hops: Option<Vec<TaskId>>,
        policy: Option<(Grouping, Vec<usize>)>,
    ) -> bool {
        let mut applied = false;
        for route in self
            .routes
            .iter_mut()
            .filter(|r| r.downstream == downstream)
        {
            if let Some(hops) = &next_hops {
                route.state.set_next_hops(hops.clone());
                applied = true;
            }
            if let Some((grouping, key_indices)) = &policy {
                route
                    .state
                    .set_policy(grouping.clone(), key_indices.clone());
                applied = true;
            }
        }
        if applied {
            self.registry.counter("control.routing_applied").inc();
        }
        applied
    }

    /// Classifies an incoming decoded tuple.
    pub fn classify(&self, tuple: &Tuple) -> Classified {
        if let Some(ct) = ControlTuple::from_tuple(tuple) {
            Classified::Control(ct)
        } else if tuple.meta.stream == StreamId::ACK {
            Classified::Ack
        } else if tuple.meta.stream == StreamId::ACK_RESULT {
            Classified::AckResult
        } else {
            Classified::Data
        }
    }

    /// Read access to the routes (tests, drain checks).
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }
}

/// The framework layer's tuple classification (Fig. 4's tuple classifier).
#[derive(Debug)]
pub enum Classified {
    /// Deliver to the application computation layer.
    Data,
    /// A Table 2 control tuple, consumed by the framework layer (or, for
    /// `SIGNAL`, forwarded to a stateful bolt's flush hook).
    Control(ControlTuple),
    /// Acker bookkeeping input.
    Ack,
    /// Acker verdict for a spout.
    AckResult,
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_tuple::Value;

    fn layer(grouping: Grouping, hops: Vec<u32>) -> FrameworkLayer {
        FrameworkLayer::new(
            AppId(1),
            TaskId(7),
            vec![Route {
                stream: StreamId::DEFAULT,
                downstream: "sink".into(),
                state: RoutingState::new(grouping, hops.into_iter().map(TaskId).collect(), vec![]),
            }],
            SerStats::shared(),
            Registry::new(),
        )
    }

    fn data_tuple() -> Tuple {
        Tuple::new(TaskId(7), vec![Value::Int(1)])
    }

    #[test]
    fn broadcast_serializes_exactly_once() {
        let mut fw = layer(Grouping::All, vec![1, 2, 3, 4, 5, 6]);
        let out = fw.route(data_tuple(), false);
        assert_eq!(out.len(), 1, "one blob regardless of fanout");
        assert_eq!(out[0].dst, MacAddr::BROADCAST);
        assert_eq!(
            fw.ser.counts().0,
            1,
            "single serialization — the Fig. 9 win"
        );
    }

    #[test]
    fn unicast_serializes_once_per_tuple() {
        let mut fw = layer(Grouping::Shuffle, vec![1, 2, 3]);
        for _ in 0..6 {
            let out = fw.route(data_tuple(), false);
            assert_eq!(out.len(), 1);
            assert_ne!(out[0].dst, MacAddr::BROADCAST);
        }
        assert_eq!(fw.ser.counts().0, 6);
    }

    #[test]
    fn anchored_broadcast_falls_back_to_per_destination() {
        let mut fw = layer(Grouping::All, vec![1, 2, 3]);
        let t = data_tuple().with_message_id(MessageId { root: 9, anchor: 0 });
        let out = fw.route(t, true);
        assert_eq!(out.len(), 3);
        let xor = out.iter().fold(0u64, |acc, a| acc ^ a.anchor_xor);
        assert_ne!(xor, 0);
        let anchors: std::collections::HashSet<u64> = out.iter().map(|a| a.anchor_xor).collect();
        assert_eq!(anchors.len(), 3, "distinct anchors per copy");
    }

    #[test]
    fn anchored_broadcast_blobs_share_one_allocation() {
        let mut fw = layer(Grouping::All, vec![1, 2, 3]);
        let t = data_tuple().with_message_id(MessageId { root: 9, anchor: 0 });
        let out = fw.route(t, true);
        assert_eq!(out.len(), 3);
        // The three per-destination blobs are contiguous slices of the same
        // encode buffer — batched zero-copy, not three allocations.
        for pair in out.windows(2) {
            // SAFETY: one-past-the-end pointer of a live slice, compared
            // (never dereferenced) against the next slice's start.
            let end = unsafe { pair[0].blob.as_ptr().add(pair[0].blob.len()) };
            assert_eq!(end, pair[1].blob.as_ptr(), "adjacent slices of one buffer");
        }
    }

    #[test]
    fn routing_control_updates_next_hops_in_place() {
        let mut fw = layer(Grouping::Shuffle, vec![1, 2]);
        assert!(fw.apply_routing("sink", Some(vec![TaskId(1), TaskId(2), TaskId(3)]), None));
        let seen: std::collections::HashSet<MacAddr> = (0..3)
            .map(|_| fw.route(data_tuple(), false)[0].dst)
            .collect();
        assert_eq!(seen.len(), 3, "new hop is in rotation");
    }

    #[test]
    fn routing_control_updates_policy_type() {
        let mut fw = layer(Grouping::Fields(vec!["k".into()]), vec![1, 2]);
        assert!(fw.apply_routing("sink", None, Some((Grouping::Shuffle, vec![]))));
        let a = fw.route(data_tuple(), false)[0].dst;
        let b = fw.route(data_tuple(), false)[0].dst;
        assert_ne!(a, b, "shuffle alternates identical keys");
    }

    #[test]
    fn routing_update_for_unknown_downstream_is_a_noop() {
        let mut fw = layer(Grouping::Shuffle, vec![1]);
        assert!(!fw.apply_routing("ghost", Some(vec![]), None));
    }

    #[test]
    fn classify_separates_control_ack_and_data() {
        let fw = layer(Grouping::Shuffle, vec![1]);
        assert!(matches!(fw.classify(&data_tuple()), Classified::Data));
        let ct = ControlTuple::Signal.to_tuple(TaskId(0));
        assert!(matches!(
            fw.classify(&ct),
            Classified::Control(ControlTuple::Signal)
        ));
        let ack = Tuple::on_stream(TaskId(0), StreamId::ACK, vec![]);
        assert!(matches!(fw.classify(&ack), Classified::Ack));
        let res = Tuple::on_stream(TaskId(0), StreamId::ACK_RESULT, vec![]);
        assert!(matches!(fw.classify(&res), Classified::AckResult));
    }

    #[test]
    fn empty_broadcast_hops_produce_nothing() {
        let mut fw = layer(Grouping::All, vec![]);
        assert!(fw.route(data_tuple(), false).is_empty());
    }

    #[test]
    fn anchor_positions_count_per_input_and_reset_on_new_root() {
        let mut fw = layer(Grouping::Shuffle, vec![1, 2]);
        // Three emissions while processing root A: positions 0, 1, 2.
        for expect in 0..3u16 {
            let t = data_tuple().with_message_id(MessageId {
                root: 0xA00,
                anchor: 0,
            });
            let out = fw.route(t, true);
            assert_eq!(MessageId::anchor_position(out[0].anchor_xor), expect);
        }
        // A new input (root B) restarts the position sequence.
        let t = data_tuple().with_message_id(MessageId {
            root: 0xB00,
            anchor: 0,
        });
        let out = fw.route(t, true);
        assert_eq!(MessageId::anchor_position(out[0].anchor_xor), 0);
        // A replay round of root A shares its base: positions restart so
        // dedup keys line up with round 0.
        let replayed = MessageId::next_round(0xA00);
        let t = data_tuple().with_message_id(MessageId {
            root: replayed,
            anchor: 0,
        });
        let out = fw.route(t, true);
        assert_eq!(MessageId::anchor_position(out[0].anchor_xor), 0);
        assert_ne!(out[0].anchor_xor, 0, "anchors stay nonzero");
    }
}
