//! The Typhoon I/O layer (§3.3.1, Fig. 7).
//!
//! Interposes between the framework layer and the host's software SDN
//! switch: serialized tuple blobs are batched per destination (the
//! northbound library's "configurable batching"), packetized into custom
//! Ethernet frames (multiplexing + segmentation, the southbound library),
//! and pushed into the worker's DPDK-style ring port. Ingress reverses the
//! path. The batch size is runtime-tunable — the `BATCH_SIZE` control
//! tuple's hook — trading latency for throughput (Figs. 8(c)/(d)).

use bytes::Bytes;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use typhoon_metrics::Registry;
use typhoon_net::{Depacketizer, Frame, MacAddr, NetError, Packetizer};
use typhoon_switch::WorkerPort;
use typhoon_trace::{Hop, TraceCtx};

/// I/O layer tunables.
#[derive(Debug, Clone)]
pub struct IoConfig {
    /// Frame MTU (jumbo by default, matching DPDK OVS).
    pub mtu: usize,
    /// Tuples buffered per destination before a flush.
    pub batch_size: usize,
    /// Oldest-tuple age forcing a flush regardless of batch fill.
    pub batch_delay: Duration,
}

impl Default for IoConfig {
    fn default() -> Self {
        IoConfig {
            mtu: 9000,
            batch_size: 100,
            batch_delay: Duration::from_millis(2),
        }
    }
}

struct DstBatch {
    blobs: Vec<Bytes>,
    oldest: Instant,
    /// First nonzero trace id among batched blobs; stamped on the frames
    /// carrying this batch so the switch can record its span.
    trace: u64,
}

/// The worker's I/O layer: one per worker, owning its switch port.
pub struct IoLayer {
    /// The source MAC stamped on egress frames.
    pub(crate) src_mac: MacAddr,
    port: WorkerPort,
    packetizer: Packetizer,
    depacketizer: Depacketizer,
    batches: HashMap<MacAddr, DstBatch>,
    batch_size: usize,
    batch_delay: Duration,
    registry: Registry,
    trace: TraceCtx,
    egress_dead: bool,
}

impl IoLayer {
    /// Wraps a switch port for the worker addressed `src_mac`.
    pub fn new(src_mac: MacAddr, port: WorkerPort, config: &IoConfig, registry: Registry) -> Self {
        IoLayer {
            src_mac,
            port,
            packetizer: Packetizer::new(config.mtu),
            depacketizer: Depacketizer::new(),
            batches: HashMap::new(),
            batch_size: config.batch_size.max(1),
            batch_delay: config.batch_delay,
            registry,
            trace: TraceCtx::disabled(),
            egress_dead: false,
        }
    }

    /// True once an egress push observed the switch side of this worker's
    /// ring gone (detach or switch shutdown). Every later send would be
    /// silently lost, so the worker loop uses this to exit instead of
    /// spinning on a dead port.
    pub fn egress_dead(&self) -> bool {
        self.egress_dead
    }

    /// Installs this worker's tracing context (records `QueueOut` and
    /// `NetHop` spans).
    pub fn set_trace(&mut self, trace: TraceCtx) {
        self.trace = trace;
    }

    /// Currently configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Retunes the batch size (the `BATCH_SIZE` control tuple).
    pub fn set_batch_size(&mut self, n: usize) {
        self.batch_size = n.max(1);
        self.registry
            .gauge("io.batch_size")
            .set(self.batch_size as i64);
    }

    /// Frames waiting in the receive ring (the worker's queue depth, the
    /// metric the auto-scaler and load balancer poll).
    pub fn queue_depth(&self) -> usize {
        self.port.rx.len()
    }

    /// Queues one serialized tuple for `dst`, flushing if the batch fills.
    /// `trace` is the tuple's trace id (0 = untraced).
    pub fn enqueue(&mut self, dst: MacAddr, blob: Bytes, trace: u64) {
        self.trace.record(trace, Hop::QueueOut);
        let now = Instant::now();
        let batch = self.batches.entry(dst).or_insert_with(|| DstBatch {
            blobs: Vec::new(),
            oldest: now,
            trace: 0,
        });
        if batch.blobs.is_empty() {
            batch.oldest = now;
            batch.trace = 0;
        }
        if batch.trace == 0 {
            batch.trace = trace;
        }
        batch.blobs.push(blob);
        if batch.blobs.len() >= self.batch_size {
            let blobs = std::mem::take(&mut batch.blobs);
            let batch_trace = batch.trace;
            self.send_batch(dst, &blobs, batch_trace);
        }
    }

    /// Flushes batches whose oldest tuple exceeded the delay bound.
    pub fn flush_due(&mut self) {
        let now = Instant::now();
        let due: Vec<MacAddr> = self
            .batches
            .iter()
            .filter(|(_, b)| {
                !b.blobs.is_empty() && now.saturating_duration_since(b.oldest) >= self.batch_delay
            })
            .map(|(&d, _)| d)
            .collect();
        for dst in due {
            let batch = self.batches.get_mut(&dst).unwrap();
            let blobs = std::mem::take(&mut batch.blobs);
            let trace = batch.trace;
            self.send_batch(dst, &blobs, trace);
        }
    }

    /// Flushes everything (graceful shutdown: "once the worker finishes
    /// emitting any ongoing tuples, it is removed", §3.5).
    pub fn flush_all(&mut self) {
        let dsts: Vec<MacAddr> = self
            .batches
            .iter()
            .filter(|(_, b)| !b.blobs.is_empty())
            .map(|(&d, _)| d)
            .collect();
        for dst in dsts {
            let batch = self.batches.get_mut(&dst).unwrap();
            let blobs = std::mem::take(&mut batch.blobs);
            let trace = batch.trace;
            self.send_batch(dst, &blobs, trace);
        }
    }

    /// The worker's source address (derived by the caller; stored on the
    /// frames by `send_batch`'s packetizer call).
    fn send_batch(&mut self, dst: MacAddr, blobs: &[Bytes], trace: u64) {
        let src = self.src_mac;
        self.trace.record(trace, Hop::NetHop);
        for mut frame in self.packetizer.pack(src, dst, blobs) {
            frame.trace = trace;
            match self.port.tx.push(frame) {
                Ok(()) => self.registry.counter("io.frames_tx").inc(),
                Err(NetError::RingFull) => {
                    // §8: switch-level loss is possible under bursts; the
                    // worker counts it and moves on (recovery, if required,
                    // is the acker's job).
                    self.registry.counter("io.tx_dropped").inc();
                }
                Err(NetError::Disconnected | NetError::Broken(_)) => {
                    // The switch side of the ring is gone for good — flag
                    // it so the worker loop can exit instead of feeding a
                    // dead port.
                    self.egress_dead = true;
                    self.registry.counter("io.tx_disconnected").inc();
                }
                Err(_) => {
                    self.registry.counter("io.tx_errors").inc();
                }
            }
        }
    }

    /// Polls up to `max_frames` frames from the switch, reassembling
    /// complete tuple blobs into `out` as `(source, blob)` pairs.
    /// `Err(Disconnected)` means the switch detached this port.
    pub fn poll_ingress(
        &mut self,
        out: &mut Vec<(MacAddr, Bytes)>,
        max_frames: usize,
    ) -> Result<usize, NetError> {
        let mut frames: Vec<Frame> = Vec::new();
        self.port.rx.pop_batch(&mut frames, max_frames)?;
        let n = frames.len();
        for frame in &frames {
            self.registry.counter("io.frames_rx").inc();
            match self.depacketizer.push(frame) {
                Ok(blobs) => out.extend(blobs),
                Err(_) => {
                    self.registry.counter("io.rx_malformed").inc();
                }
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_openflow::PortNo;
    use typhoon_switch::{Switch, SwitchConfig};
    use typhoon_tuple::tuple::TaskId;

    fn io_on_switch(batch: usize) -> (IoLayer, Switch) {
        let (sw, _ch) = Switch::new(SwitchConfig::new(1));
        let port = sw.attach_worker(PortNo(1));
        let io = IoLayer::new(
            MacAddr::worker(1, TaskId(1)),
            port,
            &IoConfig {
                batch_size: batch,
                ..IoConfig::default()
            },
            Registry::new(),
        );
        (io, sw)
    }

    #[test]
    fn batch_flushes_on_fill() {
        let (mut io, _sw) = io_on_switch(3);
        let dst = MacAddr::worker(1, TaskId(2));
        io.enqueue(dst, Bytes::from_static(b"a"), 0);
        io.enqueue(dst, Bytes::from_static(b"b"), 0);
        assert_eq!(io.registry.snapshot().counter("io.frames_tx"), 0);
        io.enqueue(dst, Bytes::from_static(b"c"), 0);
        assert_eq!(
            io.registry.snapshot().counter("io.frames_tx"),
            1,
            "3 tuples mux into 1 frame"
        );
    }

    #[test]
    fn flush_due_honours_deadline() {
        let (mut io, _sw) = io_on_switch(1000);
        io.batch_delay = Duration::from_millis(1);
        let dst = MacAddr::worker(1, TaskId(2));
        io.enqueue(dst, Bytes::from_static(b"x"), 0);
        io.flush_due();
        // Might not be due yet on a fast machine; wait out the deadline.
        std::thread::sleep(Duration::from_millis(3));
        io.flush_due();
        assert_eq!(io.registry.snapshot().counter("io.frames_tx"), 1);
    }

    #[test]
    fn set_batch_size_applies_immediately() {
        let (mut io, _sw) = io_on_switch(1000);
        io.set_batch_size(2);
        let dst = MacAddr::worker(1, TaskId(2));
        io.enqueue(dst, Bytes::from_static(b"a"), 0);
        io.enqueue(dst, Bytes::from_static(b"b"), 0);
        assert_eq!(io.registry.snapshot().counter("io.frames_tx"), 1);
        assert_eq!(io.batch_size(), 2);
    }

    #[test]
    fn per_destination_batches_are_independent() {
        let (mut io, _sw) = io_on_switch(2);
        let d1 = MacAddr::worker(1, TaskId(2));
        let d2 = MacAddr::worker(1, TaskId(3));
        io.enqueue(d1, Bytes::from_static(b"a"), 0);
        io.enqueue(d2, Bytes::from_static(b"b"), 0);
        assert_eq!(io.registry.snapshot().counter("io.frames_tx"), 0);
        io.enqueue(d1, Bytes::from_static(b"c"), 0);
        assert_eq!(io.registry.snapshot().counter("io.frames_tx"), 1);
    }

    #[test]
    fn flush_all_drains_everything() {
        let (mut io, _sw) = io_on_switch(1000);
        io.enqueue(MacAddr::worker(1, TaskId(2)), Bytes::from_static(b"a"), 0);
        io.enqueue(MacAddr::worker(1, TaskId(3)), Bytes::from_static(b"b"), 0);
        io.flush_all();
        assert_eq!(io.registry.snapshot().counter("io.frames_tx"), 2);
    }
}
