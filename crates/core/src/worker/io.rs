//! The Typhoon I/O layer (§3.3.1, Fig. 7).
//!
//! Interposes between the framework layer and the host's software SDN
//! switch: serialized tuple blobs are batched per destination (the
//! northbound library's "configurable batching"), packetized into custom
//! Ethernet frames (multiplexing + segmentation, the southbound library),
//! and pushed into the worker's DPDK-style ring port. Ingress reverses the
//! path. The batch size is runtime-tunable — the `BATCH_SIZE` control
//! tuple's hook — trading latency for throughput (Figs. 8(c)/(d)).

use bytes::Bytes;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use typhoon_metrics::Registry;
use typhoon_net::{Depacketizer, Frame, MacAddr, NetError, Packetizer};
use typhoon_switch::WorkerPort;
use typhoon_trace::{Hop, TraceCtx};

/// I/O layer tunables.
#[derive(Debug, Clone)]
pub struct IoConfig {
    /// Frame MTU (jumbo by default, matching DPDK OVS).
    pub mtu: usize,
    /// Tuples buffered per destination before a flush.
    pub batch_size: usize,
    /// Oldest-tuple age forcing a flush regardless of batch fill.
    pub batch_delay: Duration,
}

impl Default for IoConfig {
    fn default() -> Self {
        IoConfig {
            mtu: 9000,
            batch_size: 100,
            batch_delay: Duration::from_millis(2),
        }
    }
}

struct DstBatch {
    blobs: Vec<Bytes>,
    oldest: Instant,
    /// First nonzero trace id among batched blobs; stamped on the frames
    /// carrying this batch so the switch can record its span.
    trace: u64,
}

/// The worker's I/O layer: one per worker, owning its switch port.
pub struct IoLayer {
    /// The source MAC stamped on egress frames.
    pub(crate) src_mac: MacAddr,
    port: WorkerPort,
    packetizer: Packetizer,
    depacketizer: Depacketizer,
    batches: HashMap<MacAddr, DstBatch>,
    batch_size: usize,
    batch_delay: Duration,
    registry: Registry,
    trace: TraceCtx,
    egress_dead: bool,
}

impl IoLayer {
    /// Wraps a switch port for the worker addressed `src_mac`.
    pub fn new(src_mac: MacAddr, port: WorkerPort, config: &IoConfig, registry: Registry) -> Self {
        IoLayer {
            src_mac,
            port,
            packetizer: Packetizer::new(config.mtu),
            depacketizer: Depacketizer::new(),
            batches: HashMap::new(),
            batch_size: config.batch_size.max(1),
            batch_delay: config.batch_delay,
            registry,
            trace: TraceCtx::disabled(),
            egress_dead: false,
        }
    }

    /// True once an egress push observed the switch side of this worker's
    /// ring gone (detach or switch shutdown). Every later send would be
    /// silently lost, so the worker loop uses this to exit instead of
    /// spinning on a dead port.
    pub fn egress_dead(&self) -> bool {
        self.egress_dead
    }

    /// Installs this worker's tracing context (records `QueueOut` and
    /// `NetHop` spans).
    pub fn set_trace(&mut self, trace: TraceCtx) {
        self.trace = trace;
    }

    /// Currently configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Retunes the batch size (the `BATCH_SIZE` control tuple). Lowering
    /// the knob flushes every batch already at or above the new threshold
    /// immediately — without this, buffered tuples would sit until the next
    /// push or the delay timer (the `Batcher::poll_flush_at` bug, fixed in
    /// both places).
    pub fn set_batch_size(&mut self, n: usize) {
        self.batch_size = n.max(1);
        self.registry
            .gauge("io.batch_size")
            .set(self.batch_size as i64);
        let due: Vec<MacAddr> = self
            .batches
            .iter()
            .filter(|(_, b)| b.blobs.len() >= self.batch_size)
            .map(|(&d, _)| d)
            .collect();
        for dst in due {
            let batch = self.batches.get_mut(&dst).unwrap();
            let blobs = std::mem::take(&mut batch.blobs);
            let trace = batch.trace;
            self.send_batch(dst, &blobs, trace);
        }
    }

    /// Frames waiting in the receive ring (the worker's queue depth, the
    /// metric the auto-scaler and load balancer poll).
    pub fn queue_depth(&self) -> usize {
        self.port.rx.len()
    }

    /// Queues one serialized tuple for `dst`, flushing if the batch fills.
    /// `trace` is the tuple's trace id (0 = untraced).
    pub fn enqueue(&mut self, dst: MacAddr, blob: Bytes, trace: u64) {
        self.trace.record(trace, Hop::QueueOut);
        let now = Instant::now();
        let batch = self.batches.entry(dst).or_insert_with(|| DstBatch {
            blobs: Vec::new(),
            oldest: now,
            trace: 0,
        });
        if batch.blobs.is_empty() {
            batch.oldest = now;
            batch.trace = 0;
        }
        if batch.trace == 0 {
            batch.trace = trace;
        }
        batch.blobs.push(blob);
        if batch.blobs.len() >= self.batch_size {
            let blobs = std::mem::take(&mut batch.blobs);
            let batch_trace = batch.trace;
            self.send_batch(dst, &blobs, batch_trace);
        }
    }

    /// Flushes batches whose oldest tuple exceeded the delay bound.
    pub fn flush_due(&mut self) {
        let now = Instant::now();
        let due: Vec<MacAddr> = self
            .batches
            .iter()
            .filter(|(_, b)| {
                !b.blobs.is_empty() && now.saturating_duration_since(b.oldest) >= self.batch_delay
            })
            .map(|(&d, _)| d)
            .collect();
        for dst in due {
            let batch = self.batches.get_mut(&dst).unwrap();
            let blobs = std::mem::take(&mut batch.blobs);
            let trace = batch.trace;
            self.send_batch(dst, &blobs, trace);
        }
    }

    /// Flushes everything (graceful shutdown: "once the worker finishes
    /// emitting any ongoing tuples, it is removed", §3.5).
    pub fn flush_all(&mut self) {
        let dsts: Vec<MacAddr> = self
            .batches
            .iter()
            .filter(|(_, b)| !b.blobs.is_empty())
            .map(|(&d, _)| d)
            .collect();
        for dst in dsts {
            let batch = self.batches.get_mut(&dst).unwrap();
            let blobs = std::mem::take(&mut batch.blobs);
            let trace = batch.trace;
            self.send_batch(dst, &blobs, trace);
        }
    }

    /// The worker's source address (derived by the caller; stored on the
    /// frames by `send_batch`'s packetizer call).
    fn send_batch(&mut self, dst: MacAddr, blobs: &[Bytes], trace: u64) {
        let src = self.src_mac;
        self.trace.record(trace, Hop::NetHop);
        // Batch occupancy at flush time: full batches mean the size knob is
        // the binding constraint (throughput mode), small ones mean the
        // delay timer is (latency mode).
        self.registry
            .histogram("io.batch_occupancy")
            .record(blobs.len() as u64);
        let mut frames = self.packetizer.pack(src, dst, blobs);
        for frame in &mut frames {
            frame.trace = trace;
        }
        let pushed = self.port.tx.push_batch(&mut frames);
        if pushed.enqueued > 0 {
            self.registry
                .counter("io.frames_tx")
                .add(pushed.enqueued as u64);
        }
        if pushed.dropped > 0 {
            // §8: switch-level loss is possible under bursts; the worker
            // counts it and moves on (recovery, if required, is the
            // acker's job).
            self.registry
                .counter("io.tx_dropped")
                .add(pushed.dropped as u64);
        }
        if pushed.disconnected {
            // The switch side of the ring is gone for good — flag it so
            // the worker loop can exit instead of feeding a dead port.
            // `frames` still holds the batch remainder push_batch refused.
            self.egress_dead = true;
            self.registry
                .counter("io.tx_disconnected")
                .add(frames.len().max(1) as u64);
        }
    }

    /// Polls up to `max_frames` frames from the switch, reassembling
    /// complete tuple blobs into `out` as `(source, blob)` pairs.
    /// `Err(Disconnected)` means the switch detached this port.
    pub fn poll_ingress(
        &mut self,
        out: &mut Vec<(MacAddr, Bytes)>,
        max_frames: usize,
    ) -> Result<usize, NetError> {
        let mut frames: Vec<Frame> = Vec::new();
        self.port.rx.pop_batch(&mut frames, max_frames)?;
        let n = frames.len();
        if n > 0 {
            self.registry.counter("io.frames_rx").add(n as u64);
        }
        for frame in &frames {
            match self.depacketizer.push(frame) {
                Ok(blobs) => out.extend(blobs),
                Err(_) => {
                    self.registry.counter("io.rx_malformed").inc();
                }
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_openflow::PortNo;
    use typhoon_switch::{Switch, SwitchConfig};
    use typhoon_tuple::tuple::TaskId;

    fn io_on_switch(batch: usize) -> (IoLayer, Switch) {
        let (sw, _ch) = Switch::new(SwitchConfig::new(1));
        let port = sw.attach_worker(PortNo(1));
        let io = IoLayer::new(
            MacAddr::worker(1, TaskId(1)),
            port,
            &IoConfig {
                batch_size: batch,
                ..IoConfig::default()
            },
            Registry::new(),
        );
        (io, sw)
    }

    #[test]
    fn batch_flushes_on_fill() {
        let (mut io, _sw) = io_on_switch(3);
        let dst = MacAddr::worker(1, TaskId(2));
        io.enqueue(dst, Bytes::from_static(b"a"), 0);
        io.enqueue(dst, Bytes::from_static(b"b"), 0);
        assert_eq!(io.registry.snapshot().counter("io.frames_tx"), 0);
        io.enqueue(dst, Bytes::from_static(b"c"), 0);
        assert_eq!(
            io.registry.snapshot().counter("io.frames_tx"),
            1,
            "3 tuples mux into 1 frame"
        );
    }

    #[test]
    fn flush_due_honours_deadline() {
        let (mut io, _sw) = io_on_switch(1000);
        io.batch_delay = Duration::from_millis(1);
        let dst = MacAddr::worker(1, TaskId(2));
        io.enqueue(dst, Bytes::from_static(b"x"), 0);
        io.flush_due();
        // Might not be due yet on a fast machine; wait out the deadline.
        std::thread::sleep(Duration::from_millis(3));
        io.flush_due();
        assert_eq!(io.registry.snapshot().counter("io.frames_tx"), 1);
    }

    #[test]
    fn set_batch_size_applies_immediately() {
        let (mut io, _sw) = io_on_switch(1000);
        io.set_batch_size(2);
        let dst = MacAddr::worker(1, TaskId(2));
        io.enqueue(dst, Bytes::from_static(b"a"), 0);
        io.enqueue(dst, Bytes::from_static(b"b"), 0);
        assert_eq!(io.registry.snapshot().counter("io.frames_tx"), 1);
        assert_eq!(io.batch_size(), 2);
    }

    #[test]
    fn per_destination_batches_are_independent() {
        let (mut io, _sw) = io_on_switch(2);
        let d1 = MacAddr::worker(1, TaskId(2));
        let d2 = MacAddr::worker(1, TaskId(3));
        io.enqueue(d1, Bytes::from_static(b"a"), 0);
        io.enqueue(d2, Bytes::from_static(b"b"), 0);
        assert_eq!(io.registry.snapshot().counter("io.frames_tx"), 0);
        io.enqueue(d1, Bytes::from_static(b"c"), 0);
        assert_eq!(io.registry.snapshot().counter("io.frames_tx"), 1);
    }

    #[test]
    fn lowering_batch_size_flushes_waiting_batches() {
        let (mut io, _sw) = io_on_switch(1000);
        let dst = MacAddr::worker(1, TaskId(2));
        for i in 0..5u8 {
            io.enqueue(dst, Bytes::from(vec![i]), 0);
        }
        assert_eq!(io.registry.snapshot().counter("io.frames_tx"), 0);
        // Retuning below the buffered count must flush immediately, not
        // leave the tuples waiting for the delay timer.
        io.set_batch_size(3);
        let snap = io.registry.snapshot();
        assert_eq!(snap.counter("io.frames_tx"), 1);
        let (samples, mean, _, _) = snap.histograms["io.batch_occupancy"];
        assert_eq!(samples, 1, "flush recorded one batch occupancy sample");
        assert_eq!(mean, 5.0, "all five buffered tuples left in one batch");
    }

    #[test]
    fn ingress_counts_frames_in_one_add() {
        // Wire the worker port straight to a pair of rings so the test can
        // play the switch side.
        let (sw_tx, worker_rx) = typhoon_net::ring(16);
        let (worker_tx, _sw_rx) = typhoon_net::ring(16);
        let port = typhoon_switch::WorkerPort {
            port: PortNo(1),
            tx: worker_tx,
            rx: worker_rx,
        };
        let dst = MacAddr::worker(1, TaskId(1));
        let mut io = IoLayer::new(dst, port, &IoConfig::default(), Registry::new());
        let src = MacAddr::worker(1, TaskId(9));
        let packetizer = Packetizer::new(9000);
        for frame in packetizer.pack(
            src,
            dst,
            &[Bytes::from_static(b"hi"), Bytes::from_static(b"ho")],
        ) {
            sw_tx.push(frame).unwrap();
        }
        let mut out = Vec::new();
        let n = io.poll_ingress(&mut out, 64).unwrap();
        assert_eq!(n, 1, "two tuples mux into one frame");
        assert_eq!(io.registry.snapshot().counter("io.frames_rx"), 1);
        assert_eq!(out.len(), 2);
        assert_eq!(&out[0].1[..], b"hi");
        assert_eq!(&out[1].1[..], b"ho");
    }

    #[test]
    fn flush_all_drains_everything() {
        let (mut io, _sw) = io_on_switch(1000);
        io.enqueue(MacAddr::worker(1, TaskId(2)), Bytes::from_static(b"a"), 0);
        io.enqueue(MacAddr::worker(1, TaskId(3)), Bytes::from_static(b"b"), 0);
        io.flush_all();
        assert_eq!(io.registry.snapshot().counter("io.frames_tx"), 2);
    }
}
