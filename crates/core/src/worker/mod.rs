//! The Typhoon worker: computation ∘ framework ∘ I/O (Fig. 4).
//!
//! A worker is one OS thread attached to its host switch through a
//! dedicated port. The loop polls the I/O layer for frames, lets the
//! framework layer classify and deserialize them, hands data tuples to the
//! unchanged application computation layer, and routes emissions back down
//! through framework serialization and I/O batching. Table 2 control
//! tuples — injected by the SDN controller — reconfigure all of this at
//! runtime without stopping the loop.

pub mod framework;
pub mod io;

pub use framework::{Addressed, Classified, FrameworkLayer, Route};
pub use io::{IoConfig, IoLayer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_controller::ControlTuple;
use typhoon_metrics::{RateMeter, Registry};
use typhoon_model::{AppId, Bolt, Emitter, Spout, TaskId};
use typhoon_storm::acker::{AckOutcome, AckerLedger};
use typhoon_switch::WorkerPort;
use typhoon_trace::{Hop, TraceCtx};
use typhoon_tuple::ser::{decode_tuple, SerStats};
use typhoon_tuple::{MessageId, StreamId, Tuple, Value};

/// What the worker computes.
pub enum Role {
    /// A data source.
    Spout(Box<dyn Spout>),
    /// A processing node.
    Bolt(Box<dyn Bolt>),
    /// The system acker (guaranteed processing; Typhoon reuses the Storm
    /// acker design and "supports Storm's guaranteed processing by
    /// installing SDN flow rules for ackers", §6.1).
    Acker,
}

/// Per-worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Owning application.
    pub app: AppId,
    /// This worker's task.
    pub task: TaskId,
    /// Logical node name.
    pub node: String,
    /// Registered component implementing the computation.
    pub component: String,
    /// I/O layer tunables.
    pub io: IoConfig,
    /// Guaranteed-processing mode.
    pub acking: bool,
    /// The topology's acker task (required when `acking`).
    pub acker: Option<TaskId>,
    /// Replay timeout.
    pub ack_timeout: Duration,
    /// Max in-flight spout roots.
    pub max_pending: usize,
    /// Whether the spout starts active (`ACTIVATE`/`DEACTIVATE` toggle it).
    pub start_active: bool,
}

/// Shared handles the agent (and experiments) keep for a running worker.
#[derive(Clone)]
pub struct WorkerShared {
    /// Set by the worker once it is attached and processing.
    pub ready: Arc<AtomicBool>,
    /// Graceful stop: drain egress, then exit.
    pub shutdown: Arc<AtomicBool>,
    /// Abrupt stop: exit immediately, dropping the switch port — the
    /// switch reports an unexpected `PortStatus` delete (fault injection).
    pub crash: Arc<AtomicBool>,
    /// Data-tuple meter (spout: emitted; bolt: received).
    pub meter: RateMeter,
    /// Worker metrics.
    pub registry: Registry,
}

impl WorkerShared {
    /// Fresh handles.
    pub fn new() -> Self {
        WorkerShared {
            ready: Arc::new(AtomicBool::new(false)),
            shutdown: Arc::new(AtomicBool::new(false)),
            crash: Arc::new(AtomicBool::new(false)),
            meter: RateMeter::per_second(),
            registry: Registry::new(),
        }
    }
}

impl Default for WorkerShared {
    fn default() -> Self {
        Self::new()
    }
}

struct WorkerCtx {
    config: WorkerConfig,
    fw: FrameworkLayer,
    io: IoLayer,
    shared: WorkerShared,
    ser: Arc<SerStats>,
    active: bool,
    input_rate: Option<u32>,
    rate_window_start: Instant,
    rate_window_count: u32,
    // acking scratch
    current_root: u64,
    accum_xor: u64,
    pending: std::collections::HashMap<u64, (Instant, u64)>,
    root_seed: u64,
    // tracing
    trace: TraceCtx,
    current_trace: u64,
}

impl WorkerCtx {
    fn next_root(&mut self) -> u64 {
        let mut x = self.root_seed;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.root_seed = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1
    }

    /// True when the current 100 ms window still has emission budget.
    fn rate_allows(&mut self) -> bool {
        let cap = match self.input_rate {
            Some(c) => c,
            None => return true,
        };
        let now = Instant::now();
        if now.duration_since(self.rate_window_start) >= Duration::from_millis(100) {
            self.rate_window_start = now;
            self.rate_window_count = 0;
        }
        self.rate_window_count < cap / 10
    }

    /// Debits actual emissions from the window budget.
    fn rate_consume(&mut self, n: u32) {
        self.rate_window_count += n;
    }

    fn dispatch(&mut self, addressed: Vec<Addressed>) {
        for a in addressed {
            self.accum_xor ^= a.anchor_xor;
            self.io.enqueue(a.dst, a.blob, a.trace);
        }
    }

    fn send_ack(&mut self, root: u64, xor: u64, spout: Option<TaskId>) {
        if let Some(acker) = self.config.acker {
            let msg = Tuple::on_stream(
                self.config.task,
                StreamId::ACK,
                vec![
                    Value::Int(root as i64),
                    Value::Int(xor as i64),
                    spout.map_or(Value::Nil, |s| Value::Int(s.0 as i64)),
                ],
            );
            let a = self.fw.direct(&msg, acker);
            self.io.enqueue(a.dst, a.blob, 0);
        }
    }

    fn handle_control(&mut self, ct: ControlTuple, bolt: Option<&mut Box<dyn Bolt>>) {
        self.shared.registry.counter("control.received").inc();
        match ct {
            ControlTuple::Routing {
                downstream,
                next_hops,
                policy,
            } => {
                self.fw.apply_routing(&downstream, next_hops, policy);
            }
            ControlTuple::Signal => {
                if let Some(bolt) = bolt {
                    // The stateful flush of Listing 2 / Fig. 6(b): emitted
                    // tuples take the ordinary routed path.
                    let mut sink = SignalEmitter::default();
                    bolt.on_signal(&mut sink);
                    for (stream, values) in sink.emitted {
                        let tuple = Tuple::on_stream(self.config.task, stream, values);
                        let addressed = self.fw.route(tuple, false);
                        self.dispatch(addressed);
                    }
                    self.io.flush_all();
                }
            }
            ControlTuple::MetricReq { request_id } => {
                let snap = self.shared.registry.snapshot();
                let mut metrics: Vec<(String, i64)> = vec![
                    ("queue.depth".into(), self.io.queue_depth() as i64),
                    (
                        "tuples.emitted".into(),
                        snap.counter("tuples.emitted") as i64,
                    ),
                    (
                        "tuples.received".into(),
                        snap.counter("tuples.received") as i64,
                    ),
                ];
                metrics.sort();
                let resp = ControlTuple::MetricResp {
                    request_id,
                    task: self.config.task,
                    metrics,
                }
                .to_tuple(self.config.task);
                let a = self.fw.to_controller(&resp);
                self.io.enqueue(a.dst, a.blob, 0);
                // Metric responses should not linger in a batch.
                self.io.flush_all();
            }
            ControlTuple::InputRate { tuples_per_sec } => {
                self.input_rate = (tuples_per_sec > 0).then_some(tuples_per_sec);
            }
            ControlTuple::Activate => self.active = true,
            ControlTuple::Deactivate => self.active = false,
            ControlTuple::BatchSize { size } => self.io.set_batch_size(size as usize),
            ControlTuple::MetricResp { .. } => { /* controller-bound only */ }
        }
    }
}

/// Collects a bolt's emissions during control handling.
#[derive(Default)]
struct SignalEmitter {
    emitted: Vec<(StreamId, Vec<Value>)>,
}

impl Emitter for SignalEmitter {
    fn emit_on(&mut self, stream: StreamId, values: Vec<Value>) {
        self.emitted.push((stream, values));
    }
}

/// An emitter that routes through the framework + I/O layers.
struct RoutedEmitter<'a> {
    ctx: &'a mut WorkerCtx,
}

impl Emitter for RoutedEmitter<'_> {
    fn emit_on(&mut self, stream: StreamId, values: Vec<Value>) {
        let mut tuple = Tuple::on_stream(self.ctx.config.task, stream, values);
        tuple.meta.trace = self.ctx.current_trace;
        if self.ctx.config.acking && self.ctx.current_root != 0 {
            tuple.meta.message_id = MessageId {
                root: self.ctx.current_root,
                anchor: 0,
            };
        }
        let acking = self.ctx.config.acking;
        let addressed = self.ctx.fw.route(tuple, acking);
        self.ctx.shared.registry.counter("tuples.emitted").inc();
        self.ctx.dispatch(addressed);
    }
}

/// Runs a Typhoon worker until shutdown/crash. Call on a dedicated thread.
pub fn run_worker(
    config: WorkerConfig,
    role: Role,
    port: WorkerPort,
    routes: Vec<Route>,
    ser: Arc<SerStats>,
    shared: WorkerShared,
    trace: TraceCtx,
) {
    let mut fw = FrameworkLayer::new(
        config.app,
        config.task,
        routes,
        ser.clone(),
        shared.registry.clone(),
    );
    fw.set_trace(trace.clone());
    let mut io = IoLayer::new(fw.mac(), port, &config.io, shared.registry.clone());
    io.set_trace(trace.clone());
    let mut ctx = WorkerCtx {
        root_seed: (config.task.0 as u64).wrapping_mul(0xa076_1d64_78bd_642f) | 1,
        active: config.start_active,
        input_rate: None,
        rate_window_start: Instant::now(),
        rate_window_count: 0,
        current_root: 0,
        accum_xor: 0,
        pending: std::collections::HashMap::new(),
        trace,
        current_trace: 0,
        config,
        fw,
        io,
        shared,
        ser,
    };
    match role {
        Role::Spout(spout) => run_spout(&mut ctx, spout),
        Role::Bolt(bolt) => run_bolt(&mut ctx, bolt),
        Role::Acker => run_acker(&mut ctx),
    }
}

const INGRESS_BUDGET: usize = 256;

/// Drains and decodes pending ingress into (classification, tuple) pairs.
fn drain_ingress(ctx: &mut WorkerCtx) -> Option<Vec<Tuple>> {
    let mut blobs = Vec::new();
    match ctx.io.poll_ingress(&mut blobs, INGRESS_BUDGET) {
        Ok(_) => {}
        Err(_) => return None, // port detached: the worker was killed
    }
    let mut tuples = Vec::with_capacity(blobs.len());
    for (_src, blob) in blobs {
        if let Ok((tuple, _)) = decode_tuple(&blob, &ctx.ser) {
            ctx.trace.record(tuple.meta.trace, Hop::Deserialize);
            tuples.push(tuple);
        } else {
            ctx.shared.registry.counter("tuples.undecodable").inc();
        }
    }
    Some(tuples)
}

fn run_spout(ctx: &mut WorkerCtx, mut spout: Box<dyn Spout>) {
    spout.open();
    ctx.shared.ready.store(true, Ordering::Release);
    let mut last_pending_sweep = Instant::now();
    loop {
        if ctx.shared.crash.load(Ordering::Acquire) {
            return; // abrupt: port drops, PortStatus delete fires
        }
        if ctx.shared.shutdown.load(Ordering::Acquire) {
            ctx.io.flush_all();
            return;
        }
        let mut busy = false;
        let tuples = match drain_ingress(ctx) {
            Some(t) => t,
            None => return,
        };
        for tuple in tuples {
            busy = true;
            match ctx.fw.classify(&tuple) {
                Classified::Control(ct) => ctx.handle_control(ct, None),
                Classified::AckResult => {
                    let root = tuple.get(0).and_then(Value::as_int).unwrap_or(0) as u64;
                    let ok = tuple.get(1).and_then(Value::as_bool).unwrap_or(false);
                    if let Some((born, trace)) = ctx.pending.remove(&root) {
                        if ok {
                            ctx.trace.record(trace, Hop::Ack);
                            ctx.shared.registry.counter("acks.completed").inc();
                            ctx.shared
                                .registry
                                .histogram("latency")
                                .record_duration(born.elapsed());
                            spout.ack(root);
                        } else {
                            ctx.shared.registry.counter("acks.failed").inc();
                            spout.fail(root);
                        }
                    }
                }
                _ => {}
            }
        }
        // The acker notifies completion/failure exactly once; if that
        // notification frame is lost (a faulty tunnel), the root would
        // otherwise sit in `pending` forever, leaking throttle budget and
        // silently dropping the tuple. Sweep with a margin past the ack
        // timeout so the acker's own expiry path wins when it is healthy.
        if ctx.config.acking && last_pending_sweep.elapsed() >= Duration::from_millis(100) {
            last_pending_sweep = Instant::now();
            let give_up = ctx.config.ack_timeout + ctx.config.ack_timeout / 2;
            let expired: Vec<u64> = ctx
                .pending
                .iter()
                .filter(|(_, (born, _))| born.elapsed() >= give_up)
                .map(|(&root, _)| root)
                .collect();
            for root in expired {
                ctx.pending.remove(&root);
                ctx.shared.registry.counter("acks.spout_timeout").inc();
                spout.fail(root);
            }
        }
        let throttled = ctx.config.acking && ctx.pending.len() >= ctx.config.max_pending;
        if ctx.active && !throttled && ctx.rate_allows() {
            busy |= spout_batch(ctx, spout.as_mut());
        }
        ctx.io.flush_due();
        if ctx.io.egress_dead() {
            return; // the switch side of the port is gone; fail fast
        }
        ctx.shared
            .registry
            .gauge("queue.depth")
            .set(ctx.io.queue_depth() as i64);
        if !busy {
            std::thread::sleep(Duration::from_micros(20)); // LINT: allow-sleep(idle backoff when the worker had no tuples to process)
        }
    }
}

fn spout_batch(ctx: &mut WorkerCtx, spout: &mut dyn Spout) -> bool {
    struct Collect(Vec<(StreamId, Vec<Value>)>);
    impl Emitter for Collect {
        fn emit_on(&mut self, stream: StreamId, values: Vec<Value>) {
            self.0.push((stream, values));
        }
    }
    let mut collect = Collect(Vec::new());
    let produced = spout.next_batch(&mut collect);
    let had = !collect.0.is_empty();
    ctx.rate_consume(collect.0.len() as u32);
    for (index, (stream, values)) in collect.0.into_iter().enumerate() {
        let trace = ctx.trace.sample();
        ctx.current_trace = trace;
        ctx.trace.record(trace, Hop::SpoutEmit);
        if ctx.config.acking {
            let root = ctx.next_root();
            ctx.current_root = root;
            ctx.accum_xor = 0;
            RoutedEmitter { ctx }.emit_on(stream, values);
            let xor = ctx.accum_xor;
            ctx.send_ack(root, xor, Some(ctx.config.task));
            ctx.pending.insert(root, (Instant::now(), trace));
            ctx.current_root = 0;
            spout.emitted(index, root);
        } else {
            RoutedEmitter { ctx }.emit_on(stream, values);
        }
        ctx.current_trace = 0;
        ctx.shared.meter.mark(1);
    }
    produced || had
}

fn run_bolt(ctx: &mut WorkerCtx, mut bolt: Box<dyn Bolt>) {
    bolt.prepare();
    ctx.shared.ready.store(true, Ordering::Release);
    loop {
        if ctx.shared.crash.load(Ordering::Acquire) {
            return;
        }
        if ctx.shared.shutdown.load(Ordering::Acquire) {
            ctx.io.flush_all();
            return;
        }
        let mut busy = false;
        let tuples = match drain_ingress(ctx) {
            Some(t) => t,
            None => return,
        };
        for tuple in tuples {
            busy = true;
            match ctx.fw.classify(&tuple) {
                Classified::Control(ct) => ctx.handle_control(ct, Some(&mut bolt)),
                Classified::Data => {
                    ctx.shared.registry.counter("tuples.received").inc();
                    ctx.shared.meter.mark(1);
                    let input_id = tuple.meta.message_id;
                    let input_trace = tuple.meta.trace;
                    ctx.current_root = input_id.root;
                    ctx.current_trace = input_trace;
                    ctx.accum_xor = 0;
                    bolt.execute(tuple, &mut RoutedEmitter { ctx });
                    ctx.trace.record(input_trace, Hop::BoltExecute);
                    if ctx.config.acking && input_id.is_anchored() {
                        let xor = input_id.anchor ^ ctx.accum_xor;
                        ctx.send_ack(input_id.root, xor, None);
                    }
                    ctx.current_root = 0;
                    ctx.current_trace = 0;
                }
                _ => {}
            }
        }
        ctx.io.flush_due();
        if ctx.io.egress_dead() {
            return; // the switch side of the port is gone; fail fast
        }
        ctx.shared
            .registry
            .gauge("queue.depth")
            .set(ctx.io.queue_depth() as i64);
        if !busy {
            std::thread::sleep(Duration::from_micros(20)); // LINT: allow-sleep(idle backoff when the worker had no tuples to process)
        }
    }
}

fn run_acker(ctx: &mut WorkerCtx) {
    let mut ledger = AckerLedger::new();
    let mut last_expire = Instant::now();
    ctx.shared.ready.store(true, Ordering::Release);
    loop {
        if ctx.shared.crash.load(Ordering::Acquire) || ctx.shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut busy = false;
        let tuples = match drain_ingress(ctx) {
            Some(t) => t,
            None => return,
        };
        for tuple in tuples {
            if tuple.meta.stream != StreamId::ACK {
                continue;
            }
            busy = true;
            let root = tuple.get(0).and_then(Value::as_int).unwrap_or(0) as u64;
            let xor = tuple.get(1).and_then(Value::as_int).unwrap_or(0) as u64;
            let spout = tuple
                .get(2)
                .and_then(Value::as_int)
                .map(|s| TaskId(s as u32));
            if let Some((owner, outcome)) = ledger.apply(root, xor, spout, Instant::now()) {
                acker_notify(ctx, owner, root, outcome);
            }
        }
        if last_expire.elapsed() >= Duration::from_millis(100) {
            last_expire = Instant::now();
            for (root, owner, outcome) in ledger.expire(ctx.config.ack_timeout, Instant::now()) {
                acker_notify(ctx, owner, root, outcome);
            }
        }
        ctx.io.flush_due();
        if ctx.io.egress_dead() {
            return; // the switch side of the port is gone; fail fast
        }
        if !busy {
            std::thread::sleep(Duration::from_micros(20)); // LINT: allow-sleep(idle backoff when the worker had no tuples to process)
        }
    }
}

fn acker_notify(ctx: &mut WorkerCtx, spout: TaskId, root: u64, outcome: AckOutcome) {
    let msg = Tuple::on_stream(
        ctx.config.task,
        StreamId::ACK_RESULT,
        vec![
            Value::Int(root as i64),
            Value::Bool(outcome == AckOutcome::Complete),
        ],
    );
    let a = ctx.fw.direct(&msg, spout);
    ctx.io.enqueue(a.dst, a.blob, 0);
    ctx.io.flush_all();
}
