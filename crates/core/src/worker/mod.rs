//! The Typhoon worker: computation ∘ framework ∘ I/O (Fig. 4).
//!
//! A worker is one OS thread attached to its host switch through a
//! dedicated port. The loop polls the I/O layer for frames, lets the
//! framework layer classify and deserialize them, hands data tuples to the
//! unchanged application computation layer, and routes emissions back down
//! through framework serialization and I/O batching. Table 2 control
//! tuples — injected by the SDN controller — reconfigure all of this at
//! runtime without stopping the loop.

pub mod framework;
pub mod io;

pub use framework::{Addressed, Classified, FrameworkLayer, Route};
pub use io::{IoConfig, IoLayer};

use crate::checkpoint::{CheckpointStore, DedupLedger};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_controller::ControlTuple;
use typhoon_metrics::{RateMeter, Registry};
use typhoon_model::{AppId, Bolt, Emitter, Spout, TaskId};
use typhoon_storm::acker::{AckOutcome, AckerLedger};
use typhoon_switch::WorkerPort;
use typhoon_trace::{Hop, TraceCtx};
use typhoon_tuple::ser::{decode_tuple, SerStats};
use typhoon_tuple::{MessageId, StreamId, Tuple, Value};

/// What the worker computes.
pub enum Role {
    /// A data source.
    Spout(Box<dyn Spout>),
    /// A processing node.
    Bolt(Box<dyn Bolt>),
    /// The system acker (guaranteed processing; Typhoon reuses the Storm
    /// acker design and "supports Storm's guaranteed processing by
    /// installing SDN flow rules for ackers", §6.1).
    Acker,
}

/// Per-worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Owning application.
    pub app: AppId,
    /// This worker's task.
    pub task: TaskId,
    /// Logical node name.
    pub node: String,
    /// Registered component implementing the computation.
    pub component: String,
    /// I/O layer tunables.
    pub io: IoConfig,
    /// Guaranteed-processing mode.
    pub acking: bool,
    /// The topology's acker task (required when `acking`).
    pub acker: Option<TaskId>,
    /// Replay timeout.
    pub ack_timeout: Duration,
    /// Max in-flight spout roots.
    pub max_pending: usize,
    /// Whether the spout starts active (`ACTIVATE`/`DEACTIVATE` toggle it).
    pub start_active: bool,
    /// Epoch checkpointing of stateful bolt state (crash recovery); `None`
    /// disables checkpointing for this worker.
    pub checkpoint: Option<CheckpointSpec>,
    /// Whether this worker is a crash-recovery replacement and must
    /// restore the latest checkpoint of its `(topology, node, task)`
    /// before processing.
    pub restore: bool,
}

/// Where and how often a stateful bolt checkpoints (crash recovery).
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Snapshot storage (kv blobs + coordinator epoch index).
    pub store: Arc<CheckpointStore>,
    /// The owning topology's name (part of the storage key).
    pub topology: String,
    /// Time between epoch snapshots. Must be well below the ack timeout:
    /// acks of folded tuples are withheld until the fold is durable.
    pub interval: Duration,
}

/// Shared handles the agent (and experiments) keep for a running worker.
#[derive(Clone)]
pub struct WorkerShared {
    /// Set by the worker once it is attached and processing.
    pub ready: Arc<AtomicBool>,
    /// Graceful stop: drain egress, then exit.
    pub shutdown: Arc<AtomicBool>,
    /// Abrupt stop: exit immediately, dropping the switch port — the
    /// switch reports an unexpected `PortStatus` delete (fault injection).
    pub crash: Arc<AtomicBool>,
    /// Data-tuple meter (spout: emitted; bolt: received).
    pub meter: RateMeter,
    /// Worker metrics.
    pub registry: Registry,
}

impl WorkerShared {
    /// Fresh handles.
    pub fn new() -> Self {
        WorkerShared {
            ready: Arc::new(AtomicBool::new(false)),
            shutdown: Arc::new(AtomicBool::new(false)),
            crash: Arc::new(AtomicBool::new(false)),
            meter: RateMeter::per_second(),
            registry: Registry::new(),
        }
    }
}

impl Default for WorkerShared {
    fn default() -> Self {
        Self::new()
    }
}

struct WorkerCtx {
    config: WorkerConfig,
    fw: FrameworkLayer,
    io: IoLayer,
    shared: WorkerShared,
    ser: Arc<SerStats>,
    active: bool,
    input_rate: Option<u32>,
    rate_window_start: Instant,
    rate_window_count: u32,
    // acking scratch
    current_root: u64,
    accum_xor: u64,
    pending: std::collections::HashMap<u64, (Instant, u64)>,
    root_seed: u64,
    // tracing
    trace: TraceCtx,
    current_trace: u64,
}

impl WorkerCtx {
    fn next_root(&mut self) -> u64 {
        // Fresh roots keep their low byte (the replay-round counter, see
        // `MessageId::ROOT_ROUND_MASK`) zeroed; replays of the same
        // logical tuple bump it, keeping `base_root` stable for dedup.
        loop {
            let mut x = self.root_seed;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.root_seed = x;
            let root = x.wrapping_mul(0x2545_f491_4f6c_dd1d) & !MessageId::ROOT_ROUND_MASK;
            if root != 0 {
                return root;
            }
        }
    }

    /// True when the current 100 ms window still has emission budget.
    fn rate_allows(&mut self) -> bool {
        let cap = match self.input_rate {
            Some(c) => c,
            None => return true,
        };
        let now = Instant::now();
        if now.duration_since(self.rate_window_start) >= Duration::from_millis(100) {
            self.rate_window_start = now;
            self.rate_window_count = 0;
        }
        self.rate_window_count < cap / 10
    }

    /// Debits actual emissions from the window budget.
    fn rate_consume(&mut self, n: u32) {
        self.rate_window_count += n;
    }

    fn dispatch(&mut self, addressed: Vec<Addressed>) {
        for a in addressed {
            self.accum_xor ^= a.anchor_xor;
            self.io.enqueue(a.dst, a.blob, a.trace);
        }
    }

    fn send_ack(&mut self, root: u64, xor: u64, spout: Option<TaskId>) {
        if let Some(acker) = self.config.acker {
            let msg = Tuple::on_stream(
                self.config.task,
                StreamId::ACK,
                vec![
                    Value::Int(root as i64),
                    Value::Int(xor as i64),
                    spout.map_or(Value::Nil, |s| Value::Int(s.0 as i64)),
                ],
            );
            let a = self.fw.direct(&msg, acker);
            self.io.enqueue(a.dst, a.blob, 0);
        }
    }

    fn handle_control(&mut self, ct: ControlTuple, bolt: Option<&mut Box<dyn Bolt>>) {
        self.shared.registry.counter("control.received").inc();
        match ct {
            ControlTuple::Routing {
                downstream,
                next_hops,
                policy,
            } => {
                self.fw.apply_routing(&downstream, next_hops, policy);
            }
            ControlTuple::Signal => {
                if let Some(bolt) = bolt {
                    // The stateful flush of Listing 2 / Fig. 6(b): emitted
                    // tuples take the ordinary routed path.
                    let mut sink = SignalEmitter::default();
                    bolt.on_signal(&mut sink);
                    for (stream, values) in sink.emitted {
                        let tuple = Tuple::on_stream(self.config.task, stream, values);
                        let addressed = self.fw.route(tuple, false);
                        self.dispatch(addressed);
                    }
                    self.io.flush_all();
                }
            }
            ControlTuple::MetricReq { request_id } => {
                let snap = self.shared.registry.snapshot();
                let mut metrics: Vec<(String, i64)> = vec![
                    ("queue.depth".into(), self.io.queue_depth() as i64),
                    (
                        "tuples.emitted".into(),
                        snap.counter("tuples.emitted") as i64,
                    ),
                    (
                        "tuples.received".into(),
                        snap.counter("tuples.received") as i64,
                    ),
                ];
                metrics.sort();
                let resp = ControlTuple::MetricResp {
                    request_id,
                    task: self.config.task,
                    metrics,
                }
                .to_tuple(self.config.task);
                let a = self.fw.to_controller(&resp);
                self.io.enqueue(a.dst, a.blob, 0);
                // Metric responses should not linger in a batch.
                self.io.flush_all();
            }
            ControlTuple::InputRate { tuples_per_sec } => {
                self.input_rate = (tuples_per_sec > 0).then_some(tuples_per_sec);
            }
            ControlTuple::Activate => self.active = true,
            ControlTuple::Deactivate => self.active = false,
            ControlTuple::BatchSize { size } => self.io.set_batch_size(size as usize),
            ControlTuple::MetricResp { .. } => { /* controller-bound only */ }
            ControlTuple::Replay => { /* spout-only; handled in run_spout */ }
            ControlTuple::Restate => {
                // Crash recovery: emissions this bolt made toward a task
                // that died were lost, and the dedup ledger refuses to
                // re-fold the replays that would regenerate them. Round-trip
                // the snapshot through restore(), whose re-emissions take
                // the ordinary routed path (unanchored, like a fresh
                // restore) so latest-wins consumers re-converge.
                if let Some(bolt) = bolt {
                    if bolt.is_stateful() {
                        if let Some(state) = bolt.checkpoint() {
                            let mut sink = SignalEmitter::default();
                            bolt.restore(state, &mut sink);
                            self.shared.registry.counter("recovery.restated").inc();
                            for (stream, values) in sink.emitted {
                                let tuple = Tuple::on_stream(self.config.task, stream, values);
                                let addressed = self.fw.route(tuple, false);
                                self.dispatch(addressed);
                            }
                            self.io.flush_all();
                        }
                    }
                }
            }
        }
    }
}

/// Collects a bolt's emissions during control handling.
#[derive(Default)]
struct SignalEmitter {
    emitted: Vec<(StreamId, Vec<Value>)>,
}

impl Emitter for SignalEmitter {
    fn emit_on(&mut self, stream: StreamId, values: Vec<Value>) {
        self.emitted.push((stream, values));
    }
}

/// An emitter that routes through the framework + I/O layers.
struct RoutedEmitter<'a> {
    ctx: &'a mut WorkerCtx,
}

impl Emitter for RoutedEmitter<'_> {
    fn emit_on(&mut self, stream: StreamId, values: Vec<Value>) {
        let mut tuple = Tuple::on_stream(self.ctx.config.task, stream, values);
        tuple.meta.trace = self.ctx.current_trace;
        if self.ctx.config.acking && self.ctx.current_root != 0 {
            tuple.meta.message_id = MessageId {
                root: self.ctx.current_root,
                anchor: 0,
            };
        }
        let acking = self.ctx.config.acking;
        let addressed = self.ctx.fw.route(tuple, acking);
        self.ctx.shared.registry.counter("tuples.emitted").inc();
        self.ctx.dispatch(addressed);
    }
}

/// Runs a Typhoon worker until shutdown/crash. Call on a dedicated thread.
pub fn run_worker(
    config: WorkerConfig,
    role: Role,
    port: WorkerPort,
    routes: Vec<Route>,
    ser: Arc<SerStats>,
    shared: WorkerShared,
    trace: TraceCtx,
) {
    let mut fw = FrameworkLayer::new(
        config.app,
        config.task,
        routes,
        ser.clone(),
        shared.registry.clone(),
    );
    fw.set_trace(trace.clone());
    let mut io = IoLayer::new(fw.mac(), port, &config.io, shared.registry.clone());
    io.set_trace(trace.clone());
    let mut ctx = WorkerCtx {
        root_seed: (config.task.0 as u64).wrapping_mul(0xa076_1d64_78bd_642f) | 1,
        active: config.start_active,
        input_rate: None,
        rate_window_start: Instant::now(),
        rate_window_count: 0,
        current_root: 0,
        accum_xor: 0,
        pending: std::collections::HashMap::new(),
        trace,
        current_trace: 0,
        config,
        fw,
        io,
        shared,
        ser,
    };
    match role {
        Role::Spout(spout) => run_spout(&mut ctx, spout),
        Role::Bolt(bolt) => run_bolt(&mut ctx, bolt),
        Role::Acker => run_acker(&mut ctx),
    }
}

const INGRESS_BUDGET: usize = 256;

/// Drains and decodes pending ingress into (classification, tuple) pairs.
fn drain_ingress(ctx: &mut WorkerCtx) -> Option<Vec<Tuple>> {
    let mut blobs = Vec::new();
    match ctx.io.poll_ingress(&mut blobs, INGRESS_BUDGET) {
        Ok(_) => {}
        Err(_) => return None, // port detached: the worker was killed
    }
    let mut tuples = Vec::with_capacity(blobs.len());
    for (_src, blob) in blobs {
        if let Ok((tuple, _)) = decode_tuple(&blob, &ctx.ser) {
            ctx.trace.record(tuple.meta.trace, Hop::Deserialize);
            tuples.push(tuple);
        } else {
            ctx.shared.registry.counter("tuples.undecodable").inc();
        }
    }
    Some(tuples)
}

fn run_spout(ctx: &mut WorkerCtx, mut spout: Box<dyn Spout>) {
    spout.open();
    ctx.shared.ready.store(true, Ordering::Release);
    let mut last_pending_sweep = Instant::now();
    loop {
        if ctx.shared.crash.load(Ordering::Acquire) {
            return; // abrupt: port drops, PortStatus delete fires
        }
        if ctx.shared.shutdown.load(Ordering::Acquire) {
            ctx.io.flush_all();
            return;
        }
        let mut busy = false;
        let tuples = match drain_ingress(ctx) {
            Some(t) => t,
            None => return,
        };
        for tuple in tuples {
            busy = true;
            match ctx.fw.classify(&tuple) {
                Classified::Control(ControlTuple::Replay) => {
                    // Crash recovery: fail every pending root *now* so the
                    // spout replays into the recovered task without waiting
                    // out the ack timeout (§4 — replay is part of the
                    // recovery critical path, not the slow path).
                    let roots: Vec<u64> = ctx.pending.keys().copied().collect();
                    for root in roots {
                        if ctx.pending.remove(&root).is_some() {
                            ctx.shared.registry.counter("recovery.replayed_roots").inc();
                            spout.fail(root);
                        }
                    }
                }
                Classified::Control(ct) => ctx.handle_control(ct, None),
                Classified::AckResult => {
                    let root = tuple.get(0).and_then(Value::as_int).unwrap_or(0) as u64;
                    let ok = tuple.get(1).and_then(Value::as_bool).unwrap_or(false);
                    if let Some((born, trace)) = ctx.pending.remove(&root) {
                        if ok {
                            ctx.trace.record(trace, Hop::Ack);
                            ctx.shared.registry.counter("acks.completed").inc();
                            ctx.shared
                                .registry
                                .histogram("latency")
                                .record_duration(born.elapsed());
                            spout.ack(root);
                        } else {
                            ctx.shared.registry.counter("acks.failed").inc();
                            spout.fail(root);
                        }
                    }
                }
                _ => {}
            }
        }
        // The acker notifies completion/failure exactly once; if that
        // notification frame is lost (a faulty tunnel), the root would
        // otherwise sit in `pending` forever, leaking throttle budget and
        // silently dropping the tuple. Sweep with a margin past the ack
        // timeout so the acker's own expiry path wins when it is healthy.
        if ctx.config.acking && last_pending_sweep.elapsed() >= Duration::from_millis(100) {
            last_pending_sweep = Instant::now();
            let give_up = ctx.config.ack_timeout + ctx.config.ack_timeout / 2;
            let expired: Vec<u64> = ctx
                .pending
                .iter()
                .filter(|(_, (born, _))| born.elapsed() >= give_up)
                .map(|(&root, _)| root)
                .collect();
            for root in expired {
                ctx.pending.remove(&root);
                ctx.shared.registry.counter("acks.spout_timeout").inc();
                spout.fail(root);
            }
        }
        let throttled = ctx.config.acking && ctx.pending.len() >= ctx.config.max_pending;
        if ctx.active && !throttled && ctx.rate_allows() {
            busy |= spout_batch(ctx, spout.as_mut());
        }
        ctx.io.flush_due();
        if ctx.io.egress_dead() {
            return; // the switch side of the port is gone; fail fast
        }
        ctx.shared
            .registry
            .gauge("queue.depth")
            .set(ctx.io.queue_depth() as i64);
        if !busy {
            std::thread::sleep(Duration::from_micros(20)); // LINT: allow-sleep(idle backoff when the worker had no tuples to process)
        }
    }
}

fn spout_batch(ctx: &mut WorkerCtx, spout: &mut dyn Spout) -> bool {
    struct Collect(Vec<(StreamId, Vec<Value>)>);
    impl Emitter for Collect {
        fn emit_on(&mut self, stream: StreamId, values: Vec<Value>) {
            self.0.push((stream, values));
        }
    }
    let mut collect = Collect(Vec::new());
    let produced = spout.next_batch(&mut collect);
    let had = !collect.0.is_empty();
    ctx.rate_consume(collect.0.len() as u32);
    for (index, (stream, values)) in collect.0.into_iter().enumerate() {
        let trace = ctx.trace.sample();
        ctx.current_trace = trace;
        ctx.trace.record(trace, Hop::SpoutEmit);
        if ctx.config.acking {
            // A replayed tuple keeps its original root's base and bumps
            // the round byte: the acker sees a fresh tree (a half-acked
            // tree from the failed round can never wedge this one) while
            // downstream dedup keys stay stable across rounds.
            let root = match spout.replay_root(index) {
                Some(prev) => MessageId::next_round(prev),
                None => ctx.next_root(),
            };
            ctx.current_root = root;
            ctx.accum_xor = 0;
            RoutedEmitter { ctx }.emit_on(stream, values);
            let xor = ctx.accum_xor;
            ctx.send_ack(root, xor, Some(ctx.config.task));
            ctx.pending.insert(root, (Instant::now(), trace));
            ctx.current_root = 0;
            spout.emitted(index, root);
        } else {
            RoutedEmitter { ctx }.emit_on(stream, values);
        }
        ctx.current_trace = 0;
        ctx.shared.meter.mark(1);
    }
    produced || had
}

/// Per-worker epoch checkpointing + replay dedup for a stateful bolt.
///
/// The exactness contract: a tuple's ack is **withheld until the fold is
/// durable** (included in a saved checkpoint). Crash before the save →
/// the ack never went out → the acker times the root out → the spout
/// replays it → the restored ledger (snapshotted atomically with the
/// state) does not contain it → the replay folds into the restored
/// state. Crash after the save → the replay (if any partial tree
/// branches still fail) hits the ledger and is skipped. Either way every
/// tuple is folded exactly once.
struct BoltCheckpointer {
    spec: CheckpointSpec,
    ledger: DedupLedger,
    epoch: u64,
    deferred_acks: Vec<(u64, u64)>,
    last_save: Instant,
    dirty: bool,
}

impl BoltCheckpointer {
    /// Arms checkpointing for a capable stateful bolt (one that reports
    /// state via [`Bolt::checkpoint`]); restores the latest snapshot when
    /// this worker is a crash-recovery replacement.
    fn init(ctx: &mut WorkerCtx, bolt: &mut dyn Bolt) -> Option<BoltCheckpointer> {
        let spec = ctx.config.checkpoint.clone()?;
        // Checkpoint-exact recovery needs all three legs: a stateful bolt
        // that can snapshot itself, and acking (the replay half).
        if !ctx.config.acking || !bolt.is_stateful() || bolt.checkpoint().is_none() {
            return None;
        }
        let mut ledger = DedupLedger::default();
        let mut epoch = 0;
        if ctx.config.restore {
            let restore_started = Instant::now();
            if let Some(ckpt) =
                spec.store
                    .load_latest(&spec.topology, &ctx.config.node, ctx.config.task)
            {
                // Reinstall state, then flush it downstream *unanchored*:
                // the dead task's post-checkpoint in-flight emissions are
                // lost, so latest-value consumers must reconverge.
                let mut sink = SignalEmitter::default();
                bolt.restore(ckpt.state, &mut sink);
                for (stream, values) in sink.emitted {
                    let tuple = Tuple::on_stream(ctx.config.task, stream, values);
                    let addressed = ctx.fw.route(tuple, false);
                    ctx.dispatch(addressed);
                }
                ctx.io.flush_all();
                ledger = ckpt.ledger;
                epoch = ckpt.epoch;
                ctx.shared.registry.counter("recovery.restored").inc();
                ctx.shared
                    .registry
                    .gauge("recovery.restore_epoch")
                    .set(epoch as i64);
                let restore_ms = restore_started.elapsed().as_millis() as u64;
                ctx.shared
                    .registry
                    .histogram("recovery.restore_ms")
                    .record(restore_ms);
                // Mirrored as a gauge so the recovery manager can read the
                // phase latency back out of a snapshot for its report.
                ctx.shared
                    .registry
                    .gauge("recovery.restore_ms")
                    .set(restore_ms as i64);
            }
        }
        Some(BoltCheckpointer {
            spec,
            ledger,
            epoch,
            deferred_acks: Vec::new(),
            last_save: Instant::now(),
            dirty: false,
        })
    }

    /// True when the anchored input was already folded into checkpointed
    /// state (a crash-replay or reroute duplicate) and must be skipped.
    fn is_duplicate(&mut self, id: MessageId) -> bool {
        let fresh = self.ledger.observe(
            MessageId::base_root(id.root),
            MessageId::anchor_position(id.anchor),
        );
        self.dirty = true;
        !fresh
    }

    /// Withholds a folded tuple's ack until the next checkpoint makes the
    /// fold durable.
    fn defer_ack(&mut self, root: u64, xor: u64) {
        self.deferred_acks.push((root, xor));
        self.dirty = true;
    }

    /// Checkpoints when the interval elapsed and anything changed.
    fn tick(&mut self, ctx: &mut WorkerCtx, bolt: &dyn Bolt) {
        if self.dirty && self.last_save.elapsed() >= self.spec.interval {
            self.save_now(ctx, bolt);
        }
    }

    /// Snapshots state + ledger, then releases the withheld acks.
    fn save_now(&mut self, ctx: &mut WorkerCtx, bolt: &dyn Bolt) {
        self.last_save = Instant::now();
        if !self.dirty {
            return;
        }
        let state = match bolt.checkpoint() {
            Some(s) => s,
            None => return,
        };
        self.epoch += 1;
        self.spec.store.save(
            &self.spec.topology,
            &ctx.config.node,
            ctx.config.task,
            self.epoch,
            &state,
            &self.ledger,
        );
        self.dirty = false;
        ctx.shared.registry.counter("recovery.checkpoints").inc();
        for (root, xor) in std::mem::take(&mut self.deferred_acks) {
            ctx.send_ack(root, xor, None);
        }
        ctx.io.flush_all();
    }
}

fn run_bolt(ctx: &mut WorkerCtx, mut bolt: Box<dyn Bolt>) {
    bolt.prepare();
    let mut ckpt = BoltCheckpointer::init(ctx, bolt.as_mut());
    ctx.shared.ready.store(true, Ordering::Release);
    loop {
        if ctx.shared.crash.load(Ordering::Acquire) {
            return;
        }
        if ctx.shared.shutdown.load(Ordering::Acquire) {
            // Graceful stop: make the final folds durable and release
            // their acks so a planned kill never forces replays.
            if let Some(c) = ckpt.as_mut() {
                c.save_now(ctx, bolt.as_ref());
            }
            ctx.io.flush_all();
            return;
        }
        let mut busy = false;
        let tuples = match drain_ingress(ctx) {
            Some(t) => t,
            None => return,
        };
        for tuple in tuples {
            busy = true;
            match ctx.fw.classify(&tuple) {
                Classified::Control(ct) => ctx.handle_control(ct, Some(&mut bolt)),
                Classified::Data => {
                    ctx.shared.registry.counter("tuples.received").inc();
                    ctx.shared.meter.mark(1);
                    let input_id = tuple.meta.message_id;
                    let input_trace = tuple.meta.trace;
                    if ctx.config.acking && input_id.is_anchored() {
                        if let Some(c) = ckpt.as_mut() {
                            if c.is_duplicate(input_id) {
                                // Already folded into (checkpointed) state:
                                // skip execution, complete this branch of
                                // the ack tree immediately.
                                ctx.shared.registry.counter("recovery.deduped").inc();
                                ctx.send_ack(input_id.root, input_id.anchor, None);
                                continue;
                            }
                        }
                    }
                    ctx.current_root = input_id.root;
                    ctx.current_trace = input_trace;
                    ctx.accum_xor = 0;
                    bolt.execute(tuple, &mut RoutedEmitter { ctx });
                    ctx.trace.record(input_trace, Hop::BoltExecute);
                    if ctx.config.acking && input_id.is_anchored() {
                        let xor = input_id.anchor ^ ctx.accum_xor;
                        match ckpt.as_mut() {
                            Some(c) => c.defer_ack(input_id.root, xor),
                            None => ctx.send_ack(input_id.root, xor, None),
                        }
                    }
                    ctx.current_root = 0;
                    ctx.current_trace = 0;
                }
                _ => {}
            }
        }
        if let Some(c) = ckpt.as_mut() {
            c.tick(ctx, bolt.as_ref());
        }
        ctx.io.flush_due();
        if ctx.io.egress_dead() {
            return; // the switch side of the port is gone; fail fast
        }
        ctx.shared
            .registry
            .gauge("queue.depth")
            .set(ctx.io.queue_depth() as i64);
        if !busy {
            std::thread::sleep(Duration::from_micros(20)); // LINT: allow-sleep(idle backoff when the worker had no tuples to process)
        }
    }
}

fn run_acker(ctx: &mut WorkerCtx) {
    let mut ledger = AckerLedger::new();
    let mut last_expire = Instant::now();
    ctx.shared.ready.store(true, Ordering::Release);
    loop {
        if ctx.shared.crash.load(Ordering::Acquire) || ctx.shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut busy = false;
        let tuples = match drain_ingress(ctx) {
            Some(t) => t,
            None => return,
        };
        // XOR is associative, so every ack for one root within a drained
        // batch collapses into a single ledger application — the acker does
        // O(distinct roots) ledger work per poll instead of O(acks). Only
        // the spout's init carries the owner identity; keep the first seen.
        let mut combined: Vec<(u64, u64, Option<TaskId>)> = Vec::new();
        for tuple in tuples {
            if tuple.meta.stream != StreamId::ACK {
                continue;
            }
            busy = true;
            let root = tuple.get(0).and_then(Value::as_int).unwrap_or(0) as u64;
            let xor = tuple.get(1).and_then(Value::as_int).unwrap_or(0) as u64;
            let spout = tuple
                .get(2)
                .and_then(Value::as_int)
                .map(|s| TaskId(s as u32));
            match combined.iter_mut().find(|(r, _, _)| *r == root) {
                Some((_, x, s)) => {
                    *x ^= xor;
                    if s.is_none() {
                        *s = spout;
                    }
                }
                None => combined.push((root, xor, spout)),
            }
        }
        for (root, xor, spout) in combined {
            if let Some((owner, outcome)) = ledger.apply(root, xor, spout, Instant::now()) {
                acker_notify(ctx, owner, root, outcome);
            }
        }
        if last_expire.elapsed() >= Duration::from_millis(100) {
            last_expire = Instant::now();
            for (root, owner, outcome) in ledger.expire(ctx.config.ack_timeout, Instant::now()) {
                acker_notify(ctx, owner, root, outcome);
            }
        }
        ctx.io.flush_due();
        if ctx.io.egress_dead() {
            return; // the switch side of the port is gone; fail fast
        }
        if !busy {
            std::thread::sleep(Duration::from_micros(20)); // LINT: allow-sleep(idle backoff when the worker had no tuples to process)
        }
    }
}

fn acker_notify(ctx: &mut WorkerCtx, spout: TaskId, root: u64, outcome: AckOutcome) {
    let msg = Tuple::on_stream(
        ctx.config.task,
        StreamId::ACK_RESULT,
        vec![
            Value::Int(root as i64),
            Value::Bool(outcome == AckOutcome::Complete),
        ],
    );
    let a = ctx.fw.direct(&msg, spout);
    ctx.io.enqueue(a.dst, a.blob, 0);
    ctx.io.flush_all();
}
