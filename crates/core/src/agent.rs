//! Per-host worker agents.
//!
//! The agent is the Typhoon counterpart of Storm's supervisor (§2, §3.2
//! step (iv)): it registers its host with the coordinator (ephemeral
//! session), "fetches application binaries" (resolves component factories
//! from the shared registry), launches scheduled workers attached to the
//! host's software SDN switch, and kills them on reconfiguration. It also
//! owns the host's switch-port allocation so that concurrent topologies
//! never collide on ports.

use crate::worker::{self, Role, Route, WorkerConfig, WorkerShared};
use crate::{CoreError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_coordinator::global::GlobalState;
use typhoon_diag::{rank, DiagMutex as Mutex, DiagRwLock as RwLock};
use typhoon_model::{AppId, ComponentRegistry, HostInfo, NodeKind, TaskId};
use typhoon_openflow::PortNo;
use typhoon_switch::Switch;
use typhoon_trace::{TraceCtx, Tracer};
use typhoon_tuple::ser::SerStats;

/// A running worker's bookkeeping.
pub struct WorkerEntry {
    /// Control handles shared with the worker thread.
    pub shared: WorkerShared,
    /// The switch port the worker occupies.
    pub port: PortNo,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// The per-host worker agent.
pub struct WorkerAgent {
    info: HostInfo,
    switch: Switch,
    components: Arc<RwLock<ComponentRegistry>>,
    ser: Arc<SerStats>,
    workers: Mutex<HashMap<(AppId, TaskId), WorkerEntry>>,
    next_port: AtomicU32,
    tracer: Option<Arc<Tracer>>,
    alive: AtomicBool,
}

impl WorkerAgent {
    /// Creates an agent for `info`'s host, registering it with the
    /// coordinator under an ephemeral session.
    pub fn new(
        info: HostInfo,
        switch: Switch,
        components: Arc<RwLock<ComponentRegistry>>,
        ser: Arc<SerStats>,
        global: &GlobalState,
        tracer: Option<Arc<Tracer>>,
    ) -> Result<Arc<WorkerAgent>> {
        let session = global.coordinator().create_session();
        global.register_agent(&info, session)?;
        Ok(Arc::new(WorkerAgent {
            info,
            switch,
            components,
            ser,
            workers: Mutex::with_rank(rank::AGENT_WORKERS, "core.agent.workers", HashMap::new()),
            next_port: AtomicU32::new(1),
            tracer,
            alive: AtomicBool::new(true),
        }))
    }

    /// Whether this agent's host is still alive. A dead host (chaos
    /// host-kill) keeps its switch running as SDN substrate — that is what
    /// lets port-status detection outrun heartbeats (§4, Fig. 10) — but
    /// accepts no new workers and is skipped by placement.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Marks the host dead (see [`WorkerAgent::is_alive`]).
    pub fn mark_dead(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// This agent's host description.
    pub fn info(&self) -> &HostInfo {
        &self.info
    }

    /// The host's switch.
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// Allocates the next free switch port on this host (port 0 is the
    /// tunnel port, per Table 3).
    pub fn alloc_port(&self) -> PortNo {
        PortNo(self.next_port.fetch_add(1, Ordering::Relaxed))
    }

    /// Number of workers currently running.
    pub fn used_slots(&self) -> usize {
        self.workers.lock().len()
    }

    /// Launches a worker: resolve the component, attach to the switch,
    /// spawn the worker thread. The `PortStatus` add event this generates
    /// is the controller's cue that the port is live.
    pub fn launch(
        &self,
        kind: NodeKind,
        is_acker: bool,
        port: PortNo,
        config: WorkerConfig,
        routes: Vec<Route>,
    ) -> Result<WorkerShared> {
        let role = if is_acker {
            Role::Acker
        } else {
            let components = self.components.read();
            match kind {
                NodeKind::Spout => Role::Spout(components.make_spout(&config.component)?),
                NodeKind::Bolt => Role::Bolt(components.make_bolt(&config.component)?),
            }
        };
        if !self.is_alive() {
            return Err(CoreError::Timeout("agent on a live host"));
        }
        let worker_port = self.switch.attach_worker(port);
        let shared = WorkerShared::new();
        let shared2 = shared.clone();
        let panic_registry = shared.registry.clone();
        let ser = self.ser.clone();
        let trace = self
            .tracer
            .as_ref()
            .map(|t| t.ctx())
            .unwrap_or_else(TraceCtx::disabled);
        let key = (config.app, config.task);
        // Supervised spawn (TL006): a panicking worker is recorded and
        // counted, then its thread exits — dropping the port so the switch
        // datapath reports the PortStatus delete that drives recovery.
        let thread = typhoon_diag::spawn_supervised(
            &format!("typhoon-{}-{}", config.node, config.task),
            move |_event| {
                panic_registry.counter("recovery.panics").inc();
            },
            move || {
                worker::run_worker(config, role, worker_port, routes, ser, shared2, trace);
            },
        );
        self.workers.lock().insert(
            key,
            WorkerEntry {
                shared: shared.clone(),
                port,
                thread: Some(thread),
            },
        );
        Ok(shared)
    }

    /// Waits for a launched worker to signal readiness.
    pub fn wait_ready(&self, app: AppId, task: TaskId, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let workers = self.workers.lock();
                if let Some(e) = workers.get(&(app, task)) {
                    if e.shared.ready.load(Ordering::Acquire) {
                        return Ok(());
                    }
                }
            }
            if Instant::now() > deadline {
                return Err(CoreError::Timeout("worker readiness"));
            }
            std::thread::sleep(Duration::from_micros(200)); // LINT: allow-sleep(worker readiness poll, bounded by the timeout check above)
        }
    }

    /// Access to a worker's shared handles.
    pub fn worker(&self, app: AppId, task: TaskId) -> Option<WorkerShared> {
        self.workers
            .lock()
            .get(&(app, task))
            .map(|e| e.shared.clone())
    }

    /// The switch port of a worker.
    pub fn worker_port(&self, app: AppId, task: TaskId) -> Option<PortNo> {
        self.workers.lock().get(&(app, task)).map(|e| e.port)
    }

    /// Gracefully stops a worker: flag it, join the thread (it flushes
    /// in-flight batches first), then detach the port (a *deliberate*
    /// `PortStatus` delete).
    pub fn kill(&self, app: AppId, task: TaskId) {
        let entry = self.workers.lock().remove(&(app, task));
        if let Some(mut e) = entry {
            e.shared.shutdown.store(true, Ordering::Release);
            if let Some(t) = e.thread.take() {
                let _ = t.join();
            }
            self.switch.detach_worker(e.port);
        }
    }

    /// Simulates a worker crash: the thread exits immediately, dropping
    /// its ring endpoints; the switch datapath discovers the dead port and
    /// emits the *unexpected* `PortStatus` delete the fault detector keys
    /// on (§4, Fig. 10).
    pub fn crash(&self, app: AppId, task: TaskId) {
        let entry = self.workers.lock().remove(&(app, task));
        if let Some(mut e) = entry {
            e.shared.crash.store(true, Ordering::Release);
            if let Some(t) = e.thread.take() {
                let _ = t.join();
            }
            // No detach_worker: the datapath must discover it.
        }
    }

    /// Crashes a worker *without* removing its bookkeeping entry and
    /// without joining the thread. The dead entry is what heartbeat-based
    /// detection keys on ([`WorkerAgent::dead_workers`]); the switch
    /// datapath independently discovers the dead port. This is the chaos
    /// worker-kill primitive: the killer returns immediately, like a real
    /// `kill -9` would.
    pub fn crash_detached(&self, app: AppId, task: TaskId) {
        let workers = self.workers.lock();
        if let Some(e) = workers.get(&(app, task)) {
            e.shared.crash.store(true, Ordering::Release);
        }
    }

    /// Crashes every worker on this host without reaping entries — the
    /// chaos host-kill primitive. Pair with [`WorkerAgent::mark_dead`].
    pub fn crash_all_detached(&self) {
        let workers = self.workers.lock();
        for e in workers.values() {
            e.shared.crash.store(true, Ordering::Release);
        }
    }

    /// Workers whose threads have exited while their entry is still
    /// registered. Gracefully killed workers are removed from the map
    /// first, so anything listed here died unexpectedly (panic, crash
    /// flag, fail-fast exit). This is the heartbeat fallback's view of
    /// the world when SDN port-status detection is disabled (Fig. 10
    /// baseline).
    pub fn dead_workers(&self) -> Vec<(AppId, TaskId)> {
        let workers = self.workers.lock();
        workers
            .iter()
            .filter(|(_, e)| e.thread.as_ref().map(|t| t.is_finished()).unwrap_or(true))
            .map(|(k, _)| *k)
            .collect()
    }

    /// Removes a dead worker's entry (joining its finished thread),
    /// freeing the slot for the replacement. No port detach: the datapath
    /// already discovered — or will discover — the dead port.
    pub fn reap(&self, app: AppId, task: TaskId) {
        let entry = self.workers.lock().remove(&(app, task));
        if let Some(mut e) = entry {
            if let Some(t) = e.thread.take() {
                let _ = t.join();
            }
        }
    }

    /// Stops every worker on this host.
    pub fn kill_all(&self) {
        let keys: Vec<(AppId, TaskId)> = self.workers.lock().keys().copied().collect();
        for (app, task) in keys {
            self.kill(app, task);
        }
    }
}

impl std::fmt::Debug for WorkerAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WorkerAgent({}, {} workers)",
            self.info.name,
            self.used_slots()
        )
    }
}
