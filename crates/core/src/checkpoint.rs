//! Epoch-based checkpointing of stateful bolt state (crash recovery).
//!
//! The paper's robustness story (§4, Fig. 10) needs more than detection:
//! a killed stateful bolt must come back *with its state*. This module
//! implements the storage half of that contract:
//!
//! * Every checkpoint interval the worker snapshots a stateful bolt's
//!   state (via [`typhoon_model::Bolt::checkpoint`]) **atomically with**
//!   its replay-dedup ledger, serializes the pair through
//!   `typhoon-tuple`'s wire codec, and stores the blob in `typhoon-kv`'s
//!   binary namespace.
//! * The latest epoch per task is indexed under the coordinator at
//!   [`CHECKPOINTS`]`/<topology>/<node>/task-<id>`, which is what the
//!   recovery manager reads when it restarts the task elsewhere.
//! * A retention window keeps the last `retention` epochs and deletes
//!   older blobs on every save, so checkpoint storage is bounded.
//!
//! Snapshotting state and ledger as one blob is what makes recovery
//! exact: after a restore, a replayed tuple is folded **iff** its
//! `(base_root, position)` key is absent from the restored ledger — the
//! ledger and the counts always describe the same instant.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use typhoon_coordinator::Coordinator;
use typhoon_kv::KvStore;
use typhoon_model::TaskId;
use typhoon_tuple::ser::{decode_tuple, encode_tuple_vec, SerStats};
use typhoon_tuple::{Tuple, Value};

/// Coordinator path under which latest-epoch checkpoint indexes live.
pub const CHECKPOINTS: &str = "/typhoon/checkpoints";

/// Default cap on distinct roots remembered by a [`DedupLedger`].
pub const DEFAULT_LEDGER_ROOTS: usize = 4096;

/// Replay-dedup ledger of a stateful bolt: which `(base_root, position)`
/// tuples have already been folded into the bolt's state.
///
/// Roots are remembered in arrival order and evicted oldest-first once
/// the ledger holds more than `cap` distinct roots — by then the acker
/// has long since expired the root, so no replay can still arrive.
#[derive(Debug, Clone, PartialEq)]
pub struct DedupLedger {
    seen: HashMap<u64, HashSet<u16>>,
    order: VecDeque<u64>,
    cap: usize,
}

impl Default for DedupLedger {
    fn default() -> Self {
        Self::new(DEFAULT_LEDGER_ROOTS)
    }
}

impl DedupLedger {
    /// An empty ledger remembering at most `cap` distinct roots.
    pub fn new(cap: usize) -> Self {
        DedupLedger {
            seen: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Records `(base_root, position)`. Returns `true` when the pair is
    /// fresh (the caller should fold the tuple) and `false` when it was
    /// already folded (a replay duplicate — skip execution, just ack).
    pub fn observe(&mut self, base_root: u64, position: u16) -> bool {
        let entry = self.seen.entry(base_root).or_insert_with(|| {
            self.order.push_back(base_root);
            HashSet::new()
        });
        let fresh = entry.insert(position);
        while self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        fresh
    }

    /// Number of distinct roots currently remembered.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Serializes the ledger into a flat binary blob (little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.seen.len() * 16);
        out.extend_from_slice(&(self.cap as u32).to_le_bytes());
        out.extend_from_slice(&(self.order.len() as u32).to_le_bytes());
        for root in &self.order {
            let positions = match self.seen.get(root) {
                Some(p) => p,
                None => continue,
            };
            out.extend_from_slice(&root.to_le_bytes());
            out.extend_from_slice(&(positions.len() as u32).to_le_bytes());
            let mut sorted: Vec<u16> = positions.iter().copied().collect();
            sorted.sort_unstable();
            for p in sorted {
                out.extend_from_slice(&p.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a blob produced by [`DedupLedger::encode`]; `None` on a
    /// truncated or malformed blob.
    pub fn decode(bytes: &[u8]) -> Option<DedupLedger> {
        fn take<'a>(b: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if b.len() < n {
                return None;
            }
            let (head, tail) = b.split_at(n);
            *b = tail;
            Some(head)
        }
        let mut b = bytes;
        let cap = u32::from_le_bytes(take(&mut b, 4)?.try_into().ok()?) as usize;
        let roots = u32::from_le_bytes(take(&mut b, 4)?.try_into().ok()?) as usize;
        let mut ledger = DedupLedger::new(cap);
        for _ in 0..roots {
            let root = u64::from_le_bytes(take(&mut b, 8)?.try_into().ok()?);
            let npos = u32::from_le_bytes(take(&mut b, 4)?.try_into().ok()?) as usize;
            let mut positions = HashSet::with_capacity(npos);
            for _ in 0..npos {
                positions.insert(u16::from_le_bytes(take(&mut b, 2)?.try_into().ok()?));
            }
            ledger.order.push_back(root);
            ledger.seen.insert(root, positions);
        }
        b.is_empty().then_some(ledger)
    }
}

/// One restored checkpoint: the epoch it was taken at, the bolt state,
/// and the dedup ledger consistent with that state.
#[derive(Debug)]
pub struct Checkpoint {
    /// Monotonic per-task checkpoint epoch (1-based).
    pub epoch: u64,
    /// The bolt's state as (key, value) pairs.
    pub state: Vec<(String, Value)>,
    /// The replay-dedup ledger snapshotted with the state.
    pub ledger: DedupLedger,
}

/// Checkpoint storage: `typhoon-kv` blobs indexed by a coordinator znode
/// per task holding the latest epoch.
#[derive(Clone)]
pub struct CheckpointStore {
    kv: Arc<KvStore>,
    coord: Coordinator,
    ser: Arc<SerStats>,
    retention: u64,
}

impl CheckpointStore {
    /// Builds a store keeping the most recent `retention` epochs per task.
    pub fn new(kv: Arc<KvStore>, coord: Coordinator, ser: Arc<SerStats>, retention: u64) -> Self {
        CheckpointStore {
            kv,
            coord,
            ser,
            retention: retention.max(1),
        }
    }

    fn index_path(topology: &str, node: &str, task: TaskId) -> String {
        format!("{CHECKPOINTS}/{topology}/{node}/task-{}", task.0)
    }

    fn blob_key(topology: &str, node: &str, task: TaskId, epoch: u64) -> String {
        format!("ckpt/{topology}/{node}/{}/{epoch}", task.0)
    }

    /// Persists epoch `epoch` of `(topology, node, task)`: snapshot blob
    /// into the kv store, latest-epoch index into the coordinator, and
    /// drops the epoch that just left the retention window.
    pub fn save(
        &self,
        topology: &str,
        node: &str,
        task: TaskId,
        epoch: u64,
        state: &[(String, Value)],
        ledger: &DedupLedger,
    ) {
        let mut values = Vec::with_capacity(2 + state.len() * 2);
        values.push(Value::Int(epoch as i64));
        values.push(Value::Blob(ledger.encode()));
        for (key, value) in state {
            values.push(Value::Str(key.clone()));
            values.push(value.clone());
        }
        let blob = encode_tuple_vec(&Tuple::new(task, values), &self.ser);
        self.kv
            .bset(&Self::blob_key(topology, node, task, epoch), blob);
        let path = Self::index_path(topology, node, task);
        if let Some(parent) = path.rsplit_once('/').map(|(p, _)| p) {
            let _ = self.coord.ensure_path(parent);
        }
        let _ = self.coord.put(&path, epoch.to_string().into_bytes());
        if epoch > self.retention {
            self.kv.bdel(&Self::blob_key(
                topology,
                node,
                task,
                epoch - self.retention,
            ));
        }
    }

    /// The latest checkpoint epoch recorded for `(topology, node, task)`.
    pub fn latest_epoch(&self, topology: &str, node: &str, task: TaskId) -> Option<u64> {
        let (bytes, _) = self
            .coord
            .get(&Self::index_path(topology, node, task))
            .ok()?;
        String::from_utf8(bytes).ok()?.parse().ok()
    }

    /// Loads the most recent checkpoint of `(topology, node, task)`;
    /// `None` when the task was never checkpointed (recovery then starts
    /// the replacement empty).
    pub fn load_latest(&self, topology: &str, node: &str, task: TaskId) -> Option<Checkpoint> {
        let epoch = self.latest_epoch(topology, node, task)?;
        let blob = self.kv.bget(&Self::blob_key(topology, node, task, epoch))?;
        let (tuple, _) = decode_tuple(&blob, &self.ser).ok()?;
        let mut values = tuple.values.into_iter();
        let stored_epoch = values.next()?.as_int()? as u64;
        let ledger = match values.next()? {
            Value::Blob(bytes) => DedupLedger::decode(&bytes)?,
            _ => return None,
        };
        let mut state = Vec::new();
        while let Some(key) = values.next() {
            let key = key.as_str()?.to_owned();
            state.push((key, values.next()?));
        }
        Some(Checkpoint {
            epoch: stored_epoch,
            state,
            ledger,
        })
    }

    /// Drops every checkpoint of a retired task (post-recovery cleanup of
    /// the dead task's index; blobs age out via retention).
    pub fn forget(&self, topology: &str, node: &str, task: TaskId) {
        let _ = self.coord.delete(&Self::index_path(topology, node, task));
    }
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CheckpointStore(retention {})", self.retention)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_dedups_by_root_and_position() {
        let mut ledger = DedupLedger::default();
        assert!(ledger.observe(0x100, 0));
        assert!(ledger.observe(0x100, 1), "new position, same root");
        assert!(ledger.observe(0x200, 0), "same position, new root");
        assert!(!ledger.observe(0x100, 0), "exact replay is a duplicate");
        assert!(!ledger.observe(0x100, 1));
        assert_eq!(ledger.len(), 2);
    }

    #[test]
    fn ledger_evicts_oldest_roots_beyond_cap() {
        let mut ledger = DedupLedger::new(2);
        assert!(ledger.observe(1, 0));
        assert!(ledger.observe(2, 0));
        assert!(ledger.observe(3, 0));
        assert_eq!(ledger.len(), 2);
        // Root 1 aged out: a (very) late replay would re-fold, which is
        // why the cap must exceed the ack-timeout root horizon.
        assert!(ledger.observe(1, 0));
    }

    #[test]
    fn ledger_codec_roundtrips() {
        let mut ledger = DedupLedger::new(64);
        for root in [0xAA00u64, 0xBB00, 0xCC00] {
            for pos in 0..5u16 {
                ledger.observe(root, pos);
            }
        }
        let decoded = DedupLedger::decode(&ledger.encode()).expect("decodes");
        assert_eq!(decoded, ledger);
        assert!(DedupLedger::decode(&[1, 2, 3]).is_none(), "truncated blob");
    }

    fn store(retention: u64) -> CheckpointStore {
        CheckpointStore::new(
            Arc::new(KvStore::new()),
            Coordinator::new(),
            SerStats::shared(),
            retention,
        )
    }

    #[test]
    fn save_load_roundtrips_state_and_ledger() {
        let store = store(3);
        let mut ledger = DedupLedger::default();
        ledger.observe(0xF00, 7);
        let state = vec![
            ("storm".to_owned(), Value::Int(3)),
            ("typhoon".to_owned(), Value::Int(5)),
        ];
        store.save("wc", "count", TaskId(4), 1, &state, &ledger);
        let loaded = store.load_latest("wc", "count", TaskId(4)).expect("loaded");
        assert_eq!(loaded.epoch, 1);
        assert_eq!(loaded.state, state);
        assert_eq!(loaded.ledger, ledger);
        assert!(store.load_latest("wc", "count", TaskId(5)).is_none());
        assert!(store.load_latest("wc", "split", TaskId(4)).is_none());
    }

    #[test]
    fn later_epochs_win_and_retention_prunes() {
        let store = store(2);
        let ledger = DedupLedger::default();
        for epoch in 1..=4u64 {
            let state = vec![("n".to_owned(), Value::Int(epoch as i64))];
            store.save("wc", "count", TaskId(1), epoch, &state, &ledger);
        }
        assert_eq!(store.latest_epoch("wc", "count", TaskId(1)), Some(4));
        let loaded = store.load_latest("wc", "count", TaskId(1)).expect("loaded");
        assert_eq!(loaded.state, vec![("n".to_owned(), Value::Int(4))]);
        // Retention 2: epochs 1 and 2 were pruned from the kv store.
        assert!(store
            .kv
            .bget(&CheckpointStore::blob_key("wc", "count", TaskId(1), 1))
            .is_none());
        assert!(store
            .kv
            .bget(&CheckpointStore::blob_key("wc", "count", TaskId(1), 2))
            .is_none());
        assert!(store
            .kv
            .bget(&CheckpointStore::blob_key("wc", "count", TaskId(1), 3))
            .is_some());
    }

    #[test]
    fn forget_clears_the_index() {
        let store = store(3);
        store.save(
            "wc",
            "count",
            TaskId(9),
            1,
            &[("w".to_owned(), Value::Int(1))],
            &DedupLedger::default(),
        );
        assert!(store.latest_epoch("wc", "count", TaskId(9)).is_some());
        store.forget("wc", "count", TaskId(9));
        assert!(store.latest_epoch("wc", "count", TaskId(9)).is_none());
    }
}
