//! The port registry: worker ports backed by DPDK-style rings.
//!
//! Launching a worker "attaches it to the SDN switch" (§3.2 step (iv)) by
//! creating a pair of rings; killing a worker (or the worker dying) closes
//! the rings, which the datapath notices and reports as a `PortStatus`
//! delete — the "unexpected port removal event" the fault detector uses.

use std::collections::BTreeMap;
use typhoon_net::{ring, Frame, NetError, RingConsumer, RingProducer};
use typhoon_openflow::{PortNo, PortStats};

/// The worker-side endpoints of an attached port.
#[derive(Debug)]
pub struct WorkerPort {
    /// The port number the scheduler assigned.
    pub port: PortNo,
    /// Worker → switch ring.
    pub tx: RingProducer,
    /// Switch → worker ring.
    pub rx: RingConsumer,
}

/// The switch-side state of one attached port.
pub(crate) struct PortEntry {
    /// Switch → worker ring (we produce).
    pub(crate) to_worker: RingProducer,
    /// Worker → switch ring (we consume).
    pub(crate) from_worker: RingConsumer,
    pub(crate) stats: PortStats,
}

/// The registry of attached ports.
pub(crate) struct Ports {
    pub(crate) entries: BTreeMap<PortNo, PortEntry>,
    ring_capacity: usize,
}

impl Ports {
    pub(crate) fn new(ring_capacity: usize) -> Self {
        Ports {
            entries: BTreeMap::new(),
            ring_capacity,
        }
    }

    /// Attaches a worker to `port`, returning the worker-side endpoints.
    /// Re-attaching an occupied port replaces the old (dead) entry.
    pub(crate) fn attach(&mut self, port: PortNo) -> WorkerPort {
        assert!(port.is_physical(), "cannot attach to reserved port {port}");
        let (to_worker_tx, to_worker_rx) = ring(self.ring_capacity);
        let (from_worker_tx, from_worker_rx) = ring(self.ring_capacity);
        self.entries.insert(
            port,
            PortEntry {
                to_worker: to_worker_tx,
                from_worker: from_worker_rx,
                stats: PortStats {
                    port,
                    ..PortStats::default()
                },
            },
        );
        WorkerPort {
            port,
            tx: from_worker_tx,
            rx: to_worker_rx,
        }
    }

    /// Detaches a port (worker kill), closing its rings.
    pub(crate) fn detach(&mut self, port: PortNo) -> bool {
        self.entries.remove(&port).is_some()
    }

    /// Sends a frame out `port`, updating TX stats. Overflow counts as a
    /// TX drop (§8's switch-level loss); a closed ring means the worker
    /// died and is reported to the caller.
    pub(crate) fn transmit(&mut self, port: PortNo, frame: Frame) -> Result<(), NetError> {
        let entry = match self.entries.get_mut(&port) {
            Some(e) => e,
            None => return Err(NetError::Disconnected),
        };
        let len = frame.wire_len() as u64;
        match entry.to_worker.push(frame) {
            Ok(()) => {
                entry.stats.tx_packets += 1;
                entry.stats.tx_bytes += len;
                Ok(())
            }
            Err(NetError::RingFull) => {
                entry.stats.tx_dropped += 1;
                Err(NetError::RingFull)
            }
            Err(e) => Err(e),
        }
    }

    /// Sends a whole batch out `port` with one registry lookup, updating TX
    /// stats per frame (overflow counts as a TX drop, a closed ring drops
    /// silently — the next `poll` reaps the dead port and reports it).
    pub(crate) fn transmit_batch(&mut self, port: PortNo, frames: Vec<Frame>) {
        let entry = match self.entries.get_mut(&port) {
            Some(e) => e,
            None => return,
        };
        for frame in frames {
            let len = frame.wire_len() as u64;
            match entry.to_worker.push(frame) {
                Ok(()) => {
                    entry.stats.tx_packets += 1;
                    entry.stats.tx_bytes += len;
                }
                Err(NetError::RingFull) => entry.stats.tx_dropped += 1,
                Err(_) => {}
            }
        }
    }

    /// Polls every port for received frames (up to `per_port` each),
    /// collecting one batch per non-idle port via `pop_batch`. Ports whose
    /// worker died are returned separately for `PortStatus` reporting.
    pub(crate) fn poll(
        &mut self,
        per_port: usize,
        out: &mut Vec<(PortNo, Vec<Frame>)>,
    ) -> Vec<PortNo> {
        let mut dead = Vec::new();
        for (&port, entry) in self.entries.iter_mut() {
            let mut batch = Vec::new();
            match entry.from_worker.pop_batch(&mut batch, per_port) {
                Ok(_) => {}
                // pop_batch keeps a partial drain on disconnect, so frames
                // pushed before the worker died are still forwarded.
                Err(_) => dead.push(port),
            }
            if !batch.is_empty() {
                for frame in &batch {
                    entry.stats.rx_packets += 1;
                    entry.stats.rx_bytes += frame.wire_len() as u64;
                }
                out.push((port, batch));
            }
        }
        for &port in &dead {
            self.entries.remove(&port);
        }
        dead
    }

    /// Current port statistics.
    pub(crate) fn stats(&self) -> Vec<PortStats> {
        self.entries.values().map(|e| e.stats).collect()
    }

    /// Attached port numbers.
    pub(crate) fn port_numbers(&self) -> Vec<PortNo> {
        self.entries.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use typhoon_net::MacAddr;
    use typhoon_tuple::tuple::TaskId;

    fn frame(n: u8) -> Frame {
        Frame::typhoon(
            MacAddr::worker(0, TaskId(0)),
            MacAddr::worker(0, TaskId(1)),
            Bytes::from(vec![n; 4]),
        )
    }

    #[test]
    fn attach_transmit_receive() {
        let mut ports = Ports::new(16);
        let wp = ports.attach(PortNo(1));
        ports.transmit(PortNo(1), frame(7)).unwrap();
        let got = wp.rx.pop().unwrap().unwrap();
        assert_eq!(got.payload[0], 7);
        let stats = ports.stats();
        assert_eq!(stats[0].tx_packets, 1);
    }

    #[test]
    fn worker_to_switch_direction_polls() {
        let mut ports = Ports::new(16);
        let wp = ports.attach(PortNo(2));
        wp.tx.push(frame(9)).unwrap();
        let mut out = Vec::new();
        let dead = ports.poll(8, &mut out);
        assert!(dead.is_empty());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, PortNo(2));
        assert_eq!(out[0].1.len(), 1);
        assert_eq!(ports.stats()[0].rx_packets, 1);
    }

    #[test]
    fn dead_worker_detected_on_poll() {
        let mut ports = Ports::new(16);
        let wp = ports.attach(PortNo(3));
        drop(wp); // the worker dies, dropping its ring endpoints
        let mut out = Vec::new();
        let dead = ports.poll(8, &mut out);
        assert_eq!(dead, vec![PortNo(3)]);
        assert!(ports.entries.is_empty(), "dead port removed");
    }

    #[test]
    fn transmit_to_missing_port_is_disconnected() {
        let mut ports = Ports::new(4);
        assert!(matches!(
            ports.transmit(PortNo(9), frame(0)),
            Err(NetError::Disconnected)
        ));
    }

    #[test]
    fn overflow_counts_tx_drop() {
        let mut ports = Ports::new(1);
        let _wp = ports.attach(PortNo(1));
        ports.transmit(PortNo(1), frame(1)).unwrap();
        assert!(matches!(
            ports.transmit(PortNo(1), frame(2)),
            Err(NetError::RingFull)
        ));
        assert_eq!(ports.stats()[0].tx_dropped, 1);
    }

    #[test]
    #[should_panic(expected = "reserved port")]
    fn reserved_ports_cannot_be_attached() {
        let mut ports = Ports::new(4);
        let _ = ports.attach(PortNo::CONTROLLER);
    }

    #[test]
    fn per_port_poll_budget_is_respected() {
        let mut ports = Ports::new(64);
        let wp = ports.attach(PortNo(1));
        for i in 0..10 {
            wp.tx.push(frame(i)).unwrap();
        }
        let mut out = Vec::new();
        ports.poll(4, &mut out);
        let drained: usize = out.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(drained, 4, "budget caps one poll round");
    }

    #[test]
    fn transmit_batch_amortizes_the_lookup_with_exact_stats() {
        let mut ports = Ports::new(2);
        let wp = ports.attach(PortNo(1));
        ports.transmit_batch(PortNo(1), (0..4).map(frame).collect());
        let stats = ports.stats();
        assert_eq!(stats[0].tx_packets, 2);
        assert_eq!(stats[0].tx_dropped, 2, "overflow counted per frame");
        assert_eq!(wp.rx.pop().unwrap().unwrap().payload[0], 0);
        // A batch to a missing port is a silent no-op (poll reaps it).
        ports.transmit_batch(PortNo(9), vec![frame(1)]);
    }
}
