//! The forwarding engine.
//!
//! One datapath thread per host polls worker ports, tunnel ingress and the
//! controller channel, resolves each *batch run* of same-headed frames once
//! against the [`FlowCache`] (falling back to the flow table on a miss) and
//! executes the matched action list. Broadcast and mirror replication clone
//! the frame, whose payload is [`bytes::Bytes`] — a refcount bump,
//! "negligible packet copy overhead in OVS" (§6.1).

use crate::cache::{CacheStats, Displaced, FlowCache, Probe};
use crate::group_table::GroupTable;
use crate::port::{Ports, WorkerPort};
use crate::table::FlowTable;
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use typhoon_diag::{rank, DiagMutex as Mutex};
use typhoon_net::{Frame, NetError, Tunnel};
use typhoon_openflow::{
    wire, Action, DatapathId, FrameMeta, OfMessage, PacketInReason, PortNo, PortStatusReason,
};
use typhoon_trace::{Hop, TraceCtx};

/// Tunable parameters of one switch.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// This switch's datapath ID.
    pub dpid: DatapathId,
    /// Capacity of each port ring (frames).
    pub ring_capacity: usize,
    /// Max frames drained per port per poll round.
    pub poll_budget: usize,
    /// How often expired rules are swept.
    pub expire_interval: Duration,
    /// Sleep when a full round moved nothing (spin-down).
    pub idle_sleep: Duration,
}

impl SwitchConfig {
    /// Reasonable defaults for a host switch.
    pub fn new(dpid: u64) -> Self {
        SwitchConfig {
            dpid: DatapathId(dpid),
            ring_capacity: 8192,
            poll_budget: 256,
            expire_interval: Duration::from_millis(100),
            idle_sleep: Duration::from_micros(50),
        }
    }
}

/// The controller's ends of one switch's control channel. Messages are
/// encoded OpenFlow bytes in both directions.
#[derive(Debug, Clone)]
pub struct ControlChannel {
    /// Controller → switch.
    pub to_switch: Sender<Bytes>,
    /// Switch → controller (replies and async events).
    pub from_switch: Receiver<Bytes>,
}

/// A reconnect attempt carried a fencing term older than the one already
/// connected — the reconnecting controller is a stale leader and must not
/// be allowed to reprogram the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleLeader {
    /// Term offered by the reconnecting controller.
    pub offered: u64,
    /// Term of the leader the switch is (or was last) bound to.
    pub current: u64,
}

impl std::fmt::Display for StaleLeader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale leader rejected: offered term {} < current term {}",
            self.offered, self.current
        )
    }
}

impl std::error::Error for StaleLeader {}

/// Bound on controller-bound events buffered while headless; oldest
/// events are shed first (a newer `PortStatus`/`PacketIn` supersedes an
/// older one for every consumer we have).
const HEADLESS_QUEUE_CAP: usize = 4096;

/// The switch's side of the controller connection, swappable on failover.
///
/// `term` is the fencing token from the controller election: term 0 is
/// the boot channel handed out by [`Switch::new`] (a switch that has only
/// ever seen term 0 keeps the legacy standalone semantics — dropped
/// events, live expiry — so controller-less tests and tools behave as
/// before). Once a real leader (term ≥ 1) has connected, losing the
/// channel flips the switch into *headless mode*: forwarding continues on
/// installed rules and the megaflow cache, rule expiry is suppressed, and
/// controller-bound events queue here until the next leader reconnects
/// and replays them.
struct ControllerLink {
    term: u64,
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    headless: bool,
    headless_since: Option<Instant>,
    queued: VecDeque<Bytes>,
    dropped: u64,
}

impl ControllerLink {
    /// Queues an encoded event for replay, shedding the oldest on overflow.
    fn queue(&mut self, bytes: Bytes) {
        if self.queued.len() >= HEADLESS_QUEUE_CAP {
            self.queued.pop_front();
            self.dropped += 1;
        }
        self.queued.push_back(bytes);
    }
}

struct Inner {
    config: SwitchConfig,
    ports: Mutex<Ports>,
    table: Mutex<FlowTable>,
    cache: FlowCache,
    groups: Mutex<GroupTable>,
    tunnels: Mutex<HashMap<u32, Box<dyn Tunnel + Send>>>,
    tunnel_downs: AtomicU64,
    /// Per-frame table-miss total, mirrored from the match path so metrics
    /// scrapes never contend with the datapath on the table lock.
    misses: AtomicU64,
    /// Installed-rule count, refreshed after every table mutation.
    rules: AtomicU64,
    link: Mutex<ControllerLink>,
    /// Mirror of `link.headless` so the expiry path (and metrics scrapes)
    /// never take the link lock.
    headless: AtomicBool,
    /// Milliseconds spent headless across completed windows
    /// (observability: `switch.headless_ms`).
    headless_ms: AtomicU64,
    /// Events replayed to reconnecting leaders.
    replayed: AtomicU64,
    shutdown: AtomicBool,
    last_expire: Mutex<Instant>,
    trace: Mutex<TraceCtx>,
}

/// A host's software SDN switch. Clone-able handle; the forwarding loop
/// runs on the thread started by [`Switch::spawn`] (or is driven manually
/// with [`Switch::process_round`] in deterministic tests).
#[derive(Clone)]
pub struct Switch {
    inner: Arc<Inner>,
}

/// Join handle + shutdown for a spawned datapath thread.
pub struct SwitchHandle {
    switch: Switch,
    thread: Option<JoinHandle<()>>,
}

impl Switch {
    /// Creates a switch and the controller-side channel endpoints.
    pub fn new(config: SwitchConfig) -> (Switch, ControlChannel) {
        let (to_switch_tx, to_switch_rx) = bounded(65536);
        let (from_switch_tx, from_switch_rx) = bounded(65536);
        let switch = Switch {
            inner: Arc::new(Inner {
                ports: Mutex::with_rank(
                    rank::DP_PORTS,
                    "switch.datapath.ports",
                    Ports::new(config.ring_capacity),
                ),
                table: Mutex::with_rank(rank::DATAPATH, "switch.datapath.table", FlowTable::new()),
                cache: FlowCache::new(),
                groups: Mutex::with_rank(
                    rank::DP_GROUPS,
                    "switch.datapath.groups",
                    GroupTable::new(),
                ),
                tunnels: Mutex::with_rank(
                    rank::DP_TUNNELS,
                    "switch.datapath.tunnels",
                    HashMap::new(),
                ),
                tunnel_downs: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                rules: AtomicU64::new(0),
                link: Mutex::with_rank(
                    rank::DP_CTRL,
                    "switch.datapath.link",
                    ControllerLink {
                        term: 0,
                        tx: from_switch_tx,
                        rx: to_switch_rx,
                        headless: false,
                        headless_since: None,
                        queued: VecDeque::new(),
                        dropped: 0,
                    },
                ),
                headless: AtomicBool::new(false),
                headless_ms: AtomicU64::new(0),
                replayed: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                last_expire: Mutex::with_rank(
                    rank::DP_EXPIRE,
                    "switch.datapath.last_expire",
                    Instant::now(),
                ),
                trace: Mutex::with_rank(
                    rank::DP_TRACE,
                    "switch.datapath.trace",
                    TraceCtx::disabled(),
                ),
                config,
            }),
        };
        (
            switch,
            ControlChannel {
                to_switch: to_switch_tx,
                from_switch: from_switch_rx,
            },
        )
    }

    /// This switch's datapath ID.
    pub fn dpid(&self) -> DatapathId {
        self.inner.config.dpid
    }

    /// Attaches a worker to `port` and notifies the controller with a
    /// `PortStatus` add event (§3.2 step (iv)).
    pub fn attach_worker(&self, port: PortNo) -> WorkerPort {
        let wp = self.inner.ports.lock().attach(port);
        self.send_event(OfMessage::PortStatus {
            reason: PortStatusReason::Add,
            port,
        });
        wp
    }

    /// Detaches a worker (deliberate kill) and notifies the controller.
    pub fn detach_worker(&self, port: PortNo) {
        if self.inner.ports.lock().detach(port) {
            self.send_event(OfMessage::PortStatus {
                reason: PortStatusReason::Delete,
                port,
            });
        }
    }

    /// Registers the tunnel used to reach peer host `host`.
    pub fn add_tunnel(&self, host: u32, tunnel: Box<dyn Tunnel + Send>) {
        self.inner.tunnels.lock().insert(host, tunnel);
        // Topology changed: cached tunnel-output decisions may now be
        // reachable again (e.g. recovery re-registering a torn-down link).
        self.inner.cache.invalidate_all();
    }

    /// True while the tunnel to `host` is registered (i.e. not torn down).
    pub fn tunnel_alive(&self, host: u32) -> bool {
        self.inner.tunnels.lock().contains_key(&host)
    }

    /// How many tunnels this switch has torn down (observability:
    /// `switch.tunnel_downs`).
    pub fn tunnel_down_count(&self) -> u64 {
        self.inner.tunnel_downs.load(Ordering::Relaxed)
    }

    /// True when a tunnel error is unrecoverable (the link is gone or the
    /// stream is poisoned) rather than transient backpressure.
    fn tunnel_error_is_fatal(e: &NetError) -> bool {
        matches!(
            e,
            NetError::Disconnected | NetError::Broken(_) | NetError::Io(_)
        )
    }

    /// Tears down the tunnel to `host` and reports it to the controller as
    /// a `PortStatus` delete on the tunnel-peer pseudo-port, so a lost
    /// host link reaches the fault detector through the exact same channel
    /// as a dead worker port (Fig. 10).
    fn tunnel_down(&self, host: u32) {
        let removed = self.inner.tunnels.lock().remove(&host).is_some();
        if removed {
            self.inner.tunnel_downs.fetch_add(1, Ordering::Relaxed);
            self.inner.cache.invalidate_all();
            self.send_event(OfMessage::PortStatus {
                reason: PortStatusReason::Delete,
                port: PortNo::tunnel_peer(host),
            });
        }
    }

    /// Installs the tracing context used to record `SwitchMatch` spans for
    /// traced frames (frames whose reserved header field is nonzero).
    pub fn set_trace(&self, ctx: TraceCtx) {
        *self.inner.trace.lock() = ctx;
    }

    /// Flow-table miss count (observability: `switch.misses`). Served from
    /// a relaxed atomic mirrored on the match path, so metrics scrapes
    /// never contend with the datapath on the hot table lock.
    pub fn miss_count(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Number of installed flow rules (observability: `switch.rules`).
    /// Refreshed after every table mutation; lock-free to read.
    pub fn rule_count(&self) -> usize {
        self.inner.rules.load(Ordering::Relaxed) as usize
    }

    /// Flow-cache counters (observability: `switch.cache.*`).
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    fn send_event(&self, msg: OfMessage) {
        let bytes = wire::encode(&msg);
        let mut link = self.inner.link.lock();
        if link.headless {
            link.queue(bytes);
            return;
        }
        // LINT: allow-send-under-lock(try_send on a bounded channel never blocks; the link lock is a leaf among the datapath locks)
        match link.tx.try_send(bytes) {
            // A congested controller must never stall the data plane;
            // events are best-effort like real OpenFlow async messages.
            Ok(()) | Err(TrySendError::Full(_)) => {}
            Err(TrySendError::Disconnected(bytes)) => {
                // The boot channel (term 0) going away keeps the legacy
                // standalone semantics — events are simply dropped — so
                // controller-less tests and tools behave as before. Losing
                // an elected leader (term ≥ 1) flips us headless instead.
                if link.term >= 1 {
                    self.enter_headless(&mut link);
                    link.queue(bytes);
                }
            }
        }
    }

    /// Sends a reply to a controller *request*. Unlike async events,
    /// replies are never queued for replay: the requester is gone, and a
    /// new leader re-syncs state rather than consuming stale replies.
    fn send_reply(&self, msg: OfMessage) {
        let link = self.inner.link.lock();
        if link.headless {
            return;
        }
        // LINT: allow-send-under-lock(try_send on a bounded channel never blocks; the link lock is a leaf among the datapath locks)
        let _ = link.tx.try_send(wire::encode(&msg));
    }

    /// Marks the link headless (caller holds the link lock). Forwarding
    /// continues on installed rules and the flow cache; rule expiry is
    /// suppressed and events queue until the next leader connects.
    fn enter_headless(&self, link: &mut ControllerLink) {
        if link.headless {
            return;
        }
        link.headless = true;
        link.headless_since = Some(Instant::now());
        self.inner.headless.store(true, Ordering::Relaxed);
    }

    /// Reconnect handshake from a (new) controller leader carrying its
    /// election `term` as a fencing token. A term older than the one this
    /// switch is already bound to means the caller is a *stale leader* —
    /// deposed, but unaware — and is rejected so it can never reprogram
    /// the datapath behind the real leader's back. Equal terms are
    /// accepted (same leader, fresh channel).
    ///
    /// On success the switch leaves headless mode, accounts the headless
    /// window, and replays every queued event to the new leader in
    /// arrival order.
    pub fn connect_controller(&self, term: u64) -> Result<ControlChannel, StaleLeader> {
        let (to_switch_tx, to_switch_rx) = bounded(65536);
        let (from_switch_tx, from_switch_rx) = bounded(65536);
        // Table before link: rank(DATAPATH) < rank(DP_CTRL).
        let mut table = self.inner.table.lock();
        let mut link = self.inner.link.lock();
        if term < link.term {
            return Err(StaleLeader {
                offered: term,
                current: link.term,
            });
        }
        if let Some(since) = link.headless_since.take() {
            let window = since.elapsed();
            // The leaderless window must not count against any rule
            // timeout (expiry was suspended): shift every expiry clock
            // forward by its duration before time resumes.
            table.shift_clocks(window);
            self.inner
                .headless_ms
                .fetch_add(window.as_millis() as u64, Ordering::Relaxed);
        }
        drop(table);
        link.term = term;
        link.tx = from_switch_tx;
        link.rx = to_switch_rx;
        link.headless = false;
        self.inner.headless.store(false, Ordering::Relaxed);
        let replay: Vec<Bytes> = link.queued.drain(..).collect();
        for bytes in replay {
            // LINT: allow-send-under-lock(try_send on a freshly created bounded channel never blocks; the link lock is a leaf among the datapath locks)
            if link.tx.try_send(bytes).is_err() {
                link.dropped += 1;
            } else {
                self.inner.replayed.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(ControlChannel {
            to_switch: to_switch_tx,
            from_switch: from_switch_rx,
        })
    }

    /// True while the switch forwards without a live controller
    /// (observability: `switch.headless`).
    pub fn is_headless(&self) -> bool {
        self.inner.headless.load(Ordering::Relaxed)
    }

    /// The election term of the leader this switch is bound to (0 until a
    /// real leader has connected).
    pub fn controller_term(&self) -> u64 {
        self.inner.link.lock().term
    }

    /// Events currently queued for replay to the next leader.
    pub fn headless_queue_len(&self) -> usize {
        self.inner.link.lock().queued.len()
    }

    /// Events shed from the bounded headless queue (oldest-first).
    pub fn headless_dropped(&self) -> u64 {
        self.inner.link.lock().dropped
    }

    /// Total milliseconds spent headless: completed windows plus the
    /// ongoing one, if any (observability: `switch.headless_ms`).
    pub fn headless_ms(&self) -> u64 {
        let completed = self.inner.headless_ms.load(Ordering::Relaxed);
        let ongoing = self
            .inner
            .link
            .lock()
            .headless_since
            .map(|s| s.elapsed().as_millis() as u64)
            .unwrap_or(0);
        completed + ongoing
    }

    /// Events replayed to reconnecting leaders (observability:
    /// `switch.replayed_events`).
    pub fn replayed_events(&self) -> u64 {
        self.inner.replayed.load(Ordering::Relaxed)
    }

    /// Runs one poll round: control messages, port RX, tunnel RX, expiry.
    /// Returns `true` when any work was done (idle detection).
    pub fn process_round(&self) -> bool {
        let mut busy = false;
        busy |= self.handle_control();
        busy |= self.poll_ports();
        busy |= self.poll_tunnels();
        self.maybe_expire();
        busy
    }

    fn handle_control(&self) -> bool {
        // Drain raw messages under the link lock, then apply them with the
        // lock released: applying takes the table/group/port locks, and a
        // PacketOut can re-enter `send_event`.
        let mut raws = Vec::new();
        {
            let mut link = self.inner.link.lock();
            for _ in 0..self.inner.config.poll_budget {
                match link.rx.try_recv() {
                    Ok(b) => raws.push(b),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        if link.term >= 1 {
                            self.enter_headless(&mut link);
                        }
                        break;
                    }
                }
            }
        }
        let busy = !raws.is_empty();
        for raw in raws {
            let msg = match wire::decode(raw) {
                Ok((m, _)) => m,
                Err(_) => continue, // corrupt control message: drop
            };
            if let Some(reply) = self.apply_control(msg) {
                self.send_reply(reply);
            }
        }
        busy
    }

    fn apply_control(&self, msg: OfMessage) -> Option<OfMessage> {
        match msg {
            OfMessage::Hello => Some(OfMessage::Hello),
            OfMessage::EchoRequest(v) => Some(OfMessage::EchoReply(v)),
            OfMessage::FeaturesRequest => Some(OfMessage::FeaturesReply {
                dpid: self.inner.config.dpid,
                ports: self.inner.ports.lock().port_numbers(),
            }),
            OfMessage::FlowMod(fm) => {
                let now = Instant::now();
                let changed = {
                    let mut table = self.inner.table.lock();
                    if table.would_change(&fm, now) {
                        // Finalize cached hit counters against the pre-change
                        // rules (a Modify/Delete must not lose or misroute them).
                        self.inner
                            .cache
                            .drain_pending(|meta, p, b| table.credit(meta, p, b, now));
                        table.apply(&fm, now);
                        self.inner
                            .rules
                            .store(table.len() as u64, Ordering::Relaxed);
                        true
                    } else {
                        // A failover re-sync replays the full rule set;
                        // byte-identical re-installs must not flush the
                        // megaflow cache's hot entries.
                        false
                    }
                };
                if changed {
                    self.inner.cache.invalidate_all();
                }
                None
            }
            OfMessage::GroupMod(gm) => {
                self.inner.groups.lock().apply(&gm);
                None
            }
            OfMessage::PacketOut { in_port, frame } => {
                if let Ok(f) = Frame::decode(frame) {
                    self.process_frame(in_port, f);
                }
                None
            }
            OfMessage::FlowStatsRequest => {
                let now = Instant::now();
                let mut table = self.inner.table.lock();
                // Flush cache-accumulated hits first so the reply is exact.
                self.inner
                    .cache
                    .drain_pending(|meta, p, b| table.credit(meta, p, b, now));
                Some(OfMessage::FlowStatsReply(table.stats()))
            }
            OfMessage::PortStatsRequest => {
                Some(OfMessage::PortStatsReply(self.inner.ports.lock().stats()))
            }
            OfMessage::Barrier { xid } => Some(OfMessage::BarrierReply { xid }),
            // Replies/events never arrive on the controller→switch direction.
            _ => None,
        }
    }

    fn poll_ports(&self) -> bool {
        let mut batches = Vec::new();
        let dead = {
            let mut ports = self.inner.ports.lock();
            ports.poll(self.inner.config.poll_budget, &mut batches)
        };
        for port in dead {
            // The fault detector's trigger: an unexpected port removal.
            self.send_event(OfMessage::PortStatus {
                reason: PortStatusReason::Delete,
                port,
            });
        }
        let busy = !batches.is_empty();
        for (port, frames) in batches {
            self.process_frames(port, frames);
        }
        busy
    }

    fn poll_tunnels(&self) -> bool {
        let mut frames = Vec::new();
        let mut dead = Vec::new();
        {
            let tunnels = self.inner.tunnels.lock();
            for (&host, tunnel) in tunnels.iter() {
                // recv_batch appends whatever arrived before an error, so
                // buffered frames are still delivered on the poll that
                // detects the teardown.
                if let Err(e) = tunnel.recv_batch(&mut frames, self.inner.config.poll_budget) {
                    if Self::tunnel_error_is_fatal(&e) {
                        dead.push(host);
                    }
                }
            }
        }
        for host in dead {
            self.tunnel_down(host);
        }
        let busy = !frames.is_empty();
        self.process_frames(PortNo::TUNNEL, frames);
        busy
    }

    fn maybe_expire(&self) {
        // Headless: nobody exists to re-install a rule whose flow happens
        // to go quiet during the failover window, so an expiry sweep here
        // would silently break forwarding with no controller to repair it.
        // Expiry is suppressed until a leader reconnects (§3.5).
        if self.inner.headless.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        let mut last = self.inner.last_expire.lock();
        if now.saturating_duration_since(*last) >= self.inner.config.expire_interval {
            *last = now;
            drop(last);
            let evicted = {
                let mut table = self.inner.table.lock();
                // Credit cached hits before the sweep: they refresh the idle
                // clocks of rules whose traffic never reached the table.
                self.inner
                    .cache
                    .drain_pending(|meta, p, b| table.credit(meta, p, b, now));
                let evicted = table.expire(now);
                self.inner
                    .rules
                    .store(table.len() as u64, Ordering::Relaxed);
                evicted
            };
            if evicted > 0 {
                // An eviction can change which (lower-priority) rule a key
                // resolves to; revalidate everything.
                self.inner.cache.invalidate_all();
            }
        }
    }

    /// Runs one frame through the datapath ([`Switch::process_frames`] of a
    /// batch of one — the `PacketOut` and single-frame test path).
    pub fn process_frame(&self, in_port: PortNo, frame: Frame) {
        self.process_frames(in_port, vec![frame]);
    }

    /// Runs a batch of frames that arrived on `in_port` through the
    /// datapath. Consecutive frames with identical headers form a *run*
    /// that is resolved once — one cache probe (or one table lookup on
    /// miss), one trace-lock visit, one port-lock visit — instead of
    /// paying every cost per tuple.
    pub fn process_frames(&self, in_port: PortNo, frames: Vec<Frame>) {
        let mut it = frames.into_iter().peekable();
        while let Some(first) = it.next() {
            let key = (first.src, first.dst, first.ethertype);
            let mut run = vec![first];
            while let Some(f) = it.peek() {
                if (f.src, f.dst, f.ethertype) == key {
                    run.push(it.next().expect("peeked"));
                } else {
                    break;
                }
            }
            self.process_run(in_port, run);
        }
    }

    /// Resolves and forwards one same-headed run.
    fn process_run(&self, in_port: PortNo, run: Vec<Frame>) {
        // Untraced frames (the overwhelming majority) pay one u64 compare;
        // traced ones share a single trace-lock acquisition per run.
        if run.iter().any(|f| f.trace != 0) {
            let trace = self.inner.trace.lock();
            for f in run.iter().filter(|f| f.trace != 0) {
                trace.record(f.trace, Hop::SwitchMatch);
            }
        }
        let meta = FrameMeta {
            in_port,
            dl_src: run[0].src,
            dl_dst: run[0].dst,
            ether_type: run[0].ethertype,
        };
        let bytes: u64 = run.iter().map(|f| f.wire_len() as u64).sum();
        let actions = match self.resolve(&meta, run.len() as u64, bytes) {
            Some(a) => a,
            None => return, // table miss: drop the whole run (counted)
        };
        // Fast paths for the two Table 3 staples, paying one lock per run.
        // Everything else (broadcast, groups, controller) falls back to the
        // general per-frame executor.
        match actions[..] {
            [Action::Output(p)] if p.is_physical() && p != PortNo::TUNNEL => {
                self.inner.ports.lock().transmit_batch(p, run);
            }
            [Action::SetTunDst(host), Action::Output(PortNo::TUNNEL)] => {
                let mut dead = false;
                {
                    let tunnels = self.inner.tunnels.lock();
                    if let Some(t) = tunnels.get(&host) {
                        // Frames cross the tunnel one by one so the fault
                        // injector keeps its per-frame semantics (mid-batch
                        // drop/corrupt/partition stays reachable).
                        for frame in &run {
                            // LINT: allow-send-under-lock(Tunnel::send is a socket write, not a channel op; the per-tunnel writer lock ranks above this map lock)
                            if let Err(e) = t.send(frame) {
                                if Self::tunnel_error_is_fatal(&e) {
                                    dead = true;
                                    break;
                                }
                            }
                        }
                    }
                }
                if dead {
                    self.tunnel_down(host);
                }
            }
            _ => {
                for frame in run {
                    self.execute(&actions, in_port, frame, 0);
                }
            }
        }
    }

    /// The instant expiry decisions are made against. While headless, time
    /// is frozen at the moment the leader was lost: a rule (or cache
    /// entry) that was alive when the controller died keeps forwarding for
    /// the whole leaderless window, however long failover takes — nobody
    /// exists to re-install it if its flow goes momentarily quiet.
    fn now_for_expiry(&self) -> Instant {
        if self.inner.headless.load(Ordering::Relaxed) {
            if let Some(since) = self.inner.link.lock().headless_since {
                return since;
            }
        }
        Instant::now()
    }

    /// Resolves a run's actions: flow cache first, table on a miss (which
    /// also installs the result — positive or negative — for the next run).
    fn resolve(&self, meta: &FrameMeta, packets: u64, bytes: u64) -> Option<Vec<Action>> {
        let now = self.now_for_expiry();
        match self.inner.cache.probe(meta, packets, bytes, now) {
            Probe::Hit(actions) => Some(actions),
            Probe::NegativeHit => {
                self.inner.misses.fetch_add(packets, Ordering::Relaxed);
                None
            }
            Probe::Miss => {
                let mut table = self.inner.table.lock();
                match table.lookup_credit(meta, packets, bytes, now) {
                    Some(cf) => {
                        let displaced = self.inner.cache.insert(
                            meta,
                            &cf.actions,
                            cf.idle_timeout,
                            cf.hard_remaining,
                            now,
                        );
                        Self::credit_displaced(&mut table, displaced, now);
                        Some(cf.actions)
                    }
                    None => {
                        self.inner.misses.fetch_add(packets, Ordering::Relaxed);
                        let displaced = self.inner.cache.insert_negative(meta, now);
                        Self::credit_displaced(&mut table, displaced, now);
                        None
                    }
                }
            }
        }
    }

    /// Credits pending hits displaced from an overwritten cache slot back
    /// to the table (whose lock the caller already holds).
    fn credit_displaced(table: &mut FlowTable, displaced: Option<Displaced>, now: Instant) {
        if let Some(d) = displaced {
            table.credit(&d.meta, d.packets, d.bytes, now);
        }
    }

    fn execute(&self, actions: &[Action], in_port: PortNo, mut frame: Frame, depth: u8) {
        if depth > 4 {
            return; // group recursion guard
        }
        let mut tun_dst: Option<u32> = None;
        let mut dead_tunnel: Option<u32> = None;
        for action in actions {
            match *action {
                Action::SetDlDst(mac) => {
                    frame.dst = mac;
                }
                Action::SetTunDst(host) => {
                    tun_dst = Some(host);
                }
                Action::Output(PortNo::TUNNEL) => {
                    if let Some(host) = tun_dst {
                        let tunnels = self.inner.tunnels.lock();
                        if let Some(t) = tunnels.get(&host) {
                            // LINT: allow-send-under-lock(Tunnel::send is a socket write, not a channel op; the per-tunnel writer lock ranks above this map lock)
                            if let Err(e) = t.send(&frame) {
                                if Self::tunnel_error_is_fatal(&e) {
                                    dead_tunnel = Some(host);
                                }
                            }
                        }
                    }
                }
                Action::Output(PortNo::CONTROLLER) | Action::ToController => {
                    self.send_event(OfMessage::PacketIn {
                        in_port,
                        reason: PacketInReason::Action,
                        frame: frame.encode(),
                    });
                }
                Action::Output(PortNo::ALL) => {
                    let ports: Vec<PortNo> = self
                        .inner
                        .ports
                        .lock()
                        .port_numbers()
                        .into_iter()
                        .filter(|&p| p != in_port)
                        .collect();
                    for p in ports {
                        // Payload is shared Bytes: this clone is O(1).
                        let _ = self.inner.ports.lock().transmit(p, frame.clone());
                    }
                }
                Action::Output(p) => {
                    let _ = self.inner.ports.lock().transmit(p, frame.clone());
                }
                Action::Group(g) => {
                    // Bind first: an `if let` on the lock temporary would
                    // hold the group-table guard across the recursive call
                    // and deadlock on self-referential groups.
                    let bucket_actions = self.inner.groups.lock().select(g);
                    if let Some(bucket_actions) = bucket_actions {
                        self.execute(&bucket_actions, in_port, frame.clone(), depth + 1);
                    }
                }
            }
        }
        // Tear down outside the action loop: `tunnel_down` re-takes the
        // tunnels lock, and the event should fire once per frame even if
        // several output actions hit the same dead tunnel.
        if let Some(host) = dead_tunnel {
            self.tunnel_down(host);
        }
    }

    /// Spawns the forwarding loop on its own thread.
    pub fn spawn(&self) -> SwitchHandle {
        let switch = self.clone();
        let loop_switch = self.clone();
        let thread = typhoon_diag::spawn_supervised(
            &format!("datapath-{}", self.dpid()),
            |_event| { /* diag's panic log + counters suffice; no extra callback */ },
            move || {
                while !loop_switch.inner.shutdown.load(Ordering::Acquire) {
                    if !loop_switch.process_round() {
                        // LINT: allow-sleep(configured idle_sleep when the datapath processed nothing this round)
                        std::thread::sleep(loop_switch.inner.config.idle_sleep);
                    }
                }
            },
        );
        SwitchHandle {
            switch,
            thread: Some(thread),
        }
    }

    /// Requests the forwarding loop to stop.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
    }
}

impl std::fmt::Debug for Switch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Switch({}, rules={}, misses={})",
            self.dpid(),
            self.rule_count(),
            self.miss_count()
        )
    }
}

impl SwitchHandle {
    /// The underlying switch handle.
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// Stops the loop and joins the thread.
    pub fn stop(mut self) {
        self.switch.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SwitchHandle {
    fn drop(&mut self) {
        self.switch.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_net::{InMemoryTunnel, MacAddr, TYPHOON_ETHERTYPE};
    use typhoon_openflow::{FlowMatch, FlowMod};
    use typhoon_tuple::tuple::TaskId;

    fn w(task: u32) -> MacAddr {
        MacAddr::worker(1, TaskId(task))
    }

    fn data_frame(src: u32, dst: MacAddr, n: u8) -> Frame {
        Frame::typhoon(w(src), dst, Bytes::from(vec![n; 32]))
    }

    fn send_ctrl(ch: &ControlChannel, msg: OfMessage) {
        ch.to_switch.send(wire::encode(&msg)).unwrap();
    }

    fn drain_events(ch: &ControlChannel) -> Vec<OfMessage> {
        ch.from_switch
            .try_iter()
            .map(|b| wire::decode(b).unwrap().0)
            .collect()
    }

    /// Installs the Table 3 "local transfer" rule.
    fn local_rule(src: u32, src_port: u32, dst: u32, dst_port: u32) -> OfMessage {
        OfMessage::FlowMod(FlowMod::add(
            10,
            FlowMatch::any()
                .in_port(PortNo(src_port))
                .dl_src(w(src))
                .dl_dst(w(dst))
                .ether_type(TYPHOON_ETHERTYPE),
            vec![Action::Output(PortNo(dst_port))],
        ))
    }

    #[test]
    fn local_transfer_follows_table3_rule() {
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        let wp1 = sw.attach_worker(PortNo(1));
        let wp2 = sw.attach_worker(PortNo(2));
        send_ctrl(&ch, local_rule(10, 1, 20, 2));
        sw.process_round(); // control
        wp1.tx.push(data_frame(10, w(20), 0xaa)).unwrap();
        sw.process_round(); // forward
        let got = wp2.rx.pop().unwrap().expect("delivered");
        assert_eq!(got.payload[0], 0xaa);
        assert_eq!(got.dst, w(20));
        assert_eq!(sw.miss_count(), 0);
    }

    #[test]
    fn table_miss_drops_and_counts() {
        let (sw, _ch) = Switch::new(SwitchConfig::new(1));
        let wp1 = sw.attach_worker(PortNo(1));
        let wp2 = sw.attach_worker(PortNo(2));
        wp1.tx.push(data_frame(10, w(20), 1)).unwrap();
        sw.process_round();
        assert!(wp2.rx.pop().unwrap().is_none());
        assert_eq!(sw.miss_count(), 1);
    }

    #[test]
    fn broadcast_replicates_without_copying_payload() {
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        let src = sw.attach_worker(PortNo(1));
        let sinks: Vec<WorkerPort> = (2..=5).map(|p| sw.attach_worker(PortNo(p))).collect();
        // Table 3 one-to-many rule: broadcast dst → all sink ports.
        send_ctrl(
            &ch,
            OfMessage::FlowMod(FlowMod::add(
                10,
                FlowMatch::any()
                    .in_port(PortNo(1))
                    .dl_dst(MacAddr::BROADCAST)
                    .ether_type(TYPHOON_ETHERTYPE),
                (2..=5).map(|p| Action::Output(PortNo(p))).collect(),
            )),
        );
        sw.process_round();
        let frame = data_frame(10, MacAddr::BROADCAST, 0xbb);
        let payload_ptr = frame.payload.as_ptr();
        src.tx.push(frame).unwrap();
        sw.process_round();
        for sink in &sinks {
            let got = sink.rx.pop().unwrap().expect("replica delivered");
            assert_eq!(got.payload.as_ptr(), payload_ptr, "shared payload");
        }
    }

    #[test]
    fn remote_transfer_via_tunnel_pair() {
        // Two hosts: sender switch 1, receiver switch 2, joined by a tunnel.
        let (sw1, ch1) = Switch::new(SwitchConfig::new(1));
        let (sw2, ch2) = Switch::new(SwitchConfig::new(2));
        let (t1, t2) = InMemoryTunnel::pair();
        sw1.add_tunnel(2, Box::new(t1));
        sw2.add_tunnel(1, Box::new(t2));
        let src = sw1.attach_worker(PortNo(1));
        let dst = sw2.attach_worker(PortNo(1));
        // Table 3 remote transfer (sender).
        send_ctrl(
            &ch1,
            OfMessage::FlowMod(FlowMod::add(
                10,
                FlowMatch::any()
                    .in_port(PortNo(1))
                    .dl_src(w(10))
                    .dl_dst(w(20))
                    .ether_type(TYPHOON_ETHERTYPE),
                vec![Action::SetTunDst(2), Action::Output(PortNo::TUNNEL)],
            )),
        );
        // Table 3 remote transfer (receiver).
        send_ctrl(
            &ch2,
            OfMessage::FlowMod(FlowMod::add(
                10,
                FlowMatch::any()
                    .in_port(PortNo::TUNNEL)
                    .dl_src(w(10))
                    .dl_dst(w(20)),
                vec![Action::Output(PortNo(1))],
            )),
        );
        sw1.process_round();
        sw2.process_round();
        src.tx.push(data_frame(10, w(20), 0xcc)).unwrap();
        sw1.process_round(); // sender forwards into tunnel
        sw2.process_round(); // receiver drains tunnel
        let got = dst.rx.pop().unwrap().expect("crossed hosts");
        assert_eq!(got.payload[0], 0xcc);
    }

    #[test]
    fn packet_out_delivers_control_tuple_to_workers() {
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        let wp = sw.attach_worker(PortNo(3));
        // Table 3: controller→workers rule.
        send_ctrl(
            &ch,
            OfMessage::FlowMod(FlowMod::add(
                20,
                FlowMatch::any()
                    .in_port(PortNo::CONTROLLER)
                    .dl_dst(MacAddr::BROADCAST)
                    .ether_type(TYPHOON_ETHERTYPE),
                vec![Action::Output(PortNo(3))],
            )),
        );
        let ctrl_frame = Frame::typhoon(
            MacAddr::CONTROLLER,
            MacAddr::BROADCAST,
            Bytes::from_static(b"routing-update"),
        );
        send_ctrl(
            &ch,
            OfMessage::PacketOut {
                in_port: PortNo::CONTROLLER,
                frame: ctrl_frame.encode(),
            },
        );
        sw.process_round();
        let got = wp.rx.pop().unwrap().expect("control tuple delivered");
        assert_eq!(&got.payload[..], b"routing-update");
    }

    #[test]
    fn to_controller_action_produces_packet_in() {
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        let wp = sw.attach_worker(PortNo(1));
        send_ctrl(
            &ch,
            OfMessage::FlowMod(FlowMod::add(
                20,
                FlowMatch::any().dl_dst(MacAddr::CONTROLLER),
                vec![Action::ToController],
            )),
        );
        sw.process_round();
        let _ = drain_events(&ch); // discard the PortStatus add
        wp.tx
            .push(data_frame(10, MacAddr::CONTROLLER, 0xdd))
            .unwrap();
        sw.process_round();
        let events = drain_events(&ch);
        match &events[..] {
            [OfMessage::PacketIn {
                in_port,
                reason,
                frame,
            }] => {
                assert_eq!(*in_port, PortNo(1));
                assert_eq!(*reason, PacketInReason::Action);
                let decoded = Frame::decode(frame.clone()).unwrap();
                assert_eq!(decoded.payload[0], 0xdd);
            }
            other => panic!("expected one PacketIn, got {other:?}"),
        }
    }

    #[test]
    fn dead_worker_triggers_port_status_delete() {
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        let wp = sw.attach_worker(PortNo(4));
        let _ = drain_events(&ch);
        drop(wp); // worker dies
        sw.process_round();
        let events = drain_events(&ch);
        assert!(
            events.iter().any(|e| matches!(
                e,
                OfMessage::PortStatus {
                    reason: PortStatusReason::Delete,
                    port
                } if *port == PortNo(4)
            )),
            "got {events:?}"
        );
    }

    /// Installs the Table 3 remote-transfer rule on the sender switch.
    fn remote_rule(src: u32, dst: u32, peer_host: u32) -> OfMessage {
        OfMessage::FlowMod(FlowMod::add(
            10,
            FlowMatch::any()
                .in_port(PortNo(1))
                .dl_src(w(src))
                .dl_dst(w(dst))
                .ether_type(TYPHOON_ETHERTYPE),
            vec![Action::SetTunDst(peer_host), Action::Output(PortNo::TUNNEL)],
        ))
    }

    #[test]
    fn dead_tunnel_on_send_reports_tunnel_peer_delete() {
        use typhoon_net::{FaultInjector, FaultPlan, FaultSpec};
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        let (t1, _t2) = InMemoryTunnel::pair();
        // TX-only partition: receive stays clean, so only the send path in
        // `execute` can observe the fault.
        let (inj, _handle) = FaultInjector::wrap(
            Box::new(t1),
            FaultPlan::tx_only(1, FaultSpec::CLEAN.partitioned()),
        );
        sw.add_tunnel(2, Box::new(inj));
        let src = sw.attach_worker(PortNo(1));
        send_ctrl(&ch, remote_rule(10, 20, 2));
        sw.process_round();
        let _ = drain_events(&ch);
        assert!(sw.tunnel_alive(2));
        src.tx.push(data_frame(10, w(20), 1)).unwrap();
        sw.process_round();
        assert!(!sw.tunnel_alive(2), "dead tunnel removed");
        assert_eq!(sw.tunnel_down_count(), 1);
        let events = drain_events(&ch);
        assert!(
            events.iter().any(|e| matches!(
                e,
                OfMessage::PortStatus {
                    reason: PortStatusReason::Delete,
                    port
                } if *port == PortNo::tunnel_peer(2)
            )),
            "got {events:?}"
        );
    }

    #[test]
    fn partitioned_tunnel_on_recv_reports_tunnel_peer_delete() {
        use typhoon_net::{FaultInjector, FaultPlan, FaultSpec};
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        let (t1, _t2) = InMemoryTunnel::pair();
        let (inj, handle) = FaultInjector::wrap(Box::new(t1), FaultPlan::clean(1));
        sw.add_tunnel(2, Box::new(inj));
        let _ = drain_events(&ch);
        sw.process_round();
        assert!(sw.tunnel_alive(2), "healthy tunnel stays up");
        handle.set_rx(FaultSpec::CLEAN.partitioned());
        sw.process_round();
        assert!(!sw.tunnel_alive(2), "partitioned tunnel torn down");
        let events = drain_events(&ch);
        assert!(
            events.iter().any(|e| matches!(
                e,
                OfMessage::PortStatus {
                    reason: PortStatusReason::Delete,
                    port
                } if *port == PortNo::tunnel_peer(2)
            )),
            "got {events:?}"
        );
    }

    #[test]
    fn group_action_rewrites_destination_with_wrr() {
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        let src = sw.attach_worker(PortNo(1));
        let s1 = sw.attach_worker(PortNo(2));
        let s2 = sw.attach_worker(PortNo(3));
        use typhoon_openflow::{Bucket, GroupId, GroupMod};
        send_ctrl(
            &ch,
            OfMessage::GroupMod(GroupMod::add(
                GroupId(1),
                vec![
                    Bucket {
                        weight: 1,
                        actions: vec![Action::SetDlDst(w(21)), Action::Output(PortNo(2))],
                    },
                    Bucket {
                        weight: 1,
                        actions: vec![Action::SetDlDst(w(22)), Action::Output(PortNo(3))],
                    },
                ],
            )),
        );
        send_ctrl(
            &ch,
            OfMessage::FlowMod(FlowMod::add(
                10,
                FlowMatch::any().in_port(PortNo(1)),
                vec![Action::Group(GroupId(1))],
            )),
        );
        sw.process_round();
        for i in 0..4u8 {
            src.tx.push(data_frame(10, w(99), i)).unwrap();
        }
        sw.process_round();
        let mut to1 = Vec::new();
        let mut to2 = Vec::new();
        while let Ok(Some(f)) = s1.rx.pop() {
            assert_eq!(f.dst, w(21), "group rewrote destination");
            to1.push(f);
        }
        while let Ok(Some(f)) = s2.rx.pop() {
            assert_eq!(f.dst, w(22));
            to2.push(f);
        }
        assert_eq!(to1.len(), 2);
        assert_eq!(to2.len(), 2);
    }

    #[test]
    fn echo_features_and_barrier_replies() {
        let (sw, ch) = Switch::new(SwitchConfig::new(0x42));
        sw.attach_worker(PortNo(1));
        let _ = drain_events(&ch);
        send_ctrl(&ch, OfMessage::EchoRequest(5));
        send_ctrl(&ch, OfMessage::FeaturesRequest);
        send_ctrl(&ch, OfMessage::Barrier { xid: 9 });
        sw.process_round();
        let replies = drain_events(&ch);
        assert_eq!(replies[0], OfMessage::EchoReply(5));
        match &replies[1] {
            OfMessage::FeaturesReply { dpid, ports } => {
                assert_eq!(*dpid, DatapathId(0x42));
                assert_eq!(ports, &vec![PortNo(1)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(replies[2], OfMessage::BarrierReply { xid: 9 });
    }

    #[test]
    fn stats_requests_report_traffic() {
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        let wp1 = sw.attach_worker(PortNo(1));
        let wp2 = sw.attach_worker(PortNo(2));
        send_ctrl(&ch, local_rule(10, 1, 20, 2));
        sw.process_round();
        let _ = drain_events(&ch);
        for i in 0..5u8 {
            wp1.tx.push(data_frame(10, w(20), i)).unwrap();
        }
        sw.process_round();
        send_ctrl(&ch, OfMessage::FlowStatsRequest);
        send_ctrl(&ch, OfMessage::PortStatsRequest);
        sw.process_round();
        let replies = drain_events(&ch);
        match &replies[0] {
            OfMessage::FlowStatsReply(stats) => {
                assert_eq!(stats.len(), 1);
                assert_eq!(stats[0].packets, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &replies[1] {
            OfMessage::PortStatsReply(stats) => {
                let p1 = stats.iter().find(|s| s.port == PortNo(1)).unwrap();
                assert_eq!(p1.rx_packets, 5);
                let p2 = stats.iter().find(|s| s.port == PortNo(2)).unwrap();
                assert_eq!(p2.tx_packets, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        let _ = wp2;
    }

    #[test]
    fn flow_cache_hits_after_first_run_and_keeps_stats_exact() {
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        let wp1 = sw.attach_worker(PortNo(1));
        let wp2 = sw.attach_worker(PortNo(2));
        send_ctrl(&ch, local_rule(10, 1, 20, 2));
        sw.process_round();
        let _ = drain_events(&ch);
        // Round 1: cold cache — the run resolves via the table and is
        // installed. Round 2: the run must hit the cache.
        for round in 0..2u8 {
            for i in 0..5u8 {
                wp1.tx.push(data_frame(10, w(20), round * 10 + i)).unwrap();
            }
            sw.process_round();
        }
        let stats = sw.cache_stats();
        assert_eq!(stats.hits, 5, "second run hit the cache");
        assert_eq!(stats.misses, 5, "first run was the cold miss");
        // FlowStats must still be exact: the cached hits are flushed into
        // the table before the reply is built.
        send_ctrl(&ch, OfMessage::FlowStatsRequest);
        sw.process_round();
        let replies = drain_events(&ch);
        match &replies[0] {
            OfMessage::FlowStatsReply(stats) => assert_eq!(stats[0].packets, 10),
            other => panic!("unexpected {other:?}"),
        }
        for _ in 0..10 {
            assert!(wp2.rx.pop().unwrap().is_some(), "all frames forwarded");
        }
    }

    #[test]
    fn flow_mod_invalidates_the_cache() {
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        let wp1 = sw.attach_worker(PortNo(1));
        let wp2 = sw.attach_worker(PortNo(2));
        let wp3 = sw.attach_worker(PortNo(3));
        send_ctrl(&ch, local_rule(10, 1, 20, 2));
        sw.process_round();
        // Warm the cache toward port 2.
        wp1.tx.push(data_frame(10, w(20), 1)).unwrap();
        sw.process_round();
        assert!(wp2.rx.pop().unwrap().is_some());
        // Re-steer the flow to port 3 at higher priority; the cached
        // decision must not survive the rule change.
        send_ctrl(
            &ch,
            OfMessage::FlowMod(FlowMod::add(
                20,
                FlowMatch::any().in_port(PortNo(1)).dl_dst(w(20)),
                vec![Action::Output(PortNo(3))],
            )),
        );
        sw.process_round();
        wp1.tx.push(data_frame(10, w(20), 2)).unwrap();
        sw.process_round();
        assert!(wp2.rx.pop().unwrap().is_none(), "old path no longer used");
        assert!(wp3.rx.pop().unwrap().is_some(), "new rule took effect");
        assert!(sw.cache_stats().invalidations >= 1);
    }

    #[test]
    fn negative_cache_still_counts_per_frame_misses() {
        let (sw, _ch) = Switch::new(SwitchConfig::new(1));
        let wp1 = sw.attach_worker(PortNo(1));
        // Two separate rounds of the same unmatched flow: the second round
        // hits the negative entry yet must still count 3 misses.
        for round in 0..2u8 {
            for i in 0..3u8 {
                wp1.tx.push(data_frame(10, w(20), round * 3 + i)).unwrap();
            }
            sw.process_round();
        }
        assert_eq!(sw.miss_count(), 6);
        assert_eq!(sw.cache_stats().negative_hits, 3);
    }

    #[test]
    fn mixed_batch_splits_into_runs() {
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        let wp1 = sw.attach_worker(PortNo(1));
        let wp2 = sw.attach_worker(PortNo(2));
        let wp3 = sw.attach_worker(PortNo(3));
        send_ctrl(&ch, local_rule(10, 1, 20, 2));
        send_ctrl(&ch, local_rule(11, 1, 30, 3));
        sw.process_round();
        // Interleave two flows in one port batch: A A B B A.
        for (src, dst, n) in [
            (10, 20, 0),
            (10, 20, 1),
            (11, 30, 2),
            (11, 30, 3),
            (10, 20, 4),
        ] {
            wp1.tx
                .push(Frame::typhoon(w(src), w(dst), Bytes::from(vec![n; 8])))
                .unwrap();
        }
        sw.process_round();
        let mut a = 0;
        while wp2.rx.pop().unwrap().is_some() {
            a += 1;
        }
        let mut b = 0;
        while wp3.rx.pop().unwrap().is_some() {
            b += 1;
        }
        assert_eq!((a, b), (3, 2));
    }

    #[test]
    fn losing_the_term_zero_boot_channel_keeps_legacy_semantics() {
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        drop(ch); // standalone use: nobody ever connected a real leader
        sw.attach_worker(PortNo(1)); // event hits the dead boot channel
        sw.process_round();
        assert!(!sw.is_headless(), "term 0 never goes headless");
        assert_eq!(sw.headless_queue_len(), 0, "events dropped, not queued");
        assert_eq!(sw.controller_term(), 0);
    }

    #[test]
    fn losing_an_elected_leader_enters_headless_and_keeps_forwarding() {
        let (sw, boot) = Switch::new(SwitchConfig::new(1));
        drop(boot);
        let ch = sw.connect_controller(1).unwrap();
        let wp1 = sw.attach_worker(PortNo(1));
        let wp2 = sw.attach_worker(PortNo(2));
        send_ctrl(&ch, local_rule(10, 1, 20, 2));
        sw.process_round();
        let _ = drain_events(&ch);
        drop(ch); // the leader dies
        let _wp3 = sw.attach_worker(PortNo(3)); // next event finds the dead link
        assert!(sw.is_headless());
        assert_eq!(sw.controller_term(), 1);
        // Forwarding continues on the installed rule the whole window.
        wp1.tx.push(data_frame(10, w(20), 7)).unwrap();
        sw.process_round();
        assert!(wp2.rx.pop().unwrap().is_some(), "headless forwarding works");
        assert!(sw.headless_queue_len() >= 1, "event queued for replay");
    }

    #[test]
    fn stale_leader_reconnect_is_rejected() {
        let (sw, _boot) = Switch::new(SwitchConfig::new(1));
        let _ch5 = sw.connect_controller(5).unwrap();
        let err = sw.connect_controller(3).unwrap_err();
        assert_eq!(
            err,
            StaleLeader {
                offered: 3,
                current: 5
            }
        );
        assert_eq!(sw.controller_term(), 5, "stale term did not bind");
        // Equal term is a legitimate reconnect (same leader, new channel).
        assert!(sw.connect_controller(5).is_ok());
    }

    #[test]
    fn queued_events_replay_to_the_new_leader_in_order() {
        let (sw, boot) = Switch::new(SwitchConfig::new(1));
        drop(boot);
        let ch = sw.connect_controller(1).unwrap();
        drop(ch);
        sw.attach_worker(PortNo(1));
        sw.attach_worker(PortNo(2));
        assert!(sw.is_headless());
        assert_eq!(sw.headless_queue_len(), 2);
        let ch2 = sw.connect_controller(2).unwrap();
        assert!(!sw.is_headless());
        assert_eq!(sw.replayed_events(), 2);
        assert_eq!(sw.headless_queue_len(), 0);
        assert!(sw.headless_ms() < 60_000, "window was accounted and closed");
        let events = drain_events(&ch2);
        match &events[..] {
            [OfMessage::PortStatus {
                reason: PortStatusReason::Add,
                port: p1,
            }, OfMessage::PortStatus {
                reason: PortStatusReason::Add,
                port: p2,
            }] => {
                assert_eq!((*p1, *p2), (PortNo(1), PortNo(2)), "arrival order");
            }
            other => panic!("expected two replayed PortStatus adds, got {other:?}"),
        }
    }

    #[test]
    fn headless_suppresses_rule_expiry_until_reconnect() {
        let mut cfg = SwitchConfig::new(1);
        cfg.expire_interval = Duration::from_millis(0); // sweep every round
        let (sw, boot) = Switch::new(cfg);
        drop(boot);
        let ch = sw.connect_controller(1).unwrap();
        let wp1 = sw.attach_worker(PortNo(1));
        let wp2 = sw.attach_worker(PortNo(2));
        send_ctrl(
            &ch,
            OfMessage::FlowMod(
                FlowMod::add(
                    10,
                    FlowMatch::any().in_port(PortNo(1)).dl_dst(w(20)),
                    vec![Action::Output(PortNo(2))],
                )
                .with_idle_timeout(Duration::from_millis(1)),
            ),
        );
        sw.process_round();
        assert_eq!(sw.rule_count(), 1);
        drop(ch); // leader dies
        sw.attach_worker(PortNo(9)); // discover the dead link
        assert!(sw.is_headless());
        std::thread::sleep(Duration::from_millis(5));
        sw.process_round(); // would expire the idle rule if not headless
        assert_eq!(sw.rule_count(), 1, "expiry suppressed while headless");
        wp1.tx.push(data_frame(10, w(20), 1)).unwrap();
        sw.process_round();
        assert!(wp2.rx.pop().unwrap().is_some(), "idle rule still forwards");
        // A new leader connects: expiry resumes and reaps the idle rule.
        let _ch2 = sw.connect_controller(2).unwrap();
        assert!(!sw.is_headless());
        std::thread::sleep(Duration::from_millis(5));
        sw.process_round();
        assert_eq!(sw.rule_count(), 0, "expiry resumed after reconnect");
    }

    /// Satellite regression: a failover re-sync re-installs byte-identical
    /// rules; the megaflow cache must keep its hot entries — the hit
    /// ratio survives the failover — instead of being flushed by no-ops.
    #[test]
    fn identical_rule_reinstall_keeps_the_cache_warm() {
        let (sw, boot) = Switch::new(SwitchConfig::new(1));
        drop(boot);
        let ch = sw.connect_controller(1).unwrap();
        let wp1 = sw.attach_worker(PortNo(1));
        let wp2 = sw.attach_worker(PortNo(2));
        send_ctrl(&ch, local_rule(10, 1, 20, 2));
        sw.process_round();
        // Warm the cache: round one is the cold miss, round two hits.
        for round in 0..2u8 {
            wp1.tx.push(data_frame(10, w(20), round)).unwrap();
            sw.process_round();
        }
        let before = sw.cache_stats();
        assert_eq!(before.hits, 1);
        // The leader dies; the new leader re-syncs the identical rule set.
        drop(ch);
        sw.attach_worker(PortNo(9)); // discover the dead link → headless
        let ch2 = sw.connect_controller(2).unwrap();
        send_ctrl(&ch2, local_rule(10, 1, 20, 2));
        sw.process_round();
        let after = sw.cache_stats();
        assert_eq!(
            after.invalidations, before.invalidations,
            "no-op re-install must not flush the cache"
        );
        // The warm entry keeps hitting across the failover.
        wp1.tx.push(data_frame(10, w(20), 9)).unwrap();
        sw.process_round();
        assert_eq!(sw.cache_stats().hits, before.hits + 1);
        assert!(sw.cache_stats().hit_ratio() > 0.5);
        while let Ok(Some(_)) = wp2.rx.pop() {}
    }

    #[test]
    fn headless_queue_is_bounded_and_sheds_oldest() {
        let (sw, boot) = Switch::new(SwitchConfig::new(1));
        drop(boot);
        let ch = sw.connect_controller(1).unwrap();
        drop(ch);
        sw.attach_worker(PortNo(1)); // → headless
        assert!(sw.is_headless());
        for i in 0..(HEADLESS_QUEUE_CAP as u32 + 10) {
            sw.send_event(OfMessage::EchoRequest(u64::from(i)));
        }
        assert_eq!(sw.headless_queue_len(), HEADLESS_QUEUE_CAP);
        assert!(sw.headless_dropped() >= 10, "oldest events shed");
    }

    #[test]
    fn spawned_datapath_forwards_in_background() {
        let (sw, ch) = Switch::new(SwitchConfig::new(1));
        let wp1 = sw.attach_worker(PortNo(1));
        let wp2 = sw.attach_worker(PortNo(2));
        send_ctrl(&ch, local_rule(10, 1, 20, 2));
        let handle = sw.spawn();
        wp1.tx.push(data_frame(10, w(20), 0x55)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let got = loop {
            if let Some(f) = wp2.rx.pop().unwrap() {
                break f;
            }
            assert!(Instant::now() < deadline, "frame never delivered");
            std::thread::sleep(Duration::from_micros(100));
        };
        assert_eq!(got.payload[0], 0x55);
        handle.stop();
    }
}
