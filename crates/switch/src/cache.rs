//! A megaflow-style flow cache for the datapath hot loop.
//!
//! The paper's prototype ran on an OVS kernel datapath, where the first
//! packet of a flow consults the full (priority-ordered, wildcarded) flow
//! table and the result is installed in an exact-match cache that every
//! subsequent packet hits without touching the table (§6.1, "negligible …
//! overhead in OVS"). This module reproduces that split: the datapath
//! resolves one `(in_port, dl_src, dl_dst, ether_type)` key per *batch run*
//! against a fixed-size, lock-free cache, and only a cache miss takes the
//! `table` mutex.
//!
//! ## Concurrency
//!
//! Slots are seqlock-protected sets of `AtomicU64`s, so the structure is
//! lock-free and safe (no `unsafe` anywhere) even though in steady state a
//! single datapath thread is both the only writer and the dominant reader.
//! The seqlock keeps concurrent manual `process_frame` callers (tests,
//! `PacketOut`) from ever observing a torn entry: a reader validates the
//! slot sequence number before and after reading, and retries as a miss on
//! mismatch.
//!
//! ## Invalidation
//!
//! A global generation counter is stamped into each slot at insert time.
//! Any table change that can alter match results — `FlowMod` add, modify or
//! delete, a rule eviction by timeout, tunnel registration or teardown —
//! bumps the generation, which logically empties the whole cache at the
//! cost of one atomic increment (the OVS "revalidate everything" big
//! hammer, which is the right trade at Typhoon's rule-change rates).
//!
//! ## Statistics exactness
//!
//! Per-rule packet/byte counters must stay exact (`FlowStatsReply` feeds
//! tests and the debugger), so cache hits accumulate into per-slot pending
//! counters that are flushed into the [`FlowTable`](crate::table::FlowTable)
//! under its lock before any observer can look: on `FlowStatsRequest`, on
//! `FlowMod` application, on the periodic expiry sweep, and when an insert
//! overwrites an occupied slot.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::{Duration, Instant};
use typhoon_net::MacAddr;
use typhoon_openflow::{Action, FrameMeta, GroupId, PortNo};

/// Slot count; power of two so indexing is a mask.
const SLOTS: usize = 1024;
/// Longest action list a slot can hold; longer lists are simply not cached.
const MAX_ACTIONS: usize = 8;
/// `nact` sentinel for a negative (known-miss) entry.
const NEGATIVE: u64 = u64::MAX;
/// "No timeout" sentinel for the packed nanosecond fields.
const NO_DEADLINE: u64 = u64::MAX;

const TAG_OUTPUT: u64 = 0;
const TAG_SET_TUN_DST: u64 = 1;
const TAG_SET_DL_DST: u64 = 2;
const TAG_GROUP: u64 = 3;
const TAG_TO_CONTROLLER: u64 = 4;

fn pack_mac(m: MacAddr) -> u64 {
    let b = m.0;
    (b[0] as u64) << 40
        | (b[1] as u64) << 32
        | (b[2] as u64) << 24
        | (b[3] as u64) << 16
        | (b[4] as u64) << 8
        | b[5] as u64
}

fn unpack_mac(v: u64) -> MacAddr {
    MacAddr([
        (v >> 40) as u8,
        (v >> 32) as u8,
        (v >> 24) as u8,
        (v >> 16) as u8,
        (v >> 8) as u8,
        v as u8,
    ])
}

/// Packs one action into `tag << 56 | operand`. MACs are 48-bit and port,
/// group and host ids are 32-bit, so every operand fits the low 56 bits.
fn pack_action(a: &Action) -> u64 {
    match *a {
        Action::Output(p) => TAG_OUTPUT << 56 | p.0 as u64,
        Action::SetTunDst(host) => TAG_SET_TUN_DST << 56 | host as u64,
        Action::SetDlDst(mac) => TAG_SET_DL_DST << 56 | pack_mac(mac),
        Action::Group(g) => TAG_GROUP << 56 | g.0 as u64,
        Action::ToController => TAG_TO_CONTROLLER << 56,
    }
}

fn unpack_action(v: u64) -> Action {
    let operand = v & ((1 << 56) - 1);
    match v >> 56 {
        TAG_OUTPUT => Action::Output(PortNo(operand as u32)),
        TAG_SET_TUN_DST => Action::SetTunDst(operand as u32),
        TAG_SET_DL_DST => Action::SetDlDst(unpack_mac(operand)),
        TAG_GROUP => Action::Group(GroupId(operand as u32)),
        _ => Action::ToController,
    }
}

fn key_of(meta: &FrameMeta) -> (u64, u64, u64) {
    (
        (meta.in_port.0 as u64) << 16 | meta.ether_type as u64,
        pack_mac(meta.dl_src),
        pack_mac(meta.dl_dst),
    )
}

fn meta_of(k0: u64, k1: u64, k2: u64) -> FrameMeta {
    FrameMeta {
        in_port: PortNo((k0 >> 16) as u32),
        ether_type: k0 as u16,
        dl_src: unpack_mac(k1),
        dl_dst: unpack_mac(k2),
    }
}

fn slot_index(k0: u64, k1: u64, k2: u64) -> usize {
    // splitmix64-style finalizer over the folded key.
    let mut h = k0 ^ k1.rotate_left(21) ^ k2.rotate_left(42);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h as usize & (SLOTS - 1)
}

/// One direct-mapped cache slot. `seq` is the seqlock word: 0 = never
/// written, odd = write in progress, even ≥ 2 = valid. The pending hit
/// counters and `last_hit` sit outside the seqlock on purpose — they are
/// monotonic accumulators whose worst-case failure under a (cross-thread)
/// overwrite race is a slightly misattributed statistic, never a torn read.
struct Slot {
    seq: AtomicU64,
    k0: AtomicU64,
    k1: AtomicU64,
    k2: AtomicU64,
    generation: AtomicU64,
    /// Action count, or [`NEGATIVE`] for a cached table miss.
    nact: AtomicU64,
    actions: [AtomicU64; MAX_ACTIONS],
    /// Idle timeout in nanos ([`NO_DEADLINE`] = none).
    idle_nanos: AtomicU64,
    /// Absolute hard deadline in nanos since the cache epoch.
    hard_deadline: AtomicU64,
    /// Last hit, nanos since the cache epoch (refreshed on every hit).
    last_hit: AtomicU64,
    pending_packets: AtomicU64,
    pending_bytes: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            k0: AtomicU64::new(0),
            k1: AtomicU64::new(0),
            k2: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            nact: AtomicU64::new(0),
            actions: Default::default(),
            idle_nanos: AtomicU64::new(0),
            hard_deadline: AtomicU64::new(0),
            last_hit: AtomicU64::new(0),
            pending_packets: AtomicU64::new(0),
            pending_bytes: AtomicU64::new(0),
        }
    }
}

/// The outcome of a cache probe.
#[derive(Debug, PartialEq, Eq)]
pub enum Probe {
    /// Valid entry: execute these actions.
    Hit(Vec<Action>),
    /// Valid negative entry: the table is known to miss this key.
    NegativeHit,
    /// No usable entry; consult the flow table.
    Miss,
}

/// Pending statistics displaced from a slot (by an overwrite or a drain)
/// that must be credited back to the flow table.
#[derive(Debug)]
pub struct Displaced {
    /// The flow key the hits belong to.
    pub meta: FrameMeta,
    /// Hit packets not yet reflected in the table.
    pub packets: u64,
    /// Hit bytes not yet reflected in the table.
    pub bytes: u64,
}

/// Monotonic cache counters (observability: `switch.cache.*`).
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    negative_hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    invalidations: AtomicU64,
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Frames resolved by a positive cache entry.
    pub hits: u64,
    /// Frames resolved by a negative (known-miss) entry.
    pub negative_hits: u64,
    /// Frames that had to consult the flow table.
    pub misses: u64,
    /// Entries written (positive or negative).
    pub insertions: u64,
    /// Generation bumps (whole-cache invalidations).
    pub invalidations: u64,
}

impl CacheStats {
    /// Fraction of frames resolved without the table lock (positive and
    /// negative hits both avoid it). 1.0 on an idle cache.
    pub fn hit_ratio(&self) -> f64 {
        let resolved = self.hits + self.negative_hits;
        let total = resolved + self.misses;
        if total == 0 {
            1.0
        } else {
            resolved as f64 / total as f64
        }
    }
}

/// The lock-free megaflow cache. See the module docs for the protocol.
pub struct FlowCache {
    slots: Box<[Slot]>,
    generation: AtomicU64,
    epoch: Instant,
    counters: Counters,
}

impl FlowCache {
    /// An empty cache whose expiry clock starts now.
    pub fn new() -> Self {
        FlowCache {
            slots: (0..SLOTS).map(|_| Slot::new()).collect(),
            // Start at 1 so a zeroed slot generation never matches.
            generation: AtomicU64::new(1),
            epoch: Instant::now(),
            counters: Counters::default(),
        }
    }

    fn nanos(&self, now: Instant) -> u64 {
        now.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Logically empties the cache (rule or topology change).
    pub fn invalidate_all(&self) {
        self.generation.fetch_add(1, Ordering::Release);
        self.counters.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            negative_hits: self.counters.negative_hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            invalidations: self.counters.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Looks up `meta` for a run of `packets` frames totalling `bytes`.
    /// A positive hit credits the slot's pending counters (flushed to the
    /// table later); a negative hit and a miss leave statistics to the
    /// caller. Expired and stale-generation entries read as misses.
    pub fn probe(&self, meta: &FrameMeta, packets: u64, bytes: u64, now: Instant) -> Probe {
        let (k0, k1, k2) = key_of(meta);
        let slot = &self.slots[slot_index(k0, k1, k2)];
        let now_n = self.nanos(now);

        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 & 1 != 0 {
            return self.miss(packets);
        }
        let sk0 = slot.k0.load(Ordering::Relaxed);
        let sk1 = slot.k1.load(Ordering::Relaxed);
        let sk2 = slot.k2.load(Ordering::Relaxed);
        let generation = slot.generation.load(Ordering::Relaxed);
        let nact = slot.nact.load(Ordering::Relaxed);
        let idle = slot.idle_nanos.load(Ordering::Relaxed);
        let hard = slot.hard_deadline.load(Ordering::Relaxed);
        let mut packed = [0u64; MAX_ACTIONS];
        for (i, a) in slot.actions.iter().enumerate() {
            packed[i] = a.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != s1 {
            return self.miss(packets);
        }

        if (sk0, sk1, sk2) != (k0, k1, k2) || generation != self.generation.load(Ordering::Acquire)
        {
            return self.miss(packets);
        }
        if nact == NEGATIVE {
            self.counters
                .negative_hits
                .fetch_add(packets, Ordering::Relaxed);
            return Probe::NegativeHit;
        }
        // Expiry mirrors `FlowEntry::is_expired`: the idle clock restarts on
        // every hit, the hard deadline never moves.
        let last = slot.last_hit.load(Ordering::Relaxed);
        if now_n >= hard || (idle != NO_DEADLINE && now_n.saturating_sub(last) >= idle) {
            return self.miss(packets);
        }
        slot.last_hit.store(now_n, Ordering::Relaxed);
        slot.pending_packets.fetch_add(packets, Ordering::Relaxed);
        slot.pending_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.counters.hits.fetch_add(packets, Ordering::Relaxed);
        Probe::Hit(
            packed[..nact as usize]
                .iter()
                .map(|&v| unpack_action(v))
                .collect(),
        )
    }

    fn miss(&self, packets: u64) -> Probe {
        self.counters.misses.fetch_add(packets, Ordering::Relaxed);
        Probe::Miss
    }

    /// Installs a positive entry. Returns pending statistics displaced from
    /// the slot, which the caller must credit to the flow table (it already
    /// holds the table lock on this path). Uncacheably long action lists
    /// are ignored.
    pub fn insert(
        &self,
        meta: &FrameMeta,
        actions: &[Action],
        idle_timeout: Duration,
        hard_remaining: Option<Duration>,
        now: Instant,
    ) -> Option<Displaced> {
        if actions.len() > MAX_ACTIONS {
            return None;
        }
        let now_n = self.nanos(now);
        let idle = if idle_timeout.is_zero() {
            NO_DEADLINE
        } else {
            idle_timeout.as_nanos() as u64
        };
        let hard = match hard_remaining {
            Some(d) => now_n.saturating_add(d.as_nanos() as u64),
            None => NO_DEADLINE,
        };
        self.write_slot(meta, now_n, |slot| {
            slot.nact.store(actions.len() as u64, Ordering::Relaxed);
            for (a, cell) in actions.iter().zip(slot.actions.iter()) {
                cell.store(pack_action(a), Ordering::Relaxed);
            }
            slot.idle_nanos.store(idle, Ordering::Relaxed);
            slot.hard_deadline.store(hard, Ordering::Relaxed);
        })
    }

    /// Installs a negative entry: the table currently misses this key, and
    /// will keep missing it until a rule change bumps the generation.
    pub fn insert_negative(&self, meta: &FrameMeta, now: Instant) -> Option<Displaced> {
        let now_n = self.nanos(now);
        self.write_slot(meta, now_n, |slot| {
            slot.nact.store(NEGATIVE, Ordering::Relaxed);
            slot.idle_nanos.store(NO_DEADLINE, Ordering::Relaxed);
            slot.hard_deadline.store(NO_DEADLINE, Ordering::Relaxed);
        })
    }

    /// Seqlock write protocol shared by both insert flavours: drain the
    /// displaced occupant's pending hits, mark the slot as mid-write, store
    /// the new key/payload, then publish with an even sequence.
    fn write_slot(
        &self,
        meta: &FrameMeta,
        now_n: u64,
        fill: impl FnOnce(&Slot),
    ) -> Option<Displaced> {
        let (k0, k1, k2) = key_of(meta);
        let slot = &self.slots[slot_index(k0, k1, k2)];
        let displaced = Self::take_pending(slot);
        let s = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(s.wrapping_add(1) | 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.k0.store(k0, Ordering::Relaxed);
        slot.k1.store(k1, Ordering::Relaxed);
        slot.k2.store(k2, Ordering::Relaxed);
        slot.generation
            .store(self.generation.load(Ordering::Acquire), Ordering::Relaxed);
        slot.last_hit.store(now_n, Ordering::Relaxed);
        fill(slot);
        slot.seq
            .store((s.wrapping_add(1) | 1).wrapping_add(1), Ordering::Release);
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        displaced
    }

    /// Swaps out a slot's pending hit counters, if any.
    fn take_pending(slot: &Slot) -> Option<Displaced> {
        if slot.pending_packets.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let packets = slot.pending_packets.swap(0, Ordering::Relaxed);
        let bytes = slot.pending_bytes.swap(0, Ordering::Relaxed);
        if packets == 0 {
            return None;
        }
        Some(Displaced {
            meta: meta_of(
                slot.k0.load(Ordering::Relaxed),
                slot.k1.load(Ordering::Relaxed),
                slot.k2.load(Ordering::Relaxed),
            ),
            packets,
            bytes,
        })
    }

    /// Flushes every slot's pending hit counters through `credit`. Called
    /// with the table lock held before any statistics observer runs, so
    /// per-rule packet/byte counts stay exact despite the cache.
    pub fn drain_pending(&self, mut credit: impl FnMut(&FrameMeta, u64, u64)) {
        for slot in self.slots.iter() {
            if let Some(d) = Self::take_pending(slot) {
                credit(&d.meta, d.packets, d.bytes);
            }
        }
    }
}

impl Default for FlowCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FlowCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FlowCache({:?})", self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_net::TYPHOON_ETHERTYPE;
    use typhoon_tuple::tuple::TaskId;

    fn meta(src: u32, dst: u32) -> FrameMeta {
        FrameMeta {
            in_port: PortNo(1),
            dl_src: MacAddr::worker(1, TaskId(src)),
            dl_dst: MacAddr::worker(1, TaskId(dst)),
            ether_type: TYPHOON_ETHERTYPE,
        }
    }

    #[test]
    fn action_packing_roundtrips() {
        let actions = [
            Action::Output(PortNo(7)),
            Action::Output(PortNo::TUNNEL),
            Action::Output(PortNo::CONTROLLER),
            Action::SetTunDst(0xdead_beef),
            Action::SetDlDst(MacAddr([1, 2, 3, 4, 5, 6])),
            Action::Group(GroupId(42)),
            Action::ToController,
        ];
        for a in &actions {
            assert_eq!(unpack_action(pack_action(a)), *a);
        }
    }

    #[test]
    fn meta_packing_roundtrips() {
        let m = FrameMeta {
            in_port: PortNo(0xffff),
            dl_src: MacAddr([0xaa; 6]),
            dl_dst: MacAddr([0x55; 6]),
            ether_type: 0x88b5,
        };
        let (k0, k1, k2) = key_of(&m);
        assert_eq!(meta_of(k0, k1, k2), m);
    }

    #[test]
    fn miss_insert_hit_cycle() {
        let c = FlowCache::new();
        let m = meta(1, 2);
        let now = Instant::now();
        assert_eq!(c.probe(&m, 1, 64, now), Probe::Miss);
        c.insert(&m, &[Action::Output(PortNo(2))], Duration::ZERO, None, now);
        match c.probe(&m, 3, 192, now) {
            Probe::Hit(a) => assert_eq!(a, vec![Action::Output(PortNo(2))]),
            other => panic!("expected hit, got {other:?}"),
        }
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (3, 1, 1));
        assert!(stats.hit_ratio() > 0.74 && stats.hit_ratio() < 0.76);
    }

    #[test]
    fn negative_entry_caches_a_table_miss() {
        let c = FlowCache::new();
        let m = meta(3, 4);
        let now = Instant::now();
        c.insert_negative(&m, now);
        assert_eq!(c.probe(&m, 2, 10, now), Probe::NegativeHit);
        assert_eq!(c.stats().negative_hits, 2);
    }

    #[test]
    fn generation_bump_invalidates_everything() {
        let c = FlowCache::new();
        let m = meta(1, 2);
        let now = Instant::now();
        c.insert(&m, &[Action::ToController], Duration::ZERO, None, now);
        assert!(matches!(c.probe(&m, 1, 1, now), Probe::Hit(_)));
        c.invalidate_all();
        assert_eq!(c.probe(&m, 1, 1, now), Probe::Miss);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn idle_timeout_expires_without_traffic_and_refreshes_with_it() {
        let c = FlowCache::new();
        let m = meta(5, 6);
        let t0 = Instant::now();
        c.insert(&m, &[], Duration::from_millis(100), None, t0);
        // Hits every 60ms keep it alive past the 100ms idle window…
        for i in 1..=3 {
            assert!(matches!(
                c.probe(&m, 1, 1, t0 + Duration::from_millis(60 * i)),
                Probe::Hit(_)
            ));
        }
        // …then 100ms of silence kills it.
        assert_eq!(
            c.probe(&m, 1, 1, t0 + Duration::from_millis(180 + 105)),
            Probe::Miss
        );
    }

    #[test]
    fn hard_deadline_ignores_traffic() {
        let c = FlowCache::new();
        let m = meta(7, 8);
        let t0 = Instant::now();
        c.insert(&m, &[], Duration::ZERO, Some(Duration::from_millis(50)), t0);
        assert!(matches!(
            c.probe(&m, 1, 1, t0 + Duration::from_millis(49)),
            Probe::Hit(_)
        ));
        assert_eq!(
            c.probe(&m, 1, 1, t0 + Duration::from_millis(51)),
            Probe::Miss
        );
    }

    #[test]
    fn drain_pending_credits_accumulated_hits() {
        let c = FlowCache::new();
        let m = meta(9, 10);
        let now = Instant::now();
        c.insert(&m, &[Action::Output(PortNo(2))], Duration::ZERO, None, now);
        c.probe(&m, 4, 400, now);
        c.probe(&m, 1, 100, now);
        let mut drained = Vec::new();
        c.drain_pending(|meta, p, b| drained.push((*meta, p, b)));
        assert_eq!(drained, vec![(m, 5, 500)]);
        // A second drain finds nothing.
        c.drain_pending(|_, _, _| panic!("already drained"));
    }

    #[test]
    fn overwrite_returns_displaced_pending_stats() {
        let c = FlowCache::new();
        let m = meta(11, 12);
        let now = Instant::now();
        c.insert(&m, &[Action::Output(PortNo(2))], Duration::ZERO, None, now);
        c.probe(&m, 7, 70, now);
        // Re-inserting the same key (e.g. after a generation bump) must not
        // lose the hits accumulated against the old incarnation.
        let displaced = c
            .insert(&m, &[Action::Output(PortNo(3))], Duration::ZERO, None, now)
            .expect("pending stats displaced");
        assert_eq!(displaced.meta, m);
        assert_eq!((displaced.packets, displaced.bytes), (7, 70));
    }

    #[test]
    fn oversized_action_lists_are_not_cached() {
        let c = FlowCache::new();
        let m = meta(13, 14);
        let now = Instant::now();
        let many: Vec<Action> = (0..9).map(|p| Action::Output(PortNo(p))).collect();
        c.insert(&m, &many, Duration::ZERO, None, now);
        assert_eq!(c.probe(&m, 1, 1, now), Probe::Miss);
    }
}
