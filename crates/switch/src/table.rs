//! The flow table.

use std::time::{Duration, Instant};
use typhoon_openflow::{Action, FlowMatch, FlowMod, FlowModCommand, FlowStats, FrameMeta};

/// One installed rule plus its counters and timeout bookkeeping.
#[derive(Debug, Clone)]
pub struct FlowEntry {
    /// Rule priority (higher wins).
    pub priority: u16,
    /// The match.
    pub matcher: FlowMatch,
    /// Actions applied on hit.
    pub actions: Vec<Action>,
    /// Evict after this long without a hit (ZERO = never).
    pub idle_timeout: Duration,
    /// Evict after this long since installation (ZERO = never).
    pub hard_timeout: Duration,
    /// Controller-chosen correlation value.
    pub cookie: u64,
    /// Frames that hit this rule.
    pub packets: u64,
    /// Bytes that hit this rule.
    pub bytes: u64,
    installed: Instant,
    last_hit: Instant,
}

impl FlowEntry {
    fn from_mod(fm: &FlowMod, now: Instant) -> Self {
        FlowEntry {
            priority: fm.priority,
            matcher: fm.matcher,
            actions: fm.actions.clone(),
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            cookie: fm.cookie,
            packets: 0,
            bytes: 0,
            installed: now,
            last_hit: now,
        }
    }

    fn is_expired(&self, now: Instant) -> bool {
        (!self.idle_timeout.is_zero()
            && now.saturating_duration_since(self.last_hit) >= self.idle_timeout)
            || (!self.hard_timeout.is_zero()
                && now.saturating_duration_since(self.installed) >= self.hard_timeout)
    }
}

/// A matched rule's actions plus what the flow cache needs to mirror the
/// rule's expiry behaviour (see [`crate::cache::FlowCache`]).
#[derive(Debug)]
pub struct CacheableFlow {
    /// The matched actions.
    pub actions: Vec<Action>,
    /// The rule's idle timeout (ZERO = never idle-expires).
    pub idle_timeout: Duration,
    /// Time left until the hard timeout fires, or `None` when there is none.
    pub hard_remaining: Option<Duration>,
}

/// A priority-ordered flow table.
#[derive(Debug, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    /// Frames that matched no rule (dropped), for observability. With the
    /// flow cache in front, this counts only misses that reached the table;
    /// [`crate::Switch::miss_count`] is the per-frame total.
    pub misses: u64,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when applying `fm` would actually change table behaviour.
    ///
    /// The failover re-sync path re-installs every rule a new leader
    /// recovered from the coordinator; most are byte-identical to what the
    /// switch already holds, and flushing the megaflow cache for each
    /// would destroy the hot-path hit ratio for nothing. A `FlowMod` is a
    /// no-op when:
    ///
    /// * `Add` — an unexpired entry with the identical match, priority,
    ///   actions, cookie and (both zero) timeouts already exists. Rules
    ///   with nonzero timeouts are never no-ops: a re-add legitimately
    ///   refreshes their idle/hard clocks.
    /// * `Modify` — every subsumed entry already carries the new actions.
    /// * `Delete` — nothing is subsumed (respecting strict-priority).
    pub fn would_change(&self, fm: &FlowMod, now: Instant) -> bool {
        match fm.command {
            FlowModCommand::Add => {
                let identical = self.entries.iter().any(|e| {
                    !e.is_expired(now)
                        && e.matcher == fm.matcher
                        && e.priority == fm.priority
                        && e.actions == fm.actions
                        && e.cookie == fm.cookie
                        && e.idle_timeout.is_zero()
                        && e.hard_timeout.is_zero()
                        && fm.idle_timeout.is_zero()
                        && fm.hard_timeout.is_zero()
                });
                !identical
            }
            FlowModCommand::Modify => self
                .entries
                .iter()
                .any(|e| fm.matcher.subsumes(&e.matcher) && e.actions != fm.actions),
            FlowModCommand::Delete => self.entries.iter().any(|e| {
                fm.matcher.subsumes(&e.matcher) && (fm.priority == 0 || fm.priority == e.priority)
            }),
        }
    }

    /// Applies a `FlowMod` (§3.4). `Add` replaces a rule with an identical
    /// match and priority; `Modify` rewrites actions of every rule the match
    /// subsumes; `Delete` removes every rule the match subsumes.
    pub fn apply(&mut self, fm: &FlowMod, now: Instant) {
        match fm.command {
            FlowModCommand::Add => {
                if let Some(existing) = self
                    .entries
                    .iter_mut()
                    .find(|e| e.matcher == fm.matcher && e.priority == fm.priority)
                {
                    *existing = FlowEntry::from_mod(fm, now);
                } else {
                    self.entries.push(FlowEntry::from_mod(fm, now));
                    // Keep highest (priority, specificity) first so lookup
                    // is a linear scan with first-hit-wins.
                    self.entries.sort_by(|a, b| {
                        (b.priority, b.matcher.specificity())
                            .cmp(&(a.priority, a.matcher.specificity()))
                    });
                }
            }
            FlowModCommand::Modify => {
                for e in self
                    .entries
                    .iter_mut()
                    .filter(|e| fm.matcher.subsumes(&e.matcher))
                {
                    e.actions = fm.actions.clone();
                }
            }
            FlowModCommand::Delete => {
                // Priority 0 deletes by subsumption alone; a non-zero
                // priority makes the delete strict (OFPFC_DELETE_STRICT),
                // which lets the live debugger remove its mirror rules
                // without touching the identically-matched base rules.
                self.entries.retain(|e| {
                    !(fm.matcher.subsumes(&e.matcher)
                        && (fm.priority == 0 || fm.priority == e.priority))
                });
            }
        }
    }

    /// Looks up the best rule for a frame, updating hit counters. Returns
    /// a clone of the matched actions, or `None` (a table miss: the frame
    /// is dropped and counted, OVS's default behaviour with no table-miss
    /// rule installed).
    pub fn lookup(
        &mut self,
        meta: &FrameMeta,
        frame_len: usize,
        now: Instant,
    ) -> Option<Vec<Action>> {
        match self
            .entries
            .iter_mut()
            .find(|e| !e.is_expired(now) && e.matcher.matches(meta))
        {
            Some(e) => {
                e.packets += 1;
                e.bytes += frame_len as u64;
                e.last_hit = now;
                Some(e.actions.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// [`FlowTable::lookup`] for a whole same-key batch run: credits
    /// `packets`/`bytes` in one step and returns the matched actions along
    /// with the timeout data the flow cache mirrors. A miss counts every
    /// frame of the run, preserving per-frame miss accounting.
    pub fn lookup_credit(
        &mut self,
        meta: &FrameMeta,
        packets: u64,
        bytes: u64,
        now: Instant,
    ) -> Option<CacheableFlow> {
        match self
            .entries
            .iter_mut()
            .find(|e| !e.is_expired(now) && e.matcher.matches(meta))
        {
            Some(e) => {
                e.packets += packets;
                e.bytes += bytes;
                e.last_hit = now;
                Some(CacheableFlow {
                    actions: e.actions.clone(),
                    idle_timeout: e.idle_timeout,
                    hard_remaining: if e.hard_timeout.is_zero() {
                        None
                    } else {
                        Some(
                            e.hard_timeout
                                .saturating_sub(now.saturating_duration_since(e.installed)),
                        )
                    },
                })
            }
            None => {
                self.misses += packets;
                None
            }
        }
    }

    /// Credits hit statistics accumulated in the flow cache back to the
    /// matching rule. The hits are proof of traffic, so this also refreshes
    /// the idle clock — without it, a rule whose frames all hit the cache
    /// would idle-expire under constant load. Skips the expiry check:
    /// the credited hits happened before any sweep that could run next.
    pub fn credit(&mut self, meta: &FrameMeta, packets: u64, bytes: u64, now: Instant) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.matcher.matches(meta)) {
            e.packets += packets;
            e.bytes += bytes;
            e.last_hit = now;
        }
    }

    /// Shifts every entry's expiry clocks forward by `delta`, so a window
    /// during which expiry was suspended (the switch ran headless between
    /// controller leaders) does not count against idle or hard timeouts.
    pub fn shift_clocks(&mut self, delta: Duration) {
        for e in &mut self.entries {
            e.installed += delta;
            e.last_hit += delta;
        }
    }

    /// Removes expired rules, returning how many were evicted. The §3.5
    /// stateless-removal procedure relies on this: "the SDN flow rules
    /// interconnecting the worker and its predecessors are automatically
    /// removed due to idle timeout of the rule entries".
    pub fn expire(&mut self, now: Instant) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !e.is_expired(now));
        before - self.entries.len()
    }

    /// Per-rule statistics (the `FlowStatsReply` payload).
    pub fn stats(&self) -> Vec<FlowStats> {
        self.entries
            .iter()
            .map(|e| FlowStats {
                matcher: e.matcher,
                priority: e.priority,
                cookie: e.cookie,
                packets: e.packets,
                bytes: e.bytes,
            })
            .collect()
    }

    /// Read-only view of the entries (rule dumps, tests).
    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_net::{MacAddr, TYPHOON_ETHERTYPE};
    use typhoon_openflow::PortNo;
    use typhoon_tuple::tuple::TaskId;

    fn meta(in_port: u32, dst: MacAddr) -> FrameMeta {
        FrameMeta {
            in_port: PortNo(in_port),
            dl_src: MacAddr::worker(1, TaskId(1)),
            dl_dst: dst,
            ether_type: TYPHOON_ETHERTYPE,
        }
    }

    fn w(task: u32) -> MacAddr {
        MacAddr::worker(1, TaskId(task))
    }

    #[test]
    fn exact_rule_beats_wildcard_of_lower_priority() {
        let mut t = FlowTable::new();
        let now = Instant::now();
        t.apply(
            &FlowMod::add(1, FlowMatch::any(), vec![Action::Output(PortNo(99))]),
            now,
        );
        t.apply(
            &FlowMod::add(
                10,
                FlowMatch::any().dl_dst(w(2)),
                vec![Action::Output(PortNo(2))],
            ),
            now,
        );
        let actions = t.lookup(&meta(1, w(2)), 64, now).unwrap();
        assert_eq!(actions, vec![Action::Output(PortNo(2))]);
        let actions = t.lookup(&meta(1, w(3)), 64, now).unwrap();
        assert_eq!(actions, vec![Action::Output(PortNo(99))]);
    }

    #[test]
    fn equal_priority_tie_breaks_on_specificity() {
        let mut t = FlowTable::new();
        let now = Instant::now();
        t.apply(
            &FlowMod::add(5, FlowMatch::any().ether_type(TYPHOON_ETHERTYPE), vec![]),
            now,
        );
        t.apply(
            &FlowMod::add(
                5,
                FlowMatch::any()
                    .ether_type(TYPHOON_ETHERTYPE)
                    .dl_dst(w(7))
                    .in_port(PortNo(1)),
                vec![Action::Output(PortNo(7))],
            ),
            now,
        );
        let actions = t.lookup(&meta(1, w(7)), 10, now).unwrap();
        assert_eq!(actions, vec![Action::Output(PortNo(7))]);
    }

    #[test]
    fn miss_counts_and_drops() {
        let mut t = FlowTable::new();
        let now = Instant::now();
        assert!(t.lookup(&meta(1, w(1)), 10, now).is_none());
        assert_eq!(t.misses, 1);
    }

    #[test]
    fn add_with_same_match_and_priority_replaces() {
        let mut t = FlowTable::new();
        let now = Instant::now();
        let m = FlowMatch::any().dl_dst(w(1));
        t.apply(&FlowMod::add(5, m, vec![Action::Output(PortNo(1))]), now);
        t.apply(&FlowMod::add(5, m, vec![Action::Output(PortNo(2))]), now);
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.lookup(&meta(0, w(1)), 1, now).unwrap(),
            vec![Action::Output(PortNo(2))]
        );
    }

    #[test]
    fn delete_subsumes_wildcards() {
        let mut t = FlowTable::new();
        let now = Instant::now();
        t.apply(
            &FlowMod::add(5, FlowMatch::any().in_port(PortNo(1)).dl_dst(w(1)), vec![]),
            now,
        );
        t.apply(
            &FlowMod::add(5, FlowMatch::any().in_port(PortNo(1)).dl_dst(w(2)), vec![]),
            now,
        );
        t.apply(
            &FlowMod::add(5, FlowMatch::any().in_port(PortNo(2)), vec![]),
            now,
        );
        // Delete everything arriving on port 1.
        t.apply(&FlowMod::delete(FlowMatch::any().in_port(PortNo(1))), now);
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].matcher.in_port, Some(PortNo(2)));
    }

    #[test]
    fn modify_rewrites_actions_preserving_counters() {
        let mut t = FlowTable::new();
        let now = Instant::now();
        let m = FlowMatch::any().dl_dst(w(4));
        t.apply(&FlowMod::add(5, m, vec![Action::Output(PortNo(1))]), now);
        t.lookup(&meta(0, w(4)), 100, now).unwrap();
        let mut modify = FlowMod::add(5, m, vec![Action::Output(PortNo(9))]);
        modify.command = FlowModCommand::Modify;
        t.apply(&modify, now);
        assert_eq!(t.entries()[0].packets, 1, "counters survive modify");
        assert_eq!(
            t.lookup(&meta(0, w(4)), 1, now).unwrap(),
            vec![Action::Output(PortNo(9))]
        );
    }

    #[test]
    fn idle_timeout_expires_unused_rules() {
        let mut t = FlowTable::new();
        let t0 = Instant::now();
        t.apply(
            &FlowMod::add(5, FlowMatch::any().dl_dst(w(1)), vec![])
                .with_idle_timeout(Duration::from_secs(2)),
            t0,
        );
        // A hit at t0+1 refreshes the idle clock.
        assert!(t
            .lookup(&meta(0, w(1)), 1, t0 + Duration::from_secs(1))
            .is_some());
        assert_eq!(t.expire(t0 + Duration::from_millis(2500)), 0);
        assert_eq!(t.expire(t0 + Duration::from_millis(3100)), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn hard_timeout_expires_regardless_of_traffic() {
        let mut t = FlowTable::new();
        let t0 = Instant::now();
        t.apply(
            &FlowMod::add(5, FlowMatch::any(), vec![]).with_hard_timeout(Duration::from_secs(2)),
            t0,
        );
        for i in 0..3 {
            let _ = t.lookup(&meta(0, w(1)), 1, t0 + Duration::from_millis(600 * i));
        }
        assert_eq!(t.expire(t0 + Duration::from_secs(2)), 1);
    }

    #[test]
    fn expired_rule_is_skipped_by_lookup_before_eviction() {
        let mut t = FlowTable::new();
        let t0 = Instant::now();
        t.apply(
            &FlowMod::add(9, FlowMatch::any(), vec![Action::Output(PortNo(1))])
                .with_idle_timeout(Duration::from_millis(10)),
            t0,
        );
        // Not yet swept, but logically expired: lookup must miss.
        assert!(t
            .lookup(&meta(0, w(1)), 1, t0 + Duration::from_secs(1))
            .is_none());
    }

    #[test]
    fn lookup_credit_charges_a_whole_run_and_mirrors_timeouts() {
        let mut t = FlowTable::new();
        let t0 = Instant::now();
        t.apply(
            &FlowMod::add(5, FlowMatch::any(), vec![Action::Output(PortNo(1))])
                .with_idle_timeout(Duration::from_secs(3))
                .with_hard_timeout(Duration::from_secs(10)),
            t0,
        );
        let cf = t
            .lookup_credit(&meta(1, w(2)), 8, 800, t0 + Duration::from_secs(2))
            .expect("match");
        assert_eq!(cf.actions, vec![Action::Output(PortNo(1))]);
        assert_eq!(cf.idle_timeout, Duration::from_secs(3));
        assert_eq!(cf.hard_remaining, Some(Duration::from_secs(8)));
        assert_eq!(t.entries()[0].packets, 8);
        assert_eq!(t.entries()[0].bytes, 800);
    }

    #[test]
    fn lookup_credit_miss_counts_every_frame_of_the_run() {
        let mut t = FlowTable::new();
        assert!(t
            .lookup_credit(&meta(1, w(2)), 5, 500, Instant::now())
            .is_none());
        assert_eq!(t.misses, 5);
    }

    #[test]
    fn credit_adds_counters_and_refreshes_idle_clock() {
        let mut t = FlowTable::new();
        let t0 = Instant::now();
        t.apply(
            &FlowMod::add(5, FlowMatch::any(), vec![]).with_idle_timeout(Duration::from_secs(2)),
            t0,
        );
        // All traffic hit the cache; the credit at t0+1.9s proves the flow
        // is alive and must reset the idle clock.
        t.credit(&meta(1, w(2)), 100, 1000, t0 + Duration::from_millis(1900));
        assert_eq!(t.entries()[0].packets, 100);
        assert_eq!(t.expire(t0 + Duration::from_millis(2100)), 0);
        assert_eq!(t.expire(t0 + Duration::from_millis(4000)), 1);
    }

    #[test]
    fn identical_readd_is_a_noop_but_any_difference_is_not() {
        let mut t = FlowTable::new();
        let now = Instant::now();
        let rule = FlowMod::add(
            10,
            FlowMatch::any().in_port(PortNo(1)).dl_dst(w(2)),
            vec![Action::Output(PortNo(2))],
        );
        assert!(
            t.would_change(&rule, now),
            "first install changes the table"
        );
        t.apply(&rule, now);
        assert!(
            !t.would_change(&rule, now),
            "byte-identical re-add is a no-op"
        );
        // Any divergence — actions, priority, cookie, a timeout — changes it.
        let mut other = rule.clone();
        other.actions = vec![Action::Output(PortNo(3))];
        assert!(t.would_change(&other, now));
        let mut other = rule.clone();
        other.priority = 11;
        assert!(t.would_change(&other, now));
        let mut other = rule.clone();
        other.cookie = 7;
        assert!(t.would_change(&other, now));
        let timed = rule.clone().with_idle_timeout(Duration::from_secs(1));
        assert!(
            t.would_change(&timed, now),
            "a timed re-add refreshes clocks and is never a no-op"
        );
    }

    #[test]
    fn noop_check_covers_modify_and_delete() {
        let mut t = FlowTable::new();
        let now = Instant::now();
        let rule = FlowMod::add(
            10,
            FlowMatch::any().in_port(PortNo(1)),
            vec![Action::Output(PortNo(2))],
        );
        t.apply(&rule, now);
        // Modify to the same actions: no-op. To different actions: change.
        let mut same = rule.clone();
        same.command = FlowModCommand::Modify;
        assert!(!t.would_change(&same, now));
        let mut diff = same.clone();
        diff.actions = vec![Action::Output(PortNo(4))];
        assert!(t.would_change(&diff, now));
        // Delete of something subsumed: change. Of nothing: no-op.
        assert!(t.would_change(&FlowMod::delete(FlowMatch::any()), now));
        assert!(!t.would_change(&FlowMod::delete(FlowMatch::any().in_port(PortNo(9))), now));
    }

    #[test]
    fn stats_reflect_hits() {
        let mut t = FlowTable::new();
        let now = Instant::now();
        t.apply(
            &FlowMod::add(5, FlowMatch::any(), vec![]).with_cookie(77),
            now,
        );
        t.lookup(&meta(0, w(1)), 100, now);
        t.lookup(&meta(0, w(2)), 50, now);
        let stats = t.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].packets, 2);
        assert_eq!(stats[0].bytes, 150);
        assert_eq!(stats[0].cookie, 77);
    }
}
