//! # typhoon-switch — the host-based software SDN switch
//!
//! A from-scratch reimplementation of the role DPDK-accelerated Open vSwitch
//! plays in the paper's prototype (§3.2, §5): every compute host runs one
//! software switch; workers attach to dedicated switch ports over
//! shared-memory rings; SDN flow rules installed by the controller steer
//! data tuples between ports, across host-level tunnels, and to/from the
//! controller.
//!
//! * [`cache`] — a megaflow-style exact-match cache in front of the flow
//!   table, so steady-state traffic resolves once per batch run without
//!   the table lock (the OVS kernel-datapath split the prototype relied
//!   on).
//! * [`table`] — the flow table: priority + specificity ordered matching,
//!   idle/hard timeouts, per-rule packet/byte counters, add/modify/delete
//!   with wildcard subsumption.
//! * [`group_table`] — select-type groups with smooth weighted round robin
//!   (the SDN load balancer's mechanism, §4).
//! * [`port`] — the port registry: worker ports backed by rings, attach/
//!   detach with `PortStatus` events (the fault detector's signal).
//! * [`datapath`] — the forwarding engine: polls ports, tunnels and the
//!   controller channel; executes action lists; replicates broadcast frames
//!   by cloning [`bytes::Bytes`] payloads (a refcount bump, not a copy —
//!   the serialization-free one-to-many mechanism of §3.3.1).
//!
//! The controller channel carries *encoded* OpenFlow messages
//! ([`typhoon_openflow::wire`]), so the protocol codec is exercised on every
//! interaction exactly as in a real Floodlight↔OVS deployment.

#![warn(missing_docs)]

pub mod cache;
pub mod datapath;
pub mod group_table;
pub mod port;
pub mod table;

pub use cache::{CacheStats, FlowCache};
pub use datapath::{ControlChannel, StaleLeader, Switch, SwitchConfig, SwitchHandle};
pub use group_table::GroupTable;
pub use port::WorkerPort;
pub use table::{FlowEntry, FlowTable};
