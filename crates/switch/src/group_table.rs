//! The group table: select groups with weighted round robin.

use std::collections::HashMap;
use typhoon_openflow::{Action, Bucket, GroupId, GroupMod, GroupModCommand, WrrSelector};

struct GroupEntry {
    buckets: Vec<Bucket>,
    selector: WrrSelector,
    /// Times a frame was steered through this group.
    hits: u64,
}

/// The switch's group table.
#[derive(Default)]
pub struct GroupTable {
    groups: HashMap<GroupId, GroupEntry>,
}

impl GroupTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a `GroupMod`. `Add` of an existing ID and `Modify` of a
    /// missing ID both behave as upserts (lenient, like OVS with
    /// `--may-exist`).
    pub fn apply(&mut self, gm: &GroupMod) {
        match gm.command {
            GroupModCommand::Add | GroupModCommand::Modify => {
                let weights: Vec<u32> = gm.buckets.iter().map(|b| b.weight).collect();
                self.groups.insert(
                    gm.group,
                    GroupEntry {
                        buckets: gm.buckets.clone(),
                        selector: WrrSelector::new(&weights),
                        hits: 0,
                    },
                );
            }
            GroupModCommand::Delete => {
                self.groups.remove(&gm.group);
            }
        }
    }

    /// Selects a bucket for the next frame through `group`, returning its
    /// action list. `None` when the group is missing or fully zero-weighted
    /// (the frame is dropped, as OVS does for empty select groups).
    pub fn select(&mut self, group: GroupId) -> Option<Vec<Action>> {
        let entry = self.groups.get_mut(&group)?;
        let idx = entry.selector.next()?;
        entry.hits += 1;
        Some(entry.buckets[idx].actions.clone())
    }

    /// Number of installed groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no groups are installed.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Hit count of one group (observability).
    pub fn hits(&self, group: GroupId) -> u64 {
        self.groups.get(&group).map_or(0, |g| g.hits)
    }
}

impl std::fmt::Debug for GroupTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GroupTable({} groups)", self.groups.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_net::MacAddr;
    use typhoon_openflow::PortNo;
    use typhoon_tuple::tuple::TaskId;

    fn bucket(task: u32, port: u32, weight: u32) -> Bucket {
        Bucket {
            weight,
            actions: vec![
                Action::SetDlDst(MacAddr::worker(1, TaskId(task))),
                Action::Output(PortNo(port)),
            ],
        }
    }

    #[test]
    fn select_rotates_with_weights() {
        let mut gt = GroupTable::new();
        gt.apply(&GroupMod::add(
            GroupId(1),
            vec![bucket(1, 1, 2), bucket(2, 2, 1)],
        ));
        let mut to_task1 = 0;
        let mut to_task2 = 0;
        for _ in 0..300 {
            let actions = gt.select(GroupId(1)).unwrap();
            match actions[0] {
                Action::SetDlDst(m) if m == MacAddr::worker(1, TaskId(1)) => to_task1 += 1,
                Action::SetDlDst(m) if m == MacAddr::worker(1, TaskId(2)) => to_task2 += 1,
                ref other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(to_task1, 200);
        assert_eq!(to_task2, 100);
        assert_eq!(gt.hits(GroupId(1)), 300);
    }

    #[test]
    fn missing_group_yields_none() {
        let mut gt = GroupTable::new();
        assert!(gt.select(GroupId(9)).is_none());
        assert_eq!(gt.hits(GroupId(9)), 0);
    }

    #[test]
    fn modify_retunes_weights() {
        let mut gt = GroupTable::new();
        gt.apply(&GroupMod::add(
            GroupId(1),
            vec![bucket(1, 1, 1), bucket(2, 2, 1)],
        ));
        // The controller observes a straggler and moves all weight to task 2.
        gt.apply(&GroupMod::modify(
            GroupId(1),
            vec![bucket(1, 1, 0), bucket(2, 2, 1)],
        ));
        for _ in 0..10 {
            let actions = gt.select(GroupId(1)).unwrap();
            assert_eq!(actions[0], Action::SetDlDst(MacAddr::worker(1, TaskId(2))));
        }
    }

    #[test]
    fn delete_removes_group() {
        let mut gt = GroupTable::new();
        gt.apply(&GroupMod::add(GroupId(1), vec![bucket(1, 1, 1)]));
        assert_eq!(gt.len(), 1);
        gt.apply(&GroupMod::delete(GroupId(1)));
        assert!(gt.is_empty());
        assert!(gt.select(GroupId(1)).is_none());
    }

    #[test]
    fn all_zero_weights_drop() {
        let mut gt = GroupTable::new();
        gt.apply(&GroupMod::add(GroupId(1), vec![bucket(1, 1, 0)]));
        assert!(gt.select(GroupId(1)).is_none());
    }
}
