//! Switch behaviour under churn and hostile conditions: rule timeouts in a
//! live datapath, strict deletes, flood semantics, group recursion guards
//! and corrupt control traffic.

use bytes::Bytes;
use std::time::{Duration, Instant};
use typhoon_net::{Frame, MacAddr, TYPHOON_ETHERTYPE};
use typhoon_openflow::{
    wire, Action, Bucket, FlowMatch, FlowMod, GroupId, GroupMod, OfMessage, PortNo,
};
use typhoon_switch::{ControlChannel, Switch, SwitchConfig};
use typhoon_tuple::tuple::TaskId;

fn w(task: u32) -> MacAddr {
    MacAddr::worker(1, TaskId(task))
}

fn frame(src: u32, dst: MacAddr, n: u8) -> Frame {
    Frame::typhoon(w(src), dst, Bytes::from(vec![n; 16]))
}

fn send_ctrl(ch: &ControlChannel, msg: OfMessage) {
    ch.to_switch.send(wire::encode(&msg)).unwrap();
}

#[test]
fn idle_rules_expire_in_a_live_datapath() {
    let mut config = SwitchConfig::new(1);
    config.expire_interval = Duration::from_millis(20);
    let (sw, ch) = Switch::new(config);
    let src = sw.attach_worker(PortNo(1));
    let dst = sw.attach_worker(PortNo(2));
    send_ctrl(
        &ch,
        OfMessage::FlowMod(
            FlowMod::add(
                10,
                FlowMatch::any().in_port(PortNo(1)),
                vec![Action::Output(PortNo(2))],
            )
            .with_idle_timeout(Duration::from_millis(100)),
        ),
    );
    let handle = sw.spawn();
    // Traffic keeps the rule alive…
    for _ in 0..5 {
        src.tx.push(frame(10, w(20), 1)).unwrap();
        std::thread::sleep(Duration::from_millis(40));
    }
    assert_eq!(sw.rule_count(), 1, "hits refresh the idle clock");
    // …silence kills it.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(sw.rule_count(), 0, "idle timeout evicted the rule");
    // Drain the keep-alive deliveries, then confirm new traffic misses.
    while dst.rx.pop().unwrap().is_some() {}
    let misses_before = sw.miss_count();
    src.tx.push(frame(10, w(20), 2)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(2);
    while sw.miss_count() == misses_before && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(sw.miss_count() > misses_before);
    assert!(dst.rx.pop().unwrap().is_none());
    handle.stop();
}

#[test]
fn strict_delete_leaves_same_match_other_priority_untouched() {
    let (sw, ch) = Switch::new(SwitchConfig::new(1));
    let matcher = FlowMatch::any()
        .in_port(PortNo(1))
        .ether_type(TYPHOON_ETHERTYPE);
    send_ctrl(&ch, OfMessage::FlowMod(FlowMod::add(50, matcher, vec![])));
    send_ctrl(&ch, OfMessage::FlowMod(FlowMod::add(60, matcher, vec![])));
    sw.process_round();
    assert_eq!(sw.rule_count(), 2);
    // Strict delete at priority 60 only.
    let mut del = FlowMod::delete(matcher);
    del.priority = 60;
    send_ctrl(&ch, OfMessage::FlowMod(del));
    sw.process_round();
    assert_eq!(sw.rule_count(), 1, "only the priority-60 twin died");
    // Wildcard (priority 0) delete removes the rest.
    send_ctrl(&ch, OfMessage::FlowMod(FlowMod::delete(FlowMatch::any())));
    sw.process_round();
    assert_eq!(sw.rule_count(), 0);
}

#[test]
fn flood_action_excludes_the_ingress_port() {
    let (sw, ch) = Switch::new(SwitchConfig::new(1));
    let a = sw.attach_worker(PortNo(1));
    let b = sw.attach_worker(PortNo(2));
    let c = sw.attach_worker(PortNo(3));
    send_ctrl(
        &ch,
        OfMessage::FlowMod(FlowMod::add(
            5,
            FlowMatch::any(),
            vec![Action::Output(PortNo::ALL)],
        )),
    );
    sw.process_round();
    a.tx.push(frame(1, MacAddr::BROADCAST, 9)).unwrap();
    sw.process_round();
    assert!(a.rx.pop().unwrap().is_none(), "no echo to the sender");
    assert!(b.rx.pop().unwrap().is_some());
    assert!(c.rx.pop().unwrap().is_some());
}

#[test]
fn group_chains_are_depth_limited() {
    // A group whose bucket points back at itself must not recurse forever.
    let (sw, ch) = Switch::new(SwitchConfig::new(1));
    let src = sw.attach_worker(PortNo(1));
    send_ctrl(
        &ch,
        OfMessage::GroupMod(GroupMod::add(
            GroupId(1),
            vec![Bucket {
                weight: 1,
                actions: vec![Action::Group(GroupId(1))],
            }],
        )),
    );
    send_ctrl(
        &ch,
        OfMessage::FlowMod(FlowMod::add(
            5,
            FlowMatch::any(),
            vec![Action::Group(GroupId(1))],
        )),
    );
    sw.process_round();
    src.tx.push(frame(1, w(2), 1)).unwrap();
    sw.process_round(); // must return (the depth guard breaks the cycle)
}

#[test]
fn corrupt_control_bytes_are_dropped_not_fatal() {
    let (sw, ch) = Switch::new(SwitchConfig::new(1));
    let a = sw.attach_worker(PortNo(1));
    let b = sw.attach_worker(PortNo(2));
    // Garbage on the control channel…
    ch.to_switch.send(Bytes::from_static(&[0xff; 40])).unwrap();
    ch.to_switch.send(Bytes::from_static(&[0x00])).unwrap();
    // …followed by a legitimate rule.
    send_ctrl(
        &ch,
        OfMessage::FlowMod(FlowMod::add(
            5,
            FlowMatch::any().in_port(PortNo(1)),
            vec![Action::Output(PortNo(2))],
        )),
    );
    sw.process_round();
    sw.process_round();
    a.tx.push(frame(1, w(2), 7)).unwrap();
    sw.process_round();
    assert!(b.rx.pop().unwrap().is_some(), "switch survived the garbage");
}

#[test]
fn reattaching_a_port_replaces_the_dead_entry() {
    let (sw, ch) = Switch::new(SwitchConfig::new(1));
    let old = sw.attach_worker(PortNo(1));
    drop(old); // worker dies
    sw.process_round(); // dead port collected (PortStatus delete)
    let fresh = sw.attach_worker(PortNo(1));
    send_ctrl(
        &ch,
        OfMessage::FlowMod(FlowMod::add(
            5,
            FlowMatch::any(),
            vec![Action::Output(PortNo(1))],
        )),
    );
    sw.process_round();
    // Loop a frame through any port back to port 1's new occupant.
    let probe = sw.attach_worker(PortNo(2));
    probe.tx.push(frame(5, w(1), 3)).unwrap();
    sw.process_round();
    assert!(fresh.rx.pop().unwrap().is_some(), "replacement is wired in");
}

#[test]
fn hard_timeout_expires_despite_constant_traffic() {
    let mut config = SwitchConfig::new(1);
    config.expire_interval = Duration::from_millis(10);
    let (sw, ch) = Switch::new(config);
    let src = sw.attach_worker(PortNo(1));
    let dst = sw.attach_worker(PortNo(2));
    send_ctrl(
        &ch,
        OfMessage::FlowMod(
            FlowMod::add(
                10,
                FlowMatch::any().in_port(PortNo(1)),
                vec![Action::Output(PortNo(2))],
            )
            .with_hard_timeout(Duration::from_millis(150)),
        ),
    );
    let handle = sw.spawn();
    let deadline = Instant::now() + Duration::from_secs(3);
    // Hammer it with traffic the whole time; the rule must still die.
    while sw.rule_count() > 0 && Instant::now() < deadline {
        let _ = src.tx.push(frame(1, w(2), 0));
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(sw.rule_count(), 0, "hard timeout ignores traffic");
    handle.stop();
    let _ = dst;
}
