//! Controller ↔ multiple switches: rule fan-out, barrier fencing under a
//! concurrently spawned pump loop (regression for the barrier-waiter race),
//! and cross-host control-tuple delivery.

use std::time::Duration;
use typhoon_controller::{ControlTuple, Controller};
use typhoon_coordinator::global::GlobalState;
use typhoon_coordinator::Coordinator;
use typhoon_model::logical::word_count_example;
use typhoon_model::{AppId, HostId, HostInfo, RoundRobinScheduler, Scheduler};
use typhoon_openflow::PortNo;
use typhoon_switch::{Switch, SwitchConfig};

fn three_host_setup() -> (Controller, Vec<Switch>, GlobalState) {
    let global = GlobalState::new(Coordinator::new());
    let ctl = Controller::new(global.clone());
    let switches: Vec<Switch> = (0..3)
        .map(|h| {
            let (sw, ch) = Switch::new(SwitchConfig::new(h));
            ctl.register_switch(HostId(h as u32), sw.dpid(), ch);
            sw
        })
        .collect();
    (ctl, switches, global)
}

#[test]
fn rules_fan_out_to_every_host_and_barriers_fence_with_live_pump() {
    let (ctl, switches, global) = three_host_setup();
    let hosts: Vec<HostInfo> = (0..3)
        .map(|i| HostInfo::new(i, &format!("h{i}"), 4))
        .collect();
    let logical = word_count_example();
    let phys = RoundRobinScheduler
        .schedule(AppId(1), &logical, &hosts)
        .unwrap();
    global.set_logical(&logical).unwrap();
    global.set_physical(&phys).unwrap();
    for a in &phys.assignments {
        let sw = &switches[a.host.0 as usize];
        std::mem::forget(sw.attach_worker(PortNo(a.switch_port)));
    }
    // Spawn everything: datapaths AND the controller pump loop. The
    // barrier replies must still reach install_topology's fences (the
    // barrier-waiter registry regression).
    let handles: Vec<_> = switches.iter().map(|sw| sw.spawn()).collect();
    let ctl_handle = ctl.spawn(Duration::from_millis(50));
    let t0 = std::time::Instant::now();
    ctl.install_topology(&logical, &phys);
    assert!(
        t0.elapsed() < Duration::from_secs(4),
        "barrier fencing stalled: {:?} (lost replies to the pump loop?)",
        t0.elapsed()
    );
    // Every host got its share of rules (control + data).
    for (h, sw) in switches.iter().enumerate() {
        assert!(
            sw.rule_count() > 2,
            "host {h} got only {} rules",
            sw.rule_count()
        );
    }
    // Cross-host unicast rules exist: round robin guarantees remote edges.
    let remote = phys.remote_edge_pairs(&logical);
    assert!(remote > 0, "expected cross-host edges under round robin");
    ctl_handle.stop();
    for h in handles {
        h.stop();
    }
}

#[test]
fn control_tuples_reach_workers_on_any_host() {
    let (ctl, switches, global) = three_host_setup();
    let hosts: Vec<HostInfo> = (0..3)
        .map(|i| HostInfo::new(i, &format!("h{i}"), 4))
        .collect();
    let logical = word_count_example();
    let phys = RoundRobinScheduler
        .schedule(AppId(1), &logical, &hosts)
        .unwrap();
    global.set_logical(&logical).unwrap();
    global.set_physical(&phys).unwrap();
    // Keep the worker ports so we can observe deliveries.
    let mut ports = std::collections::HashMap::new();
    for a in &phys.assignments {
        let sw = &switches[a.host.0 as usize];
        ports.insert(a.task, sw.attach_worker(PortNo(a.switch_port)));
    }
    let handles: Vec<_> = switches.iter().map(|sw| sw.spawn()).collect();
    let ctl_handle = ctl.spawn(Duration::from_millis(50));
    ctl.install_topology(&logical, &phys);
    // Send a Signal to every task; each must land on its own host's port.
    for a in &phys.assignments {
        assert!(
            ctl.send_control(AppId(1), a.task, &ControlTuple::Signal),
            "send to {} failed",
            a.task
        );
    }
    for (task, port) in &ports {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(Some(_frame)) = port.rx.pop() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "control tuple never reached {task}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    // No misses: every PacketOut matched a controller→worker rule.
    for sw in &switches {
        assert_eq!(sw.miss_count(), 0, "control tuple missed the rule table");
    }
    ctl_handle.stop();
    for h in handles {
        h.stop();
    }
}
