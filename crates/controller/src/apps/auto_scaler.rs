//! The auto-scaler app (§4, evaluated in Fig. 11).
//!
//! "The auto-scaler app leverages application-layer metrics (e.g., tuple
//! queue level and tuple processing time) retrieved from ZooKeeper or
//! workers, and initiates scale up/down operations via control tuples when
//! the metrics reach predefined maximum and minimum thresholds."
//!
//! Each tick the app polls the watched node's workers with `METRIC_REQ`
//! control tuples; when the maximum reported queue depth crosses the high
//! threshold it submits a `SetParallelism(n+1)` reconfiguration request to
//! the coordinator (which the streaming manager executes via the §3.5
//! stable-update procedure); below the low threshold it scales down.

use crate::apps::ControlPlaneApp;
use crate::control::ControlTuple;
use crate::controller::Controller;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use typhoon_model::{AppId, ReconfigOp, ReconfigRequest, TaskId};

/// Scaling policy for one watched node.
#[derive(Debug, Clone)]
pub struct AutoScalerConfig {
    /// Topology name.
    pub topology: String,
    /// The node whose parallelism is managed.
    pub node: String,
    /// Metric name polled from workers.
    pub metric: String,
    /// Scale up when the max reported value exceeds this.
    pub high_watermark: i64,
    /// Scale down when the max reported value falls below this.
    pub low_watermark: i64,
    /// Never fewer tasks than this.
    pub min_parallelism: usize,
    /// Never more tasks than this.
    pub max_parallelism: usize,
    /// Minimum time between scaling actions (damping).
    pub cooldown: Duration,
}

/// The auto-scaler.
pub struct AutoScaler {
    config: AutoScalerConfig,
    watched_app: Option<AppId>,
    readings: HashMap<TaskId, i64>,
    last_action: Option<Instant>,
    next_request: u64,
    /// Scale-ups issued (observability).
    pub scale_ups: u64,
    /// Scale-downs issued (observability).
    pub scale_downs: u64,
}

impl AutoScaler {
    /// A scaler for one node.
    pub fn new(config: AutoScalerConfig) -> Self {
        AutoScaler {
            config,
            watched_app: None,
            readings: HashMap::new(),
            last_action: None,
            next_request: 1,
            scale_ups: 0,
            scale_downs: 0,
        }
    }

    fn in_cooldown(&self) -> bool {
        self.last_action
            .is_some_and(|t| t.elapsed() < self.config.cooldown)
    }

    /// The scaling decision given current readings and parallelism;
    /// factored out for direct unit testing.
    fn decide(&self, current: usize) -> Option<usize> {
        let max_depth = *self.readings.values().max()?;
        if max_depth > self.config.high_watermark && current < self.config.max_parallelism {
            Some(current + 1)
        } else if max_depth < self.config.low_watermark && current > self.config.min_parallelism {
            Some(current - 1)
        } else {
            None
        }
    }
}

impl ControlPlaneApp for AutoScaler {
    fn name(&self) -> &'static str {
        "auto-scaler"
    }

    fn on_metric_resp(
        &mut self,
        _ctl: &Controller,
        app: AppId,
        task: TaskId,
        _request_id: u64,
        metrics: &[(String, i64)],
    ) {
        if self.watched_app.is_some() && self.watched_app != Some(app) {
            return; // another application's worker
        }
        if let Some((_, v)) = metrics.iter().find(|(k, _)| *k == self.config.metric) {
            self.readings.insert(task, *v);
        }
    }

    fn on_tick(&mut self, ctl: &Controller) {
        let global = ctl.global().clone();
        let (logical, physical) = match (
            global.get_logical(&self.config.topology),
            global.get_physical(&self.config.topology),
        ) {
            (Ok(l), Ok(p)) => (l, p),
            _ => return,
        };
        self.watched_app = Some(physical.app);
        let tasks = physical.tasks_of(&self.config.node);
        // Drop readings from tasks that no longer exist (post-reschedule).
        self.readings.retain(|t, _| tasks.contains(t));
        // Poll for the next round.
        let req = ControlTuple::MetricReq {
            request_id: self.next_request,
        };
        self.next_request += 1;
        ctl.send_control_many(physical.app, &tasks, &req);

        if self.in_cooldown() {
            return;
        }
        let current = logical
            .node(&self.config.node)
            .map(|n| n.parallelism)
            .unwrap_or(tasks.len());
        if let Some(target) = self.decide(current) {
            let _ = global.submit_reconfig(&ReconfigRequest::single(
                &self.config.topology,
                ReconfigOp::SetParallelism {
                    node: self.config.node.clone(),
                    parallelism: target,
                },
            ));
            if target > current {
                self.scale_ups += 1;
            } else {
                self.scale_downs += 1;
            }
            self.last_action = Some(Instant::now());
            self.readings.clear(); // stale after a scale event
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> AutoScaler {
        AutoScaler::new(AutoScalerConfig {
            topology: "t".into(),
            node: "split".into(),
            metric: "queue.depth".into(),
            high_watermark: 100,
            low_watermark: 10,
            min_parallelism: 1,
            max_parallelism: 4,
            cooldown: Duration::from_secs(5),
        })
    }

    #[test]
    fn scales_up_above_high_watermark() {
        let mut s = scaler();
        s.readings.insert(TaskId(1), 150);
        s.readings.insert(TaskId(2), 20);
        assert_eq!(s.decide(2), Some(3));
    }

    #[test]
    fn scales_down_below_low_watermark() {
        let mut s = scaler();
        s.readings.insert(TaskId(1), 2);
        s.readings.insert(TaskId(2), 5);
        assert_eq!(s.decide(3), Some(2));
    }

    #[test]
    fn holds_between_watermarks() {
        let mut s = scaler();
        s.readings.insert(TaskId(1), 50);
        assert_eq!(s.decide(2), None);
    }

    #[test]
    fn respects_parallelism_bounds() {
        let mut s = scaler();
        s.readings.insert(TaskId(1), 1_000);
        assert_eq!(s.decide(4), None, "max reached");
        s.readings.insert(TaskId(1), 0);
        assert_eq!(s.decide(1), None, "min reached");
    }

    #[test]
    fn no_readings_means_no_decision() {
        let s = scaler();
        assert_eq!(s.decide(2), None);
    }

    #[test]
    fn cooldown_suppresses_actions() {
        let mut s = scaler();
        assert!(!s.in_cooldown());
        s.last_action = Some(Instant::now());
        assert!(s.in_cooldown());
        s.last_action = Some(Instant::now() - Duration::from_secs(10));
        assert!(!s.in_cooldown());
    }
}
