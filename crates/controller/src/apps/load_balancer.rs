//! The SDN load-balancer app (§4).
//!
//! "A worker populates destination IDs for outgoing tuples randomly,
//! instead of applying any routing, and the SDN switch rewrites their
//! destination IDs in a weighted round robin fashion … the weight
//! associated with each destination can be dynamically adjusted by the SDN
//! controller based on application-level (e.g., node's CPU load) and
//! network-level (e.g., port statistics) information."
//!
//! The data-plane side (select group + destination rewrite) is installed by
//! [`crate::rules::build_rules`] for [`typhoon_model::Grouping::SdnOffloaded`]
//! edges. This app closes the loop: each tick it polls the downstream
//! workers' queue depths via `METRIC_REQ` control tuples and retunes the
//! bucket weights inversely to queue depth, so stragglers receive less.

use crate::apps::ControlPlaneApp;
use crate::control::ControlTuple;
use crate::controller::Controller;
use crate::rules::group_id_for;
use std::collections::HashMap;
use typhoon_model::{AppId, TaskId};
use typhoon_net::MacAddr;
use typhoon_openflow::{Action, Bucket, GroupMod, PortNo};

/// Configuration of one balanced edge.
#[derive(Debug, Clone)]
pub struct LoadBalancerConfig {
    /// Topology name.
    pub topology: String,
    /// Upstream node (whose tasks own the select groups).
    pub from: String,
    /// Downstream node (whose tasks are the buckets).
    pub to: String,
    /// Metric polled from downstream workers (typically `"queue.depth"`).
    pub metric: String,
}

/// The load balancer.
pub struct LoadBalancer {
    config: LoadBalancerConfig,
    watched_app: Option<AppId>,
    /// Latest reported metric per downstream task.
    depths: HashMap<TaskId, i64>,
    next_request: u64,
    /// Weight updates issued (observability for tests).
    pub retunes: u64,
}

impl LoadBalancer {
    /// A balancer for one edge.
    pub fn new(config: LoadBalancerConfig) -> Self {
        LoadBalancer {
            config,
            watched_app: None,
            depths: HashMap::new(),
            next_request: 1,
            retunes: 0,
        }
    }

    /// Weight for a reported queue depth: deeper queue → lighter weight.
    /// Weights stay ≥ 1 so no worker is starved entirely (a starved
    /// stateful worker could otherwise never drain).
    fn weight_for(depth: i64) -> u32 {
        const MAX_WEIGHT: i64 = 100;
        (MAX_WEIGHT - depth.clamp(0, MAX_WEIGHT - 1)).max(1) as u32
    }
}

impl ControlPlaneApp for LoadBalancer {
    fn name(&self) -> &'static str {
        "load-balancer"
    }

    fn on_metric_resp(
        &mut self,
        _ctl: &Controller,
        app: AppId,
        task: TaskId,
        _request_id: u64,
        metrics: &[(String, i64)],
    ) {
        if self.watched_app.is_some() && self.watched_app != Some(app) {
            return;
        }
        if let Some((_, v)) = metrics.iter().find(|(k, _)| *k == self.config.metric) {
            self.depths.insert(task, *v);
        }
    }

    fn on_tick(&mut self, ctl: &Controller) {
        let global = ctl.global().clone();
        let (logical, physical) = match (
            global.get_logical(&self.config.topology),
            global.get_physical(&self.config.topology),
        ) {
            (Ok(l), Ok(p)) => (l, p),
            _ => return,
        };
        let _ = logical;
        self.watched_app = Some(physical.app);
        let dst_tasks = physical.tasks_of(&self.config.to);
        // Poll downstream queue depths for the next round.
        let req = ControlTuple::MetricReq {
            request_id: self.next_request,
        };
        self.next_request += 1;
        ctl.send_control_many(physical.app, &dst_tasks, &req);

        // Retune weights from what we know so far.
        if self.depths.is_empty() {
            return;
        }
        for src in physical.tasks_of(&self.config.from) {
            let src_host = match physical.assignment(src) {
                Some(a) => a.host,
                None => continue,
            };
            let buckets: Vec<Bucket> = dst_tasks
                .iter()
                .filter_map(|&dst| {
                    let a = physical.assignment(dst)?;
                    let mut actions = vec![Action::SetDlDst(MacAddr::worker(physical.app.0, dst))];
                    if a.host == src_host {
                        actions.push(Action::Output(PortNo(a.switch_port)));
                    } else {
                        actions.push(Action::SetTunDst(a.host.0));
                        actions.push(Action::Output(PortNo::TUNNEL));
                    }
                    let depth = self.depths.get(&dst).copied().unwrap_or(0);
                    Some(Bucket {
                        weight: Self::weight_for(depth),
                        actions,
                    })
                })
                .collect();
            ctl.send_group_mod(
                src_host,
                GroupMod::modify(group_id_for(physical.app.0, src), buckets),
            );
            self.retunes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_is_inverse_to_depth_and_never_zero() {
        assert_eq!(LoadBalancer::weight_for(0), 100);
        assert!(LoadBalancer::weight_for(10) < LoadBalancer::weight_for(1));
        assert_eq!(LoadBalancer::weight_for(1_000_000), 1);
        assert_eq!(LoadBalancer::weight_for(-5), 100, "negative clamps");
    }

    #[test]
    fn metric_responses_update_depths() {
        let mut lb = LoadBalancer::new(LoadBalancerConfig {
            topology: "t".into(),
            from: "a".into(),
            to: "b".into(),
            metric: "queue.depth".into(),
        });
        let global =
            typhoon_coordinator::global::GlobalState::new(typhoon_coordinator::Coordinator::new());
        let ctl = Controller::new(global);
        lb.on_metric_resp(
            &ctl,
            AppId(1),
            TaskId(3),
            1,
            &[("queue.depth".into(), 42), ("other".into(), 7)],
        );
        assert_eq!(lb.depths[&TaskId(3)], 42);
        lb.on_metric_resp(&ctl, AppId(1), TaskId(4), 1, &[("other".into(), 7)]);
        assert!(!lb.depths.contains_key(&TaskId(4)), "wrong metric ignored");
    }
}
