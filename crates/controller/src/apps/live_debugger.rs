//! The live-debugger app (§4, evaluated in Fig. 12 / Table 5).
//!
//! "The Typhoon SDN controller can easily support highly flexible and
//! efficient live debugging capability by dynamically adding a debug worker
//! anywhere in a running topology and inserting packet-mirroring rules for
//! selected tuples."
//!
//! The mirror is pure data plane: a higher-priority copy of the matched
//! rule whose action list additionally outputs to the debug worker's port.
//! The extra output clones a `Bytes` payload — no application-level
//! serialization, which is exactly why Fig. 12 shows no throughput drop
//! for Typhoon while Storm's app-level mirroring halves throughput.

use crate::apps::ControlPlaneApp;
use crate::controller::Controller;
use crate::rules::DATA_IDLE_TIMEOUT;
use std::sync::Arc;
use typhoon_model::{AppId, HostId, TaskId};
use typhoon_net::{MacAddr, TYPHOON_ETHERTYPE};
use typhoon_openflow::{Action, FlowMatch, FlowMod, PortNo};
use typhoon_trace::{HopStat, TraceDump, Tracer};

/// Mirror rules sit above the data rules so they win the lookup.
pub const MIRROR_PRIORITY: u16 = 60;

/// One active mirror session.
#[derive(Debug, Clone)]
struct Mirror {
    host: HostId,
    matchers: Vec<FlowMatch>,
}

/// The live debugger. Unlike the other apps it is imperative: experiments
/// and the REST API call [`LiveDebugger::mirror_task`] /
/// [`LiveDebugger::unmirror`] directly on a shared handle.
#[derive(Debug, Default)]
pub struct LiveDebugger {
    sessions: Vec<Mirror>,
    tracer: Option<Arc<Tracer>>,
}

impl LiveDebugger {
    /// A debugger with no active sessions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirrors every tuple emitted by `src_task` to `debug_port` on the
    /// same host. For each live unicast destination the base plan serves,
    /// a higher-priority rule replays the base action plus the mirror
    /// output; the broadcast rule gets the same treatment.
    ///
    /// `dst_tasks` are the current next hops of `src_task` with their
    /// ports (the caller reads them from the physical topology).
    // The argument list mirrors the OpenFlow rule tuple one-to-one;
    // bundling them into a struct would just rename the problem.
    #[allow(clippy::too_many_arguments)]
    pub fn mirror_task(
        &mut self,
        ctl: &Controller,
        app: AppId,
        host: HostId,
        src_task: TaskId,
        src_port: PortNo,
        dst_tasks: &[(TaskId, PortNo)],
        debug_port: PortNo,
    ) {
        let src_mac = MacAddr::worker(app.0, src_task);
        let mut matchers = Vec::new();
        for &(dst_task, dst_port) in dst_tasks {
            let matcher = FlowMatch::any()
                .in_port(src_port)
                .dl_src(src_mac)
                .dl_dst(MacAddr::worker(app.0, dst_task))
                .ether_type(TYPHOON_ETHERTYPE);
            ctl.send_flow_mod(
                host,
                FlowMod::add(
                    MIRROR_PRIORITY,
                    matcher,
                    vec![Action::Output(dst_port), Action::Output(debug_port)],
                )
                .with_idle_timeout(DATA_IDLE_TIMEOUT),
            );
            matchers.push(matcher);
        }
        self.sessions.push(Mirror { host, matchers });
    }

    /// Tears down every mirror session installed through this handle.
    /// Strict deletes (priority-matched) leave the base rules untouched.
    pub fn unmirror(&mut self, ctl: &Controller) {
        for session in self.sessions.drain(..) {
            for matcher in session.matchers {
                let mut del = FlowMod::delete(matcher);
                del.priority = MIRROR_PRIORITY;
                ctl.send_flow_mod(session.host, del);
            }
        }
    }

    /// Number of active mirror sessions.
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Attaches the cluster's end-to-end tuple tracer, making span data
    /// available through [`LiveDebugger::trace_dump`] and
    /// [`LiveDebugger::hop_breakdown`].
    pub fn attach_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// The N slowest complete traces (`None` when no tracer is attached).
    pub fn trace_dump(&self, n: usize) -> Option<TraceDump> {
        self.tracer.as_ref().map(|t| t.dump(n))
    }

    /// Per-hop latency statistics in canonical hop order (empty when no
    /// tracer is attached or nothing completed yet).
    pub fn hop_breakdown(&self) -> Vec<HopStat> {
        match &self.tracer {
            Some(t) => {
                t.collect();
                t.hop_stats()
            }
            None => Vec::new(),
        }
    }
}

impl ControlPlaneApp for LiveDebugger {
    fn name(&self) -> &'static str {
        "live-debugger"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use typhoon_coordinator::global::GlobalState;
    use typhoon_coordinator::Coordinator;
    use typhoon_net::Frame;
    use typhoon_switch::{Switch, SwitchConfig};
    use typhoon_tuple::tuple::TaskId;

    #[test]
    fn mirror_duplicates_traffic_then_strict_delete_restores() {
        let global = GlobalState::new(Coordinator::new());
        let ctl = Controller::new(global);
        let (sw, ch) = Switch::new(SwitchConfig::new(0));
        ctl.register_switch(HostId(0), sw.dpid(), ch);

        let src = sw.attach_worker(PortNo(1));
        let dst = sw.attach_worker(PortNo(2));
        let dbg = sw.attach_worker(PortNo(3));

        // Base unicast rule (what install_topology would have placed).
        let src_mac = MacAddr::worker(1, TaskId(10));
        let dst_mac = MacAddr::worker(1, TaskId(20));
        ctl.send_flow_mod(
            HostId(0),
            FlowMod::add(
                crate::rules::DATA_PRIORITY,
                FlowMatch::any()
                    .in_port(PortNo(1))
                    .dl_src(src_mac)
                    .dl_dst(dst_mac)
                    .ether_type(TYPHOON_ETHERTYPE),
                vec![Action::Output(PortNo(2))],
            ),
        );
        sw.process_round();

        let mut debugger = LiveDebugger::new();
        debugger.mirror_task(
            &ctl,
            AppId(1),
            HostId(0),
            TaskId(10),
            PortNo(1),
            &[(TaskId(20), PortNo(2))],
            PortNo(3),
        );
        sw.process_round();
        assert_eq!(debugger.active_sessions(), 1);

        // Traffic now reaches both the real destination and the debugger.
        let frame = Frame::typhoon(src_mac, dst_mac, Bytes::from_static(b"tuple"));
        let payload_ptr = frame.payload.as_ptr();
        src.tx.push(frame).unwrap();
        sw.process_round();
        let at_dst = dst.rx.pop().unwrap().expect("destination still served");
        let at_dbg = dbg.rx.pop().unwrap().expect("debugger got a copy");
        assert_eq!(at_dst.payload.as_ptr(), payload_ptr, "shared payload");
        assert_eq!(at_dbg.payload.as_ptr(), payload_ptr, "no serialization");

        // Unmirror: strict delete removes only the mirror rule.
        debugger.unmirror(&ctl);
        sw.process_round();
        assert_eq!(debugger.active_sessions(), 0);
        let frame = Frame::typhoon(src_mac, dst_mac, Bytes::from_static(b"tuple2"));
        src.tx.push(frame).unwrap();
        sw.process_round();
        assert!(dst.rx.pop().unwrap().is_some(), "base rule survives");
        assert!(dbg.rx.pop().unwrap().is_none(), "mirroring stopped");
    }
}
