//! SDN control-plane applications (§4 of the paper).
//!
//! "The Typhoon SDN controller exposes cross-layer information, from both
//! the application and the network, to SDN control plane applications to
//! extend the framework's functionality." Apps receive network events
//! (`PortStatus`, `PacketIn`), application metrics (`METRIC_RESP` control
//! tuples) and a periodic tick; they act through the [`Controller`]
//! (installing rules, injecting control tuples) and through the coordinator
//! (submitting reconfiguration requests the streaming manager executes).

mod auto_scaler;
mod fault_detector;
mod live_debugger;
mod load_balancer;

pub use auto_scaler::{AutoScaler, AutoScalerConfig};
pub use fault_detector::{FaultDetector, FAULTS, TUNNEL_FAULTS};
pub use live_debugger::{LiveDebugger, MIRROR_PRIORITY};
pub use load_balancer::{LoadBalancer, LoadBalancerConfig};

use crate::controller::Controller;
use typhoon_model::{AppId, HostId, TaskId};
use typhoon_net::Frame;
use typhoon_openflow::{PortNo, PortStatusReason};

/// Convenience alias: apps receive the controller itself as their context.
pub type AppCtx = Controller;

/// A control-plane application hosted by the controller.
///
/// All hooks default to no-ops so apps implement only what they need.
/// Hooks run on the controller's pump thread; they must not call
/// [`Controller::pump`] (re-entrancy) and should stay short.
pub trait ControlPlaneApp: Send {
    /// Application name (logs, diagnostics).
    fn name(&self) -> &'static str;

    /// A switch port appeared, vanished or changed.
    fn on_port_status(
        &mut self,
        _ctl: &Controller,
        _host: HostId,
        _reason: PortStatusReason,
        _port: PortNo,
    ) {
    }

    /// A worker answered a `METRIC_REQ` control tuple. `app` is recovered
    /// from the responding worker's MAC prefix (Fig. 5), so apps watching
    /// one topology can ignore other applications' workers even when task
    /// numbers coincide.
    fn on_metric_resp(
        &mut self,
        _ctl: &Controller,
        _app: AppId,
        _task: TaskId,
        _request_id: u64,
        _metrics: &[(String, i64)],
    ) {
    }

    /// A raw frame was punted to the controller.
    fn on_packet_in(&mut self, _ctl: &Controller, _host: HostId, _frame: &Frame) {}

    /// Periodic tick (stats polls, scaling decisions).
    fn on_tick(&mut self, _ctl: &Controller) {}
}
