//! The fault-detector app (§4, evaluated in Fig. 10).
//!
//! "The Typhoon SDN controller detects a dead worker from an unexpected
//! port removal event, and takes a proactive approach to update affected
//! flow rules immediately, well before the dead worker is re-scheduled with
//! heartbeat timeouts."
//!
//! On `PortStatus(Delete)` the app:
//! 1. maps (host, port) to the dead task via the physical topology,
//! 2. deletes the flow rules steering traffic *to* the dead task,
//! 3. sends `ROUTING` control tuples to every predecessor task, shrinking
//!    their `nextHops` to the surviving siblings (so in-flight routing
//!    immediately redirects to alive workers),
//! 4. records the fault under `/typhoon/faults/...` so the streaming
//!    manager can re-schedule at its leisure.

use crate::apps::ControlPlaneApp;
use crate::control::ControlTuple;
use crate::controller::Controller;
use typhoon_coordinator::CreateMode;
use typhoon_model::{HostId, TaskId};
use typhoon_net::MacAddr;
use typhoon_openflow::{FlowMatch, FlowMod, PortNo, PortStatusReason};

/// Coordinator path recording detected faults.
pub const FAULTS: &str = "/typhoon/faults";

/// Coordinator path recording detected host-link (tunnel) faults.
pub const TUNNEL_FAULTS: &str = "/typhoon/faults/tunnels";

/// The fault detector. Stateless between events, per the controller's
/// design discipline: everything it needs is re-read from the coordinator.
#[derive(Debug, Default)]
pub struct FaultDetector {
    /// Worker faults handled so far (observability for tests/experiments).
    pub handled: u64,
    /// Host-link faults handled so far (tunnel-peer `PortStatus` deletes).
    pub tunnel_faults: u64,
    /// Predecessor hop-set shrinks performed (stateless victims only).
    pub shrinks: u64,
}

impl FaultDetector {
    /// A fresh detector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ControlPlaneApp for FaultDetector {
    fn name(&self) -> &'static str {
        "fault-detector"
    }

    fn on_port_status(
        &mut self,
        ctl: &Controller,
        host: HostId,
        reason: PortStatusReason,
        port: PortNo,
    ) {
        if reason != PortStatusReason::Delete {
            return;
        }
        // A tunnel-peer pseudo-port delete is a *host-link* fault: the
        // reporting switch tore down its tunnel to `peer`. Record it so the
        // streaming manager can re-route around the partitioned link; no
        // single task died, so the worker-redirect machinery below does
        // not apply.
        if let Some(peer) = port.tunnel_peer_id() {
            self.tunnel_faults += 1;
            let coord = ctl.global().coordinator();
            let _ = coord.ensure_path(TUNNEL_FAULTS);
            let _ = coord.create(
                &format!("{TUNNEL_FAULTS}/host-{}-to-{}", host.0, peer),
                format!("tunnel from host {} to host {peer} down", host.0).into_bytes(),
                CreateMode::Persistent,
            );
            return;
        }
        let global = ctl.global().clone();
        let topologies = match global.list_topologies() {
            Ok(t) => t,
            Err(_) => return,
        };
        for name in topologies {
            let (logical, physical) = match (global.get_logical(&name), global.get_physical(&name))
            {
                (Ok(l), Ok(p)) => (l, p),
                _ => continue,
            };
            let dead = physical
                .assignments
                .iter()
                .find(|a| a.host == host && PortNo(a.switch_port) == port)
                .cloned();
            let dead = match dead {
                Some(d) => d,
                None => continue,
            };
            self.handled += 1;
            let dead_mac = MacAddr::worker(physical.app.0, dead.task);
            // (2) Drop rules steering to the dead worker, on every host.
            for h in ctl.hosts() {
                ctl.send_flow_mod(h, FlowMod::delete(FlowMatch::any().dl_dst(dead_mac)));
            }
            // (3) Redirect predecessors to the surviving siblings — but
            // only when the dead node is *stateless*. A stateful node's
            // partitions are not interchangeable: rerouting its keys to a
            // sibling would fold them into the wrong partition, and once
            // the restored task replays them too they would be counted
            // twice. Stateful victims keep their full hop set; in-flight
            // tuples to the dead task go unacked and replay into the
            // restored worker, whose checkpoint ledger dedups exactly.
            let is_stateful = logical
                .node(&dead.node)
                .map(|n| n.stateful)
                .unwrap_or(false);
            if !is_stateful {
                self.shrinks += 1;
                let survivors: Vec<TaskId> = physical
                    .tasks_of(&dead.node)
                    .into_iter()
                    .filter(|&t| t != dead.task)
                    .collect();
                for pred in logical.predecessors(&dead.node) {
                    let pred_tasks = physical.tasks_of(pred);
                    ctl.send_control_many(
                        physical.app,
                        &pred_tasks,
                        &ControlTuple::Routing {
                            downstream: dead.node.clone(),
                            next_hops: Some(survivors.clone()),
                            policy: None,
                        },
                    );
                }
            }
            // (4) Record the fault for the streaming manager.
            let coord = global.coordinator();
            let _ = coord.ensure_path(&format!("{FAULTS}/{name}"));
            let _ = coord.create(
                &format!("{FAULTS}/{name}/task-{}", dead.task.0),
                dead.node.clone().into_bytes(),
                CreateMode::Persistent,
            );
            return; // the (host, port) pair identifies exactly one task
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_coordinator::global::GlobalState;
    use typhoon_coordinator::Coordinator;
    use typhoon_model::logical::word_count_example;
    use typhoon_model::{AppId, HostInfo, LocalityScheduler, Scheduler};
    use typhoon_switch::{Switch, SwitchConfig};

    #[test]
    fn port_delete_triggers_redirect_and_fault_record() {
        let global = GlobalState::new(Coordinator::new());
        let ctl = Controller::new(global.clone());
        let (sw, ch) = Switch::new(SwitchConfig::new(0));
        ctl.register_switch(HostId(0), sw.dpid(), ch);
        ctl.add_app(Box::new(FaultDetector::new()));

        let logical = word_count_example();
        let phys = LocalityScheduler
            .schedule(AppId(1), &logical, &[HostInfo::new(0, "h0", 8)])
            .unwrap();
        global.set_logical(&logical).unwrap();
        global.set_physical(&phys).unwrap();

        // Attach all ports, keep endpoints alive.
        let mut ports = Vec::new();
        for a in &phys.assignments {
            ports.push(sw.attach_worker(PortNo(a.switch_port)));
        }
        // Drain the PortStatus(Add) events.
        ctl.pump();

        // Kill one split worker by detaching its port.
        let dead_task = phys.tasks_of("split")[0];
        let dead_port = PortNo(phys.assignment(dead_task).unwrap().switch_port);
        sw.detach_worker(dead_port);
        sw.process_round();
        ctl.pump(); // dispatches PortStatus(Delete) to the fault detector

        // Fault recorded in the coordinator.
        let coord = global.coordinator();
        assert!(coord.exists(&format!("{FAULTS}/word-count/task-{}", dead_task.0)));

        // The switch received a delete for rules toward the dead worker and
        // PacketOut control tuples for the predecessors; process them.
        for _ in 0..5 {
            sw.process_round();
        }
        // The predecessor (input) worker port should have received a
        // ROUTING control tuple frame.
        let input_task = phys.tasks_of("input")[0];
        let input_port_no = phys.assignment(input_task).unwrap().switch_port;
        let input_wp = ports
            .iter()
            .find(|wp| wp.port == PortNo(input_port_no))
            .unwrap();
        // There is no controller→worker rule installed in this minimal
        // test, so instead assert the app counted the fault.
        let _ = input_wp;
        // (Routing-tuple delivery end-to-end is covered by the controller
        //  integration tests where install_topology runs first.)
        assert!(coord.exists(FAULTS));
    }

    #[test]
    fn stateful_victim_records_fault_but_keeps_predecessor_hops() {
        // Regression for the reroute/replay double-count window: shrinking
        // a stateful node's hop set folds rerouted keys into the wrong
        // partition, and the restored task replays them again afterwards.
        let global = GlobalState::new(Coordinator::new());
        let ctl = Controller::new(global.clone());
        let (sw, ch) = Switch::new(SwitchConfig::new(0));
        ctl.register_switch(HostId(0), sw.dpid(), ch);

        let logical = word_count_example();
        let phys = LocalityScheduler
            .schedule(AppId(1), &logical, &[HostInfo::new(0, "h0", 8)])
            .unwrap();
        global.set_logical(&logical).unwrap();
        global.set_physical(&phys).unwrap();

        let mut fd = FaultDetector::new();
        // "count" is stateful: fault recorded, no shrink.
        let count_task = phys.tasks_of("count")[0];
        let count_port = PortNo(phys.assignment(count_task).unwrap().switch_port);
        fd.on_port_status(&ctl, HostId(0), PortStatusReason::Delete, count_port);
        assert_eq!(fd.handled, 1);
        assert_eq!(fd.shrinks, 0, "stateful victim must not shrink hops");
        assert!(global
            .coordinator()
            .exists(&format!("{FAULTS}/word-count/task-{}", count_task.0)));

        // "split" is stateless: same event class, now with a shrink.
        let split_task = phys.tasks_of("split")[0];
        let split_port = PortNo(phys.assignment(split_task).unwrap().switch_port);
        fd.on_port_status(&ctl, HostId(0), PortStatusReason::Delete, split_port);
        assert_eq!(fd.handled, 2);
        assert_eq!(fd.shrinks, 1, "stateless victim shrinks hops");
    }

    #[test]
    fn tunnel_peer_delete_records_link_fault() {
        let global = GlobalState::new(Coordinator::new());
        let ctl = Controller::new(global.clone());
        let mut fd = FaultDetector::new();
        fd.on_port_status(
            &ctl,
            HostId(0),
            PortStatusReason::Delete,
            PortNo::tunnel_peer(1),
        );
        assert_eq!(fd.tunnel_faults, 1);
        assert_eq!(fd.handled, 0, "a link fault is not a worker fault");
        assert!(global
            .coordinator()
            .exists(&format!("{TUNNEL_FAULTS}/host-0-to-1")));
    }

    #[test]
    fn port_add_is_ignored() {
        let global = GlobalState::new(Coordinator::new());
        let ctl = Controller::new(global.clone());
        let mut fd = FaultDetector::new();
        fd.on_port_status(&ctl, HostId(0), PortStatusReason::Add, PortNo(1));
        assert_eq!(fd.handled, 0);
    }

    #[test]
    fn unknown_port_is_ignored() {
        let global = GlobalState::new(Coordinator::new());
        let ctl = Controller::new(global.clone());
        let mut fd = FaultDetector::new();
        fd.on_port_status(&ctl, HostId(0), PortStatusReason::Delete, PortNo(42));
        assert_eq!(fd.handled, 0);
    }
}
