//! Table 3 rule generation.
//!
//! A pure function from (logical topology, physical topology) to the exact
//! per-host rule set of Table 3 in the paper:
//!
//! | tuple type | communication | rule |
//! |---|---|---|
//! | data | local transfer | `match in_port, dl_src, dl_dst, 0xffff → output dst port` |
//! | data | remote (sender) | `match in_port, dl_src, dl_dst, 0xffff → set_tun_dst, output TUNNEL` |
//! | data | remote (receiver) | `match in_port=TUNNEL, dl_src, dl_dst → output dst port` |
//! | data | one-to-many | `match in_port, dl_dst=BROADCAST, 0xffff → output all dst ports (+tunnels)` |
//! | control | controller→worker | `match in_port=CONTROLLER, dl_dst=worker → output worker port` |
//! | control | worker→controller | `match dl_dst=CONTROLLER, 0xffff → output CONTROLLER` |
//!
//! Keeping this a pure function is what lets the controller stay stateless
//! (§3.4): whenever the coordinator's global state changes, the controller
//! just regenerates and diffs.

use std::collections::BTreeMap;
use std::time::Duration;
use typhoon_model::{Grouping, HostId, LogicalTopology, PhysicalTopology, TaskId};
use typhoon_net::{MacAddr, TYPHOON_ETHERTYPE};
use typhoon_openflow::{Action, Bucket, FlowMatch, FlowMod, GroupId, GroupMod, PortNo};

/// Priority of control-plane rules (Table 3 control rows).
pub const CONTROL_PRIORITY: u16 = 100;
/// Priority of unicast data rules.
pub const DATA_PRIORITY: u16 = 50;
/// Priority of broadcast data rules.
pub const BROADCAST_PRIORITY: u16 = 40;

/// Idle timeout applied to data rules so that rules to removed workers age
/// out on their own (§3.5 stateless removal).
pub const DATA_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// The complete rule set for one topology, keyed by host.
#[derive(Debug, Default, Clone)]
pub struct RulePlan {
    /// Flow rules per host switch.
    pub flows: BTreeMap<HostId, Vec<FlowMod>>,
    /// Group entries per host switch (SDN-offloaded load balancing).
    pub groups: BTreeMap<HostId, Vec<GroupMod>>,
}

impl RulePlan {
    /// Total number of flow rules across hosts.
    pub fn flow_count(&self) -> usize {
        self.flows.values().map(Vec::len).sum()
    }
}

struct TaskView {
    task: TaskId,
    host: HostId,
    port: PortNo,
    mac: MacAddr,
}

/// Builds the Table 3 rule plan for a scheduled topology.
pub fn build_rules(logical: &LogicalTopology, physical: &PhysicalTopology) -> RulePlan {
    let app = physical.app.0;
    let mut plan = RulePlan::default();
    let view = |task: TaskId| -> TaskView {
        let a = physical.assignment(task).expect("task in physical");
        TaskView {
            task,
            host: a.host,
            port: PortNo(a.switch_port),
            mac: MacAddr::worker(app, task),
        }
    };

    // Hosts that carry at least one task get the control rules.
    for (&host, tasks) in &physical.by_host() {
        let flows = plan.flows.entry(host).or_default();
        // Worker → controller (METRIC_RESP and friends).
        flows.push(FlowMod::add(
            CONTROL_PRIORITY,
            FlowMatch::any()
                .dl_dst(MacAddr::CONTROLLER)
                .ether_type(TYPHOON_ETHERTYPE),
            vec![Action::ToController],
        ));
        // Controller → each worker (control-tuple delivery).
        for &task in tasks {
            let tv = view(task);
            flows.push(FlowMod::add(
                CONTROL_PRIORITY,
                FlowMatch::any()
                    .in_port(PortNo::CONTROLLER)
                    .dl_dst(tv.mac)
                    .ether_type(TYPHOON_ETHERTYPE),
                vec![Action::Output(tv.port)],
            ));
        }
    }

    for edge in &logical.edges {
        let srcs: Vec<TaskView> = physical
            .tasks_of(&edge.from)
            .into_iter()
            .map(view)
            .collect();
        let dsts: Vec<TaskView> = physical.tasks_of(&edge.to).into_iter().map(view).collect();
        match &edge.grouping {
            Grouping::All => {
                for src in &srcs {
                    build_broadcast(&mut plan, src, &dsts);
                }
            }
            Grouping::SdnOffloaded => {
                for src in &srcs {
                    build_sdn_offloaded(&mut plan, app, src, &dsts);
                }
            }
            _ => {
                for src in &srcs {
                    for dst in &dsts {
                        build_unicast(&mut plan, src, dst);
                    }
                }
            }
        }
    }
    plan
}

fn build_unicast(plan: &mut RulePlan, src: &TaskView, dst: &TaskView) {
    if src.host == dst.host {
        // Table 3: local transfer.
        plan.flows.entry(src.host).or_default().push(
            FlowMod::add(
                DATA_PRIORITY,
                FlowMatch::any()
                    .in_port(src.port)
                    .dl_src(src.mac)
                    .dl_dst(dst.mac)
                    .ether_type(TYPHOON_ETHERTYPE),
                vec![Action::Output(dst.port)],
            )
            .with_idle_timeout(DATA_IDLE_TIMEOUT),
        );
    } else {
        // Table 3: remote transfer (sender).
        plan.flows.entry(src.host).or_default().push(
            FlowMod::add(
                DATA_PRIORITY,
                FlowMatch::any()
                    .in_port(src.port)
                    .dl_src(src.mac)
                    .dl_dst(dst.mac)
                    .ether_type(TYPHOON_ETHERTYPE),
                vec![
                    Action::SetTunDst(dst.host.0),
                    Action::Output(PortNo::TUNNEL),
                ],
            )
            .with_idle_timeout(DATA_IDLE_TIMEOUT),
        );
        // Table 3: remote transfer (receiver).
        plan.flows.entry(dst.host).or_default().push(
            FlowMod::add(
                DATA_PRIORITY,
                FlowMatch::any()
                    .in_port(PortNo::TUNNEL)
                    .dl_src(src.mac)
                    .dl_dst(dst.mac),
                vec![Action::Output(dst.port)],
            )
            .with_idle_timeout(DATA_IDLE_TIMEOUT),
        );
    }
}

fn build_broadcast(plan: &mut RulePlan, src: &TaskView, dsts: &[TaskView]) {
    // Sender-side rule: local replicas + one tunnel send per remote host.
    let mut actions = Vec::new();
    let mut remote_hosts: Vec<HostId> = Vec::new();
    for dst in dsts {
        if dst.host == src.host {
            actions.push(Action::Output(dst.port));
        } else if !remote_hosts.contains(&dst.host) {
            remote_hosts.push(dst.host);
        }
    }
    for host in &remote_hosts {
        actions.push(Action::SetTunDst(host.0));
        actions.push(Action::Output(PortNo::TUNNEL));
    }
    plan.flows.entry(src.host).or_default().push(
        FlowMod::add(
            BROADCAST_PRIORITY,
            FlowMatch::any()
                .in_port(src.port)
                .dl_src(src.mac)
                .dl_dst(MacAddr::BROADCAST)
                .ether_type(TYPHOON_ETHERTYPE),
            actions,
        )
        .with_idle_timeout(DATA_IDLE_TIMEOUT),
    );
    // Receiver-side rule per remote host: deliver to that host's members.
    for host in remote_hosts {
        let local_outputs: Vec<Action> = dsts
            .iter()
            .filter(|d| d.host == host)
            .map(|d| Action::Output(d.port))
            .collect();
        plan.flows.entry(host).or_default().push(
            FlowMod::add(
                BROADCAST_PRIORITY,
                FlowMatch::any()
                    .in_port(PortNo::TUNNEL)
                    .dl_src(src.mac)
                    .dl_dst(MacAddr::BROADCAST),
                local_outputs,
            )
            .with_idle_timeout(DATA_IDLE_TIMEOUT),
        );
    }
}

/// Deterministic group ID for one source task's offloaded edge.
pub fn group_id_for(app: u16, src: TaskId) -> GroupId {
    GroupId(((app as u32) << 20) | (src.0 & 0xf_ffff))
}

fn build_sdn_offloaded(plan: &mut RulePlan, app: u16, src: &TaskView, dsts: &[TaskView]) {
    // One select group per source task; buckets rewrite the destination and
    // deliver locally or via tunnel. Receiver-side unicast rules cover the
    // tunnel leg.
    let gid = group_id_for(app, src.task);
    let buckets: Vec<Bucket> = dsts
        .iter()
        .map(|dst| {
            let mut actions = vec![Action::SetDlDst(dst.mac)];
            if dst.host == src.host {
                actions.push(Action::Output(dst.port));
            } else {
                actions.push(Action::SetTunDst(dst.host.0));
                actions.push(Action::Output(PortNo::TUNNEL));
            }
            Bucket { weight: 1, actions }
        })
        .collect();
    plan.groups
        .entry(src.host)
        .or_default()
        .push(GroupMod::add(gid, buckets));
    plan.flows.entry(src.host).or_default().push(
        FlowMod::add(
            DATA_PRIORITY,
            FlowMatch::any()
                .in_port(src.port)
                .dl_src(src.mac)
                .ether_type(TYPHOON_ETHERTYPE),
            vec![Action::Group(gid)],
        )
        .with_idle_timeout(DATA_IDLE_TIMEOUT),
    );
    for dst in dsts.iter().filter(|d| d.host != src.host) {
        plan.flows.entry(dst.host).or_default().push(
            FlowMod::add(
                DATA_PRIORITY,
                FlowMatch::any()
                    .in_port(PortNo::TUNNEL)
                    .dl_src(src.mac)
                    .dl_dst(dst.mac),
                vec![Action::Output(dst.port)],
            )
            .with_idle_timeout(DATA_IDLE_TIMEOUT),
        );
    }
}

/// Builds the Table 3 unicast rules for one explicit `src → dst` task pair
/// (used for edges that exist outside the logical DAG, e.g. worker↔acker
/// ack channels, §6.1). Returns `(host, rule)` pairs to install.
pub fn unicast_rules(
    physical: &PhysicalTopology,
    src: TaskId,
    dst: TaskId,
) -> Vec<(HostId, FlowMod)> {
    let app = physical.app.0;
    let (sa, da) = match (physical.assignment(src), physical.assignment(dst)) {
        (Some(s), Some(d)) => (s.clone(), d.clone()),
        _ => return Vec::new(),
    };
    let src_mac = MacAddr::worker(app, src);
    let dst_mac = MacAddr::worker(app, dst);
    let mut out = Vec::new();
    if sa.host == da.host {
        out.push((
            sa.host,
            FlowMod::add(
                DATA_PRIORITY,
                FlowMatch::any()
                    .in_port(PortNo(sa.switch_port))
                    .dl_src(src_mac)
                    .dl_dst(dst_mac)
                    .ether_type(TYPHOON_ETHERTYPE),
                vec![Action::Output(PortNo(da.switch_port))],
            ),
        ));
    } else {
        out.push((
            sa.host,
            FlowMod::add(
                DATA_PRIORITY,
                FlowMatch::any()
                    .in_port(PortNo(sa.switch_port))
                    .dl_src(src_mac)
                    .dl_dst(dst_mac)
                    .ether_type(TYPHOON_ETHERTYPE),
                vec![Action::SetTunDst(da.host.0), Action::Output(PortNo::TUNNEL)],
            ),
        ));
        out.push((
            da.host,
            FlowMod::add(
                DATA_PRIORITY,
                FlowMatch::any()
                    .in_port(PortNo::TUNNEL)
                    .dl_src(src_mac)
                    .dl_dst(dst_mac),
                vec![Action::Output(PortNo(da.switch_port))],
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_model::logical::word_count_example;
    use typhoon_model::{AppId, HostInfo, LocalityScheduler, RoundRobinScheduler, Scheduler};
    use typhoon_tuple::Fields;
    use typhoon_tuple::StreamId;

    fn hosts(n: u32) -> Vec<HostInfo> {
        (0..n)
            .map(|i| HostInfo::new(i, &format!("h{i}"), 8))
            .collect()
    }

    #[test]
    fn local_transfer_rule_matches_table3_shape() {
        let logical = word_count_example();
        // Locality scheduler with one big host: everything is local.
        let phys = LocalityScheduler
            .schedule(AppId(1), &logical, &hosts(1))
            .unwrap();
        let plan = build_rules(&logical, &phys);
        assert_eq!(plan.flows.len(), 1);
        let rules = &plan.flows[&HostId(0)];
        // Find the rule for input task → some split task.
        let input_task = phys.tasks_of("input")[0];
        let split_task = phys.tasks_of("split")[0];
        let src_mac = MacAddr::worker(1, input_task);
        let dst_mac = MacAddr::worker(1, split_task);
        let rule = rules
            .iter()
            .find(|r| r.matcher.dl_src == Some(src_mac) && r.matcher.dl_dst == Some(dst_mac))
            .expect("local transfer rule exists");
        // Exact Table 3 shape: in_port + dl_src + dl_dst + ether_type.
        assert!(rule.matcher.in_port.is_some());
        assert_eq!(rule.matcher.ether_type, Some(TYPHOON_ETHERTYPE));
        let dst_port = PortNo(phys.assignment(split_task).unwrap().switch_port);
        assert_eq!(rule.actions, vec![Action::Output(dst_port)]);
        assert_eq!(rule.priority, DATA_PRIORITY);
    }

    #[test]
    fn remote_transfer_generates_sender_and_receiver_rules() {
        let logical = word_count_example();
        // Round robin over 2 hosts guarantees cross-host edges.
        let phys = RoundRobinScheduler
            .schedule(AppId(1), &logical, &hosts(2))
            .unwrap();
        let plan = build_rules(&logical, &phys);
        let sender_rules: Vec<&FlowMod> = plan
            .flows
            .values()
            .flatten()
            .filter(|r| r.actions.iter().any(|a| matches!(a, Action::SetTunDst(_))))
            .collect();
        assert!(!sender_rules.is_empty(), "cross-host edges exist");
        for rule in &sender_rules {
            // Table 3 sender shape: set_tun_dst then output=TUNNEL.
            let i = rule
                .actions
                .iter()
                .position(|a| matches!(a, Action::SetTunDst(_)))
                .unwrap();
            assert_eq!(rule.actions[i + 1], Action::Output(PortNo::TUNNEL));
        }
        // Every sender rule has a matching receiver rule on the peer host.
        for rule in &sender_rules {
            let dst = rule.matcher.dl_dst.unwrap();
            if dst == MacAddr::BROADCAST {
                continue;
            }
            let peer = match rule.actions.iter().find_map(|a| match a {
                Action::SetTunDst(h) => Some(HostId(*h)),
                _ => None,
            }) {
                Some(h) => h,
                None => continue,
            };
            let receiver = plan.flows[&peer].iter().find(|r| {
                r.matcher.in_port == Some(PortNo::TUNNEL) && r.matcher.dl_dst == Some(dst)
            });
            assert!(receiver.is_some(), "receiver rule for {dst:?} on {peer:?}");
        }
    }

    #[test]
    fn control_rules_present_on_every_host() {
        let logical = word_count_example();
        let phys = RoundRobinScheduler
            .schedule(AppId(1), &logical, &hosts(3))
            .unwrap();
        let plan = build_rules(&logical, &phys);
        for (host, rules) in &plan.flows {
            // Worker → controller rule.
            assert!(
                rules
                    .iter()
                    .any(|r| r.matcher.dl_dst == Some(MacAddr::CONTROLLER)
                        && r.actions == vec![Action::ToController]),
                "{host:?} missing worker→controller rule"
            );
            // Controller → worker rule per local task.
            let local_tasks = phys.by_host()[host].len();
            let ctrl_rules = rules
                .iter()
                .filter(|r| r.matcher.in_port == Some(PortNo::CONTROLLER))
                .count();
            assert_eq!(ctrl_rules, local_tasks);
        }
    }

    fn broadcast_topology() -> LogicalTopology {
        LogicalTopology::builder("bcast")
            .spout("src", "s", 1, Fields::new(["x"]))
            .bolt("sink", "b", 4, Fields::new(["x"]))
            .edge_on("src", "sink", StreamId::DEFAULT, Grouping::All)
            .build()
            .unwrap()
    }

    #[test]
    fn broadcast_rule_lists_all_destination_ports() {
        let logical = broadcast_topology();
        let phys = LocalityScheduler
            .schedule(AppId(2), &logical, &hosts(1))
            .unwrap();
        let plan = build_rules(&logical, &phys);
        let rules = &plan.flows[&HostId(0)];
        let bcast = rules
            .iter()
            .find(|r| r.matcher.dl_dst == Some(MacAddr::BROADCAST))
            .expect("broadcast rule");
        assert_eq!(bcast.priority, BROADCAST_PRIORITY);
        assert_eq!(bcast.actions.len(), 4, "one output per sink worker");
    }

    #[test]
    fn broadcast_across_hosts_tunnels_once_per_host() {
        let logical = broadcast_topology();
        let phys = RoundRobinScheduler
            .schedule(AppId(2), &logical, &hosts(2))
            .unwrap();
        let plan = build_rules(&logical, &phys);
        let src_host = phys.assignment(phys.tasks_of("src")[0]).unwrap().host;
        let bcast = plan.flows[&src_host]
            .iter()
            .find(|r| {
                r.matcher.dl_dst == Some(MacAddr::BROADCAST)
                    && r.matcher.in_port != Some(PortNo::TUNNEL)
            })
            .unwrap();
        let tunnel_sends = bcast
            .actions
            .iter()
            .filter(|a| **a == Action::Output(PortNo::TUNNEL))
            .count();
        assert_eq!(tunnel_sends, 1, "the frame crosses the wire once per host");
        // The remote host delivers to its local sinks.
        let other = HostId(1 - src_host.0);
        let recv = plan.flows[&other]
            .iter()
            .find(|r| {
                r.matcher.in_port == Some(PortNo::TUNNEL)
                    && r.matcher.dl_dst == Some(MacAddr::BROADCAST)
            })
            .expect("broadcast receiver rule");
        assert!(!recv.actions.is_empty());
    }

    #[test]
    fn sdn_offloaded_edge_builds_group_and_indirection() {
        let logical = LogicalTopology::builder("lb")
            .spout("src", "s", 1, Fields::new(["x"]))
            .bolt("sink", "b", 3, Fields::new(["x"]))
            .edge("src", "sink", Grouping::SdnOffloaded)
            .build()
            .unwrap();
        let phys = LocalityScheduler
            .schedule(AppId(3), &logical, &hosts(1))
            .unwrap();
        let plan = build_rules(&logical, &phys);
        let groups = &plan.groups[&HostId(0)];
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].buckets.len(), 3);
        for b in &groups[0].buckets {
            assert!(matches!(b.actions[0], Action::SetDlDst(_)));
        }
        let flows = &plan.flows[&HostId(0)];
        assert!(flows
            .iter()
            .any(|r| r.actions.iter().any(|a| matches!(a, Action::Group(_)))));
    }

    #[test]
    fn data_rules_carry_idle_timeouts() {
        let logical = word_count_example();
        let phys = LocalityScheduler
            .schedule(AppId(1), &logical, &hosts(1))
            .unwrap();
        let plan = build_rules(&logical, &phys);
        for rule in plan.flows.values().flatten() {
            if rule.priority == DATA_PRIORITY || rule.priority == BROADCAST_PRIORITY {
                assert_eq!(rule.idle_timeout, DATA_IDLE_TIMEOUT);
            } else {
                assert_eq!(rule.idle_timeout, Duration::ZERO, "control rules persist");
            }
        }
    }

    #[test]
    fn group_ids_are_unique_per_app_and_task() {
        assert_ne!(group_id_for(1, TaskId(1)), group_id_for(1, TaskId(2)));
        assert_ne!(group_id_for(1, TaskId(1)), group_id_for(2, TaskId(1)));
    }
}
