//! Controller high availability: replicated controllers, leader election,
//! and failover rule re-sync.
//!
//! §3.4 makes the controller *stateless* about deployments — everything it
//! needs is in the central coordinator — which is exactly what makes it
//! replicable: run 2–3 [`Controller`] replicas, elect one leader through
//! the coordinator ([`typhoon_coordinator::LeaderElection`]: ephemeral
//! session + watch), and on failover the successor regenerates its
//! operational state from two coordinator-backed sources:
//!
//! * the Table 1 global state (topologies, agents) it shares with the
//!   streaming manager, and
//! * the [`RuleLedger`] — the authoritative record of every flow/group
//!   rule the last leader installed, persisted under
//!   `/typhoon/ctlstate/host-<h>` as concatenated wire-encoded OpenFlow
//!   messages. Steering deltas applied *after* the initial Table 3 plan
//!   (ack rules, load-balancer group retunes, recovery re-steers) live
//!   only here, so replaying the ledger — not re-running the rule
//!   compiler — is what makes the new leader's view exact.
//!
//! The election term doubles as a fencing token: a switch accepts a
//! reconnect only at a term ≥ the highest it has seen
//! ([`typhoon_switch::Switch::connect_controller`]), so a deposed leader
//! that believes it still reigns is rejected at the datapath. Between
//! leaders the switches run *headless* — forwarding continues on installed
//! rules and the megaflow cache while controller-bound events queue for
//! replay (see `typhoon_switch::datapath`).
//!
//! Observability: `controller.ha.*` metrics (role, term, failover_ms,
//! resync_rules, headless_s) on the plane's [`Registry`]; naming is
//! documented in docs/OBSERVABILITY.md.

use crate::apps::ControlPlaneApp;
use crate::controller::{Controller, ControllerHandle};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use typhoon_coordinator::global::GlobalState;
use typhoon_coordinator::{Coordinator, LeaderElection, SessionId};
use typhoon_diag::{rank, DiagMutex as Mutex};
use typhoon_metrics::Registry;
use typhoon_model::HostId;
use typhoon_net::{retry, BackoffPolicy};
use typhoon_openflow::{wire, FlowMod, FlowModCommand, GroupMod, GroupModCommand, OfMessage};
use typhoon_switch::Switch;

/// Coordinator prefix under which per-host rule state is persisted.
pub const CTLSTATE_PREFIX: &str = "/typhoon/ctlstate";

/// The mirrored rule/group state of one switch.
#[derive(Debug, Default, Clone)]
struct HostRules {
    /// Installed flow rules, in install order (replays as `Add`s).
    flows: Vec<FlowMod>,
    /// Installed groups by raw group ID (groups replay before flows,
    /// because flow actions reference them).
    groups: BTreeMap<u32, GroupMod>,
}

/// The authoritative record of installed rules, persisted in the
/// coordinator store so a successor leader can re-install them.
///
/// Every successful `FlowMod`/`GroupMod` send write-through-records here
/// (see [`Controller::with_ledger`]); the in-memory mirror applies the
/// same add/modify/delete subsumption semantics as the switch flow table,
/// so the ledger holds the *net* state, not the message history. A
/// deposed leader cannot corrupt the ledger: its channels are gone, its
/// sends fail, and only successful sends are recorded.
pub struct RuleLedger {
    coord: Coordinator,
    prefix: String,
    hosts: Mutex<BTreeMap<HostId, HostRules>>,
}

impl RuleLedger {
    /// A ledger persisting under [`CTLSTATE_PREFIX`].
    pub fn new(coord: Coordinator) -> Self {
        Self::with_prefix(coord, CTLSTATE_PREFIX)
    }

    /// A ledger persisting under a custom prefix (tests).
    pub fn with_prefix(coord: Coordinator, prefix: &str) -> Self {
        RuleLedger {
            coord,
            prefix: prefix.to_owned(),
            hosts: Mutex::with_rank(rank::CTRL_LEDGER, "controller.ha.ledger", BTreeMap::new()),
        }
    }

    fn host_path(&self, host: HostId) -> String {
        format!("{}/host-{}", self.prefix, host.0)
    }

    /// Records one control message against `host` and persists the updated
    /// net state. Non-rule messages (barriers, packet-outs, stats) are
    /// ignored — they are not state.
    pub fn record(&self, host: HostId, msg: &OfMessage) {
        // Mutate-and-persist under one lock so concurrent senders cannot
        // interleave a stale snapshot into the store. Ledger → store is
        // rank-increasing (CTRL_LEDGER < COORD_STORE).
        let mut hosts = self.hosts.lock();
        let rules = hosts.entry(host).or_default();
        match msg {
            OfMessage::FlowMod(fm) => apply_flow(&mut rules.flows, fm),
            OfMessage::GroupMod(gm) => apply_group(&mut rules.groups, gm),
            _ => return,
        }
        let encoded = encode_host(rules);
        let _ = self.coord.ensure_path(&self.prefix);
        let _ = self.coord.put(&self.host_path(host), encoded);
    }

    /// Rules currently mirrored for `host` (flows + groups).
    pub fn rule_count(&self, host: HostId) -> usize {
        self.hosts
            .lock()
            .get(&host)
            .map(|r| r.flows.len() + r.groups.len())
            .unwrap_or(0)
    }

    /// Decodes the persisted net state for `host` back into installable
    /// messages: groups first, then flows, in install order. Reads the
    /// *store*, not the in-memory mirror — this is the failover path, and
    /// the successor may be a different process in a real deployment.
    pub fn replay_messages(&self, host: HostId) -> Vec<OfMessage> {
        let Ok((data, _)) = self.coord.get(&self.host_path(host)) else {
            return Vec::new();
        };
        let mut bytes = Bytes::from(data);
        let mut out = Vec::new();
        while !bytes.is_empty() {
            match wire::decode(bytes.clone()) {
                Ok((msg, consumed)) => {
                    out.push(msg);
                    bytes = bytes.slice(consumed..);
                }
                Err(_) => break,
            }
        }
        out
    }
}

/// Mirror of `FlowTable::apply` add/modify/delete subsumption semantics.
fn apply_flow(flows: &mut Vec<FlowMod>, fm: &FlowMod) {
    match fm.command {
        FlowModCommand::Add => {
            let mut add = fm.clone();
            if let Some(e) = flows
                .iter_mut()
                .find(|e| e.matcher == fm.matcher && e.priority == fm.priority)
            {
                *e = add;
            } else {
                add.command = FlowModCommand::Add;
                flows.push(add);
            }
        }
        FlowModCommand::Modify => {
            for e in flows.iter_mut() {
                if fm.matcher.subsumes(&e.matcher) {
                    e.actions = fm.actions.clone();
                }
            }
        }
        FlowModCommand::Delete => {
            flows.retain(|e| {
                !(fm.matcher.subsumes(&e.matcher)
                    && (fm.priority == 0 || fm.priority == e.priority))
            });
        }
    }
}

fn apply_group(groups: &mut BTreeMap<u32, GroupMod>, gm: &GroupMod) {
    match gm.command {
        GroupModCommand::Add | GroupModCommand::Modify => {
            groups.insert(gm.group.0, GroupMod::add(gm.group, gm.buckets.clone()));
        }
        GroupModCommand::Delete => {
            groups.remove(&gm.group.0);
        }
    }
}

fn encode_host(rules: &HostRules) -> Vec<u8> {
    let mut out = Vec::new();
    for gm in rules.groups.values() {
        out.extend_from_slice(&wire::encode(&OfMessage::GroupMod(gm.clone())));
    }
    for fm in &rules.flows {
        let mut add = fm.clone();
        add.command = FlowModCommand::Add;
        out.extend_from_slice(&wire::encode(&OfMessage::FlowMod(add)));
    }
    out
}

/// Tuning for the HA plane.
#[derive(Debug, Clone, Copy)]
pub struct HaConfig {
    /// A replica session that misses heartbeats for this long is expired,
    /// vacating its leadership (the failover detection bound).
    pub session_timeout: Duration,
    /// Monitor cadence: heartbeats, expiry checks and (when leaderless)
    /// campaigns happen at this interval, or sooner on a leader-watch
    /// event.
    pub sweep_interval: Duration,
    /// Seed for retry jitter, derived from the run seed so chaos runs
    /// replay deterministically.
    pub seed: u64,
}

impl Default for HaConfig {
    fn default() -> Self {
        HaConfig {
            session_timeout: Duration::from_millis(400),
            sweep_interval: Duration::from_millis(25),
            seed: 0x7f4a_7c15,
        }
    }
}

struct ReplicaSlot {
    name: String,
    controller: Controller,
    session: SessionId,
    alive: bool,
    died_at: Option<Instant>,
    session_closed: bool,
    handle: Option<ControllerHandle>,
}

struct PlaneState {
    replicas: Vec<ReplicaSlot>,
    switches: BTreeMap<HostId, Switch>,
    leader: Option<usize>,
    monitor: Option<JoinHandle<()>>,
}

struct PlaneInner {
    election: LeaderElection,
    ledger: Arc<RuleLedger>,
    cfg: HaConfig,
    registry: Registry,
    state: Mutex<PlaneState>,
    shutdown: AtomicBool,
}

/// A replicated control plane: N controller replicas, one elected leader.
///
/// The leader owns every switch's control channel; followers idle with no
/// switches bound. A monitor thread heartbeats live replica sessions,
/// expires dead ones after [`HaConfig::session_timeout`] (scoped to its
/// *own* sessions — worker-agent sessions are ephemeral-by-design and
/// unheartbeated, a global sweep would deregister them), and campaigns
/// whenever the leader znode is vacant.
#[derive(Clone)]
pub struct ControlPlane {
    inner: Arc<PlaneInner>,
}

impl ControlPlane {
    /// Builds `replicas` controller replicas over `global`'s coordinator.
    /// Nothing is elected until [`ControlPlane::start`].
    pub fn new(global: GlobalState, replicas: usize, cfg: HaConfig) -> Self {
        let coord = global.coordinator().clone();
        let ledger = Arc::new(RuleLedger::new(coord.clone()));
        let election = LeaderElection::new(coord.clone());
        let slots = (0..replicas.max(1))
            .map(|i| ReplicaSlot {
                name: format!("controller-{i}"),
                controller: Controller::with_ledger(global.clone(), Arc::clone(&ledger)),
                session: coord.create_session(),
                alive: true,
                died_at: None,
                session_closed: false,
                handle: None,
            })
            .collect();
        ControlPlane {
            inner: Arc::new(PlaneInner {
                election,
                ledger,
                cfg,
                registry: Registry::new(),
                state: Mutex::with_rank(
                    rank::CTRL_HA,
                    "controller.ha.plane",
                    PlaneState {
                        replicas: slots,
                        switches: BTreeMap::new(),
                        leader: None,
                        monitor: None,
                    },
                ),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// Puts a switch under this plane's management: whoever leads connects
    /// to it (with its term as the fencing token) and re-installs its
    /// ledgered rules.
    pub fn manage_switch(&self, host: HostId, switch: Switch) {
        self.inner.state.lock().switches.insert(host, switch);
    }

    /// Registers a control-plane app on *every* replica via `factory`.
    /// Apps must exist on whichever replica wins — registering on just the
    /// current leader would lose them at failover.
    pub fn add_app_factory(&self, factory: impl Fn() -> Box<dyn ControlPlaneApp>) {
        let controllers: Vec<Controller> = {
            let state = self.inner.state.lock();
            state
                .replicas
                .iter()
                .map(|s| s.controller.clone())
                .collect()
        };
        for c in controllers {
            c.add_app(factory());
        }
    }

    /// Spawns every replica's event pump, elects the initial leader
    /// synchronously, then starts the monitor thread.
    pub fn start(&self, tick: Duration) {
        {
            let mut state = self.inner.state.lock();
            for slot in &mut state.replicas {
                if slot.handle.is_none() {
                    slot.handle = Some(slot.controller.spawn(tick));
                }
            }
        }
        self.elect_if_needed();
        let plane = self.clone();
        let monitor = typhoon_diag::spawn_supervised(
            "ctl-ha-monitor",
            |_event| {},
            move || plane.monitor_loop(),
        );
        self.inner.state.lock().monitor = Some(monitor);
    }

    fn monitor_loop(&self) {
        let coord = self.inner.election.coordinator().clone();
        let watch = self.inner.election.watch();
        let mut beat = 0u64;
        while !self.inner.shutdown.load(Ordering::Relaxed) {
            // 1. Heartbeat live replica sessions. A typed give-up is
            //    counted, not fatal: the session then lapses and the
            //    election takes its course — which is the correct failure
            //    semantics for a partitioned replica.
            let live: Vec<SessionId> = {
                let state = self.inner.state.lock();
                state
                    .replicas
                    .iter()
                    .filter(|s| s.alive && !s.session_closed)
                    .map(|s| s.session)
                    .collect()
            };
            for sid in live {
                beat += 1;
                if retry(
                    &BackoffPolicy::fail_fast(),
                    self.inner.cfg.seed ^ beat,
                    |_| coord.heartbeat(sid),
                )
                .is_err()
                {
                    self.inner
                        .registry
                        .counter("controller.ha.heartbeat_giveup")
                        .inc();
                }
            }
            // 2. Expire our own dead replicas' sessions once they have
            //    outlived the session timeout, vacating the leader znode.
            let expired: Vec<SessionId> = {
                let mut state = self.inner.state.lock();
                let timeout = self.inner.cfg.session_timeout;
                state
                    .replicas
                    .iter_mut()
                    .filter(|s| {
                        !s.alive
                            && !s.session_closed
                            && s.died_at.is_some_and(|t| t.elapsed() >= timeout)
                    })
                    .map(|s| {
                        s.session_closed = true;
                        s.session
                    })
                    .collect()
            };
            for sid in expired {
                coord.close_session(sid);
            }
            // 3. Campaign when the leader znode is vacant.
            self.elect_if_needed();
            // 4. Block on the leader watch (or the sweep tick): a deleted
            //    leader znode wakes us immediately.
            let _ = watch.recv_timeout(self.inner.cfg.sweep_interval);
        }
    }

    /// Campaigns with the lowest-index live replica when no leader holds
    /// the znode. At-most-one-leader-per-term is the election's invariant
    /// (verified by the `election` model-checker kernel).
    fn elect_if_needed(&self) {
        if self.inner.election.leader().is_some() {
            return;
        }
        let candidate = {
            let state = self.inner.state.lock();
            state
                .replicas
                .iter()
                .enumerate()
                .find(|(_, s)| s.alive)
                .map(|(i, s)| (i, s.name.clone(), s.session))
        };
        let Some((idx, name, session)) = candidate else {
            return;
        };
        if let Ok(Some(term)) = self.inner.election.try_acquire(session, &name) {
            self.become_leader(idx, term);
        }
    }

    /// Binds every managed switch to the new term, replays the rule ledger
    /// and fences each switch, then publishes the replica as leader.
    fn become_leader(&self, idx: usize, term: u64) {
        let t0 = Instant::now();
        let reg = &self.inner.registry;
        let (controller, switches) = {
            let state = self.inner.state.lock();
            (
                state.replicas[idx].controller.clone(),
                state.switches.clone(),
            )
        };
        // Reconnect: `connect_controller` is the fencing point. A
        // `StaleLeader` rejection means a newer term already owns the
        // datapath — resign and let the monitor re-campaign.
        for (host, switch) in &switches {
            match switch.connect_controller(term) {
                Ok(channel) => controller.register_switch(*host, switch.dpid(), channel),
                Err(_stale) => {
                    reg.counter("controller.ha.stale_rejected").inc();
                    self.inner.election.resign();
                    return;
                }
            }
        }
        // Re-install the authoritative net state from the coordinator
        // store (groups before flows — flow actions reference groups).
        let mut resync = 0u64;
        for host in switches.keys() {
            for msg in self.inner.ledger.replay_messages(*host) {
                let ok = match msg {
                    OfMessage::GroupMod(gm) => controller.send_group_mod(*host, gm),
                    OfMessage::FlowMod(fm) => controller.send_flow_mod(*host, fm),
                    _ => false,
                };
                if ok {
                    resync += 1;
                }
            }
        }
        // Fence each switch so the re-sync is *active* before we publish
        // leadership. The barrier is retried under the shared backoff
        // policy: a switch draining its headless replay queue may need a
        // moment.
        let mut headless_ms = 0u64;
        for (host, switch) in &switches {
            let fenced = retry(
                &BackoffPolicy::control_plane(),
                self.inner.cfg.seed ^ term ^ host.0 as u64,
                |_| {
                    if controller.sync_switch(*host, Duration::from_millis(500)) {
                        Ok(())
                    } else {
                        Err("barrier timeout")
                    }
                },
            );
            if fenced.is_err() {
                reg.counter("controller.ha.resync_fence_giveup").inc();
            }
            headless_ms = headless_ms.max(switch.headless_ms());
        }
        let failover_ms = t0.elapsed().as_millis() as u64;
        reg.counter("controller.ha.elections").inc();
        if term > 1 {
            reg.counter("controller.ha.failovers").inc();
            reg.gauge("controller.ha.failover_ms")
                .set(failover_ms as i64);
            reg.histogram("controller.ha.failover_ms")
                .record(failover_ms);
        }
        reg.gauge("controller.ha.term").set(term as i64);
        reg.gauge("controller.ha.resync_rules").set(resync as i64);
        reg.gauge("controller.ha.headless_ms")
            .set(headless_ms as i64);
        reg.gauge("controller.ha.headless_s")
            .set((headless_ms / 1000) as i64);
        let mut state = self.inner.state.lock();
        state.leader = Some(idx);
        for (i, slot) in state.replicas.iter().enumerate() {
            reg.gauge(&format!("controller.ha.role.{}", slot.name))
                .set(i64::from(i == idx));
        }
    }

    /// The current leader's controller, if one is published.
    pub fn leader_controller(&self) -> Option<Controller> {
        let state = self.inner.state.lock();
        state.leader.map(|i| state.replicas[i].controller.clone())
    }

    /// The current leader's replica name.
    pub fn leader_name(&self) -> Option<String> {
        let state = self.inner.state.lock();
        state.leader.map(|i| state.replicas[i].name.clone())
    }

    /// Blocks (with backoff) until a leader is published or `timeout`
    /// passes.
    pub fn wait_leader(&self, timeout: Duration) -> Option<Controller> {
        retry(
            &BackoffPolicy::control_plane()
                .with_deadline(timeout)
                .with_max_attempts(0),
            self.inner.cfg.seed,
            |_| self.leader_controller().ok_or(()),
        )
        .ok()
    }

    /// The highest term reserved so far.
    pub fn term(&self) -> u64 {
        self.inner.election.current_term()
    }

    /// Replicas that have not been crashed.
    pub fn alive_replicas(&self) -> usize {
        self.inner
            .state
            .lock()
            .replicas
            .iter()
            .filter(|s| s.alive)
            .count()
    }

    /// The HA metrics registry (`controller.ha.*`).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The shared rule ledger.
    pub fn ledger(&self) -> &Arc<RuleLedger> {
        &self.inner.ledger
    }

    /// Kills the current leader the way a crash would: its pump stops,
    /// its switch bindings drop (switches degrade to headless), and its
    /// session is left to *lapse* — the monitor expires it only after
    /// [`HaConfig::session_timeout`], so the leaderless window is
    /// observable exactly as with a real crashed process. Returns the
    /// dead replica's name.
    pub fn crash_leader(&self) -> Option<String> {
        let (name, controller, handle) = {
            let mut state = self.inner.state.lock();
            let idx = state.leader.take()?;
            let slot = &mut state.replicas[idx];
            slot.alive = false;
            slot.died_at = Some(Instant::now());
            self.inner
                .registry
                .gauge(&format!("controller.ha.role.{}", slot.name))
                .set(0);
            (
                slot.name.clone(),
                slot.controller.clone(),
                slot.handle.take(),
            )
        };
        controller.shutdown();
        controller.unregister_all();
        drop(handle);
        Some(name)
    }

    /// Stops the monitor and every live replica.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        let (monitor, replicas) = {
            let mut state = self.inner.state.lock();
            let monitor = state.monitor.take();
            let replicas: Vec<(Controller, Option<ControllerHandle>, bool)> = state
                .replicas
                .iter_mut()
                .map(|s| (s.controller.clone(), s.handle.take(), s.alive))
                .collect();
            (monitor, replicas)
        };
        if let Some(m) = monitor {
            let _ = m.join();
        }
        for (controller, handle, alive) in replicas {
            if alive {
                controller.shutdown();
            }
            drop(handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_openflow::{Action, FlowMatch, GroupId, PortNo};
    use typhoon_switch::SwitchConfig;

    fn rule(port_in: u32, port_out: u32, priority: u16) -> FlowMod {
        FlowMod::add(
            priority,
            FlowMatch::any().in_port(PortNo(port_in)),
            vec![Action::Output(PortNo(port_out))],
        )
    }

    #[test]
    fn ledger_mirrors_table_semantics_and_replays_from_the_store() {
        let coord = Coordinator::new();
        let ledger = RuleLedger::new(coord.clone());
        let h = HostId(0);
        ledger.record(
            h,
            &OfMessage::GroupMod(GroupMod::add(GroupId(7), Vec::new())),
        );
        ledger.record(h, &OfMessage::FlowMod(rule(1, 2, 10)));
        // Identical match+priority replaces, as in the flow table.
        ledger.record(h, &OfMessage::FlowMod(rule(1, 3, 10)));
        ledger.record(h, &OfMessage::FlowMod(rule(4, 5, 5)));
        // Strict delete removes only the matching-priority rule.
        let mut del = FlowMod::delete(FlowMatch::any().in_port(PortNo(4)));
        del.priority = 5;
        ledger.record(h, &OfMessage::FlowMod(del));
        assert_eq!(ledger.rule_count(h), 2); // group + one flow

        // A fresh ledger on the same coordinator replays from the store
        // alone — the persistence round-trip a successor leader relies on.
        let successor = RuleLedger::new(coord);
        let msgs = successor.replay_messages(h);
        assert_eq!(msgs.len(), 2);
        match &msgs[0] {
            OfMessage::GroupMod(gm) => assert_eq!(gm.group, GroupId(7)),
            other => panic!("expected the group first, got {other:?}"),
        }
        match &msgs[1] {
            OfMessage::FlowMod(fm) => {
                assert_eq!(fm.actions, vec![Action::Output(PortNo(3))]);
                assert_eq!(fm.command, FlowModCommand::Add);
            }
            other => panic!("expected the surviving flow, got {other:?}"),
        }
    }

    #[test]
    fn leader_failover_resyncs_rules_while_the_switch_runs_headless() {
        let global = GlobalState::new(Coordinator::new());
        let cfg = HaConfig {
            session_timeout: Duration::from_millis(100),
            sweep_interval: Duration::from_millis(5),
            seed: 7,
        };
        let plane = ControlPlane::new(global, 2, cfg);
        let (sw, _boot) = Switch::new(SwitchConfig::new(1));
        plane.manage_switch(HostId(0), sw.clone());

        // Drive the switch like its spawned loop would.
        let stop = Arc::new(AtomicBool::new(false));
        let driver = {
            let (sw, stop) = (sw.clone(), Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    sw.process_round();
                    std::thread::sleep(Duration::from_micros(50)); // LINT: allow-sleep(test driver pacing)
                }
            })
        };

        plane.start(Duration::from_millis(1));
        let leader = plane
            .wait_leader(Duration::from_secs(5))
            .expect("initial leader");
        assert_eq!(plane.term(), 1);
        assert_eq!(sw.controller_term(), 1);
        let first = plane.leader_name().expect("leader name");

        assert!(leader.send_flow_mod(HostId(0), rule(1, 2, 10)));
        assert!(leader.sync_switch(HostId(0), Duration::from_secs(5)));
        assert_eq!(sw.rule_count(), 1);

        let dead = plane.crash_leader().expect("a leader to kill");
        assert_eq!(dead, first);
        let next = plane
            .wait_leader(Duration::from_secs(10))
            .expect("failover");
        assert_ne!(plane.leader_name().as_deref(), Some(dead.as_str()));
        assert_eq!(plane.term(), 2, "failover bumps the term");
        assert_eq!(sw.controller_term(), 2, "switch fenced to the new term");
        assert_eq!(sw.rule_count(), 1, "ledger re-sync reinstalled the rule");
        assert!(sw.headless_ms() > 0, "switch observed a leaderless window");
        assert!(next.sync_switch(HostId(0), Duration::from_secs(5)));

        let snap = plane.registry().snapshot();
        assert_eq!(snap.counter("controller.ha.elections"), 2);
        assert_eq!(snap.counter("controller.ha.failovers"), 1);
        assert!(snap.gauge("controller.ha.resync_rules") >= 1);
        assert_eq!(snap.gauge("controller.ha.term"), 2);

        stop.store(true, Ordering::Relaxed);
        driver.join().unwrap();
        plane.shutdown();
    }

    #[test]
    fn stale_ex_leader_cannot_send_after_failover() {
        let global = GlobalState::new(Coordinator::new());
        let cfg = HaConfig {
            session_timeout: Duration::from_millis(50),
            sweep_interval: Duration::from_millis(5),
            seed: 11,
        };
        let plane = ControlPlane::new(global, 2, cfg);
        let (sw, _boot) = Switch::new(SwitchConfig::new(1));
        plane.manage_switch(HostId(0), sw.clone());
        let stop = Arc::new(AtomicBool::new(false));
        let driver = {
            let (sw, stop) = (sw.clone(), Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    sw.process_round();
                    std::thread::sleep(Duration::from_micros(50)); // LINT: allow-sleep(test driver pacing)
                }
            })
        };
        plane.start(Duration::from_millis(1));
        let old = plane.wait_leader(Duration::from_secs(5)).expect("leader");
        plane.crash_leader();
        plane
            .wait_leader(Duration::from_secs(10))
            .expect("failover");
        // The deposed leader's bindings are gone: its sends fail, so it
        // cannot write through to the ledger either.
        assert!(!old.send_flow_mod(HostId(0), rule(1, 2, 10)));
        assert_eq!(plane.ledger().rule_count(HostId(0)), 0);
        stop.store(true, Ordering::Relaxed);
        driver.join().unwrap();
        plane.shutdown();
    }
}
