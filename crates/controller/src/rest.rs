//! The user-facing command API.
//!
//! "Some of these applications interact with framework users via REST APIs,
//! so that the users can leverage a Typhoon-provided framework service
//! (e.g., topology reconfiguration and debugging services)" (§5). The
//! reproduction exposes the same operations over a line-oriented TCP
//! protocol (one request per line, one response per line), which keeps the
//! offline dependency set intact while remaining scriptable with `nc`.
//!
//! ```text
//! LIST
//! SHOW <topology>
//! RECONFIG <topology> PARALLELISM <node> <n>
//! RECONFIG <topology> LOGIC <node> <component>
//! RECONFIG <topology> GROUPING <from> <to> shuffle|global|all|sdn|fields:<f1,f2,…>
//! RECONFIG <topology> RELOCATE <task-id> <host-id>
//! TRACE RATE <n>
//! TRACE DUMP <n>
//! TRACE HOPS
//! ```
//!
//! The `TRACE` family drives the end-to-end tuple tracer (the debugging
//! service of §5, extended with span collection): `RATE` retunes the
//! sampling rate live, `DUMP` returns the N slowest complete traces as a
//! single JSON line, and `HOPS` prints the per-hop latency breakdown.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use typhoon_coordinator::global::GlobalState;
use typhoon_model::{Grouping, HostId, ReconfigOp, ReconfigRequest, TaskId};
use typhoon_trace::Tracer;

/// Parses one grouping operand of the `GROUPING` command.
fn parse_grouping(s: &str) -> Result<Grouping, String> {
    match s {
        "shuffle" => Ok(Grouping::Shuffle),
        "global" => Ok(Grouping::Global),
        "all" => Ok(Grouping::All),
        "sdn" => Ok(Grouping::SdnOffloaded),
        other => match other.strip_prefix("fields:") {
            Some(fields) if !fields.is_empty() => Ok(Grouping::Fields(
                fields.split(',').map(str::to_owned).collect(),
            )),
            _ => Err(format!("unknown grouping {other:?}")),
        },
    }
}

/// Executes one command line against the global state, returning the
/// single-line response (`OK …` or `ERR …`).
pub fn handle_command(global: &GlobalState, line: &str) -> String {
    let parts: Vec<&str> = line.split_whitespace().collect();
    match parts.as_slice() {
        ["LIST"] => match global.list_topologies() {
            Ok(names) => format!("OK {}", names.join(",")),
            Err(e) => format!("ERR {e}"),
        },
        ["SHOW", topology] => match global.get_logical(topology) {
            Ok(t) => {
                let nodes: Vec<String> = t
                    .nodes
                    .iter()
                    .map(|n| format!("{}x{}", n.name, n.parallelism))
                    .collect();
                format!("OK {}", nodes.join(","))
            }
            Err(e) => format!("ERR {e}"),
        },
        ["RECONFIG", topology, "PARALLELISM", node, n] => match n.parse::<usize>() {
            Ok(parallelism) => submit(
                global,
                topology,
                ReconfigOp::SetParallelism {
                    node: (*node).to_owned(),
                    parallelism,
                },
            ),
            Err(_) => format!("ERR invalid parallelism {n:?}"),
        },
        ["RECONFIG", topology, "LOGIC", node, component] => submit(
            global,
            topology,
            ReconfigOp::SwapLogic {
                node: (*node).to_owned(),
                component: (*component).to_owned(),
            },
        ),
        ["RECONFIG", topology, "RELOCATE", task, host] => {
            match (task.parse::<u32>(), host.parse::<u32>()) {
                (Ok(t), Ok(h)) => submit(
                    global,
                    topology,
                    ReconfigOp::Relocate {
                        task: TaskId(t),
                        target: HostId(h),
                    },
                ),
                _ => format!("ERR invalid RELOCATE operands {task:?} {host:?}"),
            }
        }
        ["RECONFIG", topology, "GROUPING", from, to, grouping] => match parse_grouping(grouping) {
            Ok(g) => submit(
                global,
                topology,
                ReconfigOp::SetGrouping {
                    from: (*from).to_owned(),
                    to: (*to).to_owned(),
                    grouping: g,
                },
            ),
            Err(e) => format!("ERR {e}"),
        },
        [] => "ERR empty command".to_owned(),
        _ => format!("ERR unrecognized command {line:?}"),
    }
}

fn submit(global: &GlobalState, topology: &str, op: ReconfigOp) -> String {
    // The coordinator write can transiently fail while a controller
    // failover is re-establishing state; retry under the shared fail-fast
    // envelope and surface the typed give-up to the REST client.
    let req = ReconfigRequest::single(topology, op);
    match typhoon_net::retry(&typhoon_net::BackoffPolicy::fail_fast(), 0x5e57, |_| {
        global.submit_reconfig(&req)
    }) {
        Ok(()) => "OK submitted".to_owned(),
        Err(e) => format!("ERR {}", e.last()),
    }
}

/// Executes one command line, additionally serving the `TRACE` family when
/// a tracer is attached. Non-`TRACE` commands delegate to
/// [`handle_command`].
pub fn handle_command_with(
    global: &GlobalState,
    tracer: Option<&Arc<Tracer>>,
    line: &str,
) -> String {
    let parts: Vec<&str> = line.split_whitespace().collect();
    match parts.as_slice() {
        ["TRACE", ..] => {
            let tracer = match tracer {
                Some(t) => t,
                None => return "ERR tracing disabled".to_owned(),
            };
            match parts.as_slice() {
                ["TRACE", "RATE", n] => match n.parse::<u32>() {
                    Ok(rate) => {
                        tracer.set_rate(rate);
                        format!("OK rate {rate}")
                    }
                    Err(_) => format!("ERR invalid rate {n:?}"),
                },
                ["TRACE", "DUMP", n] => match n.parse::<usize>() {
                    Ok(count) => format!("OK {}", tracer.dump(count).to_json()),
                    Err(_) => format!("ERR invalid count {n:?}"),
                },
                ["TRACE", "HOPS"] => {
                    tracer.collect();
                    let hops: Vec<String> = tracer
                        .hop_stats()
                        .iter()
                        .map(|s| format!("{}={}ns", s.hop.label(), s.mean_ns as u64))
                        .collect();
                    format!("OK {}", hops.join(","))
                }
                _ => format!("ERR unrecognized TRACE command {line:?}"),
            }
        }
        _ => handle_command(global, line),
    }
}

/// The TCP command server.
pub struct CommandServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl CommandServer {
    /// Binds to `127.0.0.1:0` (or a specific port) and serves commands.
    pub fn start(global: GlobalState, port: u16) -> std::io::Result<CommandServer> {
        Self::start_with_tracer(global, port, None)
    }

    /// Like [`CommandServer::start`], additionally serving the `TRACE`
    /// command family against `tracer`.
    pub fn start_with_tracer(
        global: GlobalState,
        port: u16,
        tracer: Option<Arc<Tracer>>,
    ) -> std::io::Result<CommandServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = shutdown.clone();
        let thread = std::thread::Builder::new()
            .name("typhoon-rest".into())
            .spawn(move || {
                while !shutdown2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let global = global.clone();
                            let tracer = tracer.clone();
                            // One thread per connection: command traffic is
                            // sparse and human/driver initiated.
                            std::thread::spawn(move || {
                                let _ = stream.set_nonblocking(false);
                                let mut writer = match stream.try_clone() {
                                    Ok(w) => w,
                                    Err(_) => return,
                                };
                                let reader = BufReader::new(stream);
                                for line in reader.lines() {
                                    let line = match line {
                                        Ok(l) => l,
                                        Err(_) => break,
                                    };
                                    let resp = handle_command_with(&global, tracer.as_ref(), &line);
                                    if writer.write_all(format!("{resp}\n").as_bytes()).is_err() {
                                        break;
                                    }
                                }
                            });
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            // LINT: allow-sleep(nonblocking accept retry backoff on the REST listener thread)
                            std::thread::sleep(std::time::Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn command server");
        Ok(CommandServer {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (connect here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for CommandServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_coordinator::Coordinator;
    use typhoon_model::logical::word_count_example;

    fn global() -> GlobalState {
        let g = GlobalState::new(Coordinator::new());
        g.set_logical(&word_count_example()).unwrap();
        g
    }

    #[test]
    fn list_and_show() {
        let g = global();
        assert_eq!(handle_command(&g, "LIST"), "OK word-count");
        let shown = handle_command(&g, "SHOW word-count");
        assert!(shown.starts_with("OK "));
        assert!(shown.contains("splitx2"), "{shown}");
    }

    #[test]
    fn reconfig_parallelism_submits_request() {
        let g = global();
        assert_eq!(
            handle_command(&g, "RECONFIG word-count PARALLELISM split 3"),
            "OK submitted"
        );
        let reqs = g.take_reconfigs("word-count").unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(
            reqs[0].ops[0],
            ReconfigOp::SetParallelism {
                node: "split".into(),
                parallelism: 3
            }
        );
    }

    #[test]
    fn reconfig_grouping_parses_all_forms() {
        let g = global();
        for form in ["shuffle", "global", "all", "sdn", "fields:word,count"] {
            let cmd = format!("RECONFIG word-count GROUPING split count {form}");
            assert_eq!(handle_command(&g, &cmd), "OK submitted", "{form}");
        }
        let reqs = g.take_reconfigs("word-count").unwrap();
        assert_eq!(reqs.len(), 5);
        assert_eq!(
            reqs[4].ops[0],
            ReconfigOp::SetGrouping {
                from: "split".into(),
                to: "count".into(),
                grouping: Grouping::Fields(vec!["word".into(), "count".into()]),
            }
        );
    }

    #[test]
    fn relocate_command_parses_and_submits() {
        let g = global();
        assert_eq!(
            handle_command(&g, "RECONFIG word-count RELOCATE 3 1"),
            "OK submitted"
        );
        let reqs = g.take_reconfigs("word-count").unwrap();
        assert_eq!(
            reqs[0].ops[0],
            ReconfigOp::Relocate {
                task: TaskId(3),
                target: HostId(1),
            }
        );
        assert!(handle_command(&g, "RECONFIG t RELOCATE x 1").starts_with("ERR"));
        assert!(handle_command(&g, "RECONFIG t RELOCATE 1 y").starts_with("ERR"));
    }

    #[test]
    fn malformed_commands_are_errors() {
        let g = global();
        assert!(handle_command(&g, "").starts_with("ERR"));
        assert!(handle_command(&g, "NOPE").starts_with("ERR"));
        assert!(handle_command(&g, "RECONFIG t PARALLELISM n x").starts_with("ERR"));
        assert!(handle_command(&g, "RECONFIG t GROUPING a b fields:").starts_with("ERR"));
        assert!(handle_command(&g, "SHOW ghost").starts_with("ERR"));
    }

    #[test]
    fn trace_commands_require_a_tracer() {
        let g = global();
        assert_eq!(
            handle_command_with(&g, None, "TRACE RATE 64"),
            "ERR tracing disabled"
        );
        // Non-TRACE commands pass through untouched.
        assert_eq!(handle_command_with(&g, None, "LIST"), "OK word-count");
    }

    #[test]
    fn trace_commands_drive_the_tracer() {
        let g = global();
        let tracer = Tracer::new(8);
        let t = Some(&tracer);
        assert_eq!(handle_command_with(&g, t, "TRACE RATE 16"), "OK rate 16");
        assert_eq!(tracer.rate(), 16);
        let dump = handle_command_with(&g, t, "TRACE DUMP 5");
        assert!(dump.starts_with("OK {"), "{dump}");
        assert!(dump.contains("\"completed\""), "{dump}");
        assert_eq!(handle_command_with(&g, t, "TRACE HOPS"), "OK ");
        assert!(handle_command_with(&g, t, "TRACE RATE x").starts_with("ERR"));
        assert!(handle_command_with(&g, t, "TRACE NOPE").starts_with("ERR"));
    }

    #[test]
    fn tcp_server_round_trips_commands() {
        use std::io::{BufRead, BufReader, Write};
        let g = global();
        let server = CommandServer::start(g, 0).unwrap();
        let stream = std::net::TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"LIST\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK word-count");
        writer
            .write_all(b"RECONFIG word-count PARALLELISM split 4\n")
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK submitted");
    }
}
